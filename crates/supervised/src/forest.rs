//! Random forest regressor (Breiman 2001).
//!
//! The approximator the paper recommends for pseudo-supervised
//! approximation (§3.4 Remark 1: "supervised ensemble-based tree models
//! are recommended ... outstanding scalability, robustness to overfitting,
//! and interpretability") and the model class behind the BPS cost
//! predictor. Bootstrap-sampled CART trees with per-split feature
//! subsampling; predictions are the mean over trees.

use crate::tree::{DecisionTreeRegressor, TreeParams};
use crate::{check_fit_inputs, Error, Regressor, Result};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use suod_linalg::Matrix;

/// Random forest regressor.
///
/// # Example
///
/// ```
/// use suod_linalg::Matrix;
/// use suod_supervised::{RandomForestRegressor, Regressor};
///
/// # fn main() -> Result<(), suod_supervised::Error> {
/// let rows: Vec<Vec<f64>> = (0..50).map(|i| vec![i as f64]).collect();
/// let x = Matrix::from_rows(&rows).unwrap();
/// let y: Vec<f64> = (0..50).map(|i| (i as f64) * 2.0).collect();
/// let mut rf = RandomForestRegressor::new(30, 7);
/// rf.fit(&x, &y)?;
/// let p = rf.predict(&Matrix::from_rows(&[vec![25.0]]).unwrap())?;
/// assert!((p[0] - 50.0).abs() < 5.0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct RandomForestRegressor {
    n_estimators: usize,
    tree_params: TreeParams,
    /// Fraction of features tried per split, in `(0, 1]`; `None` = sqrt(d).
    max_features_fraction: Option<f64>,
    bootstrap: bool,
    seed: u64,
    trees: Vec<DecisionTreeRegressor>,
    n_features: usize,
}

impl RandomForestRegressor {
    /// Creates a forest with `n_estimators` trees and default CART
    /// parameters (depth 12, sqrt-features per split, bootstrap on).
    pub fn new(n_estimators: usize, seed: u64) -> Self {
        Self {
            n_estimators: n_estimators.max(1),
            tree_params: TreeParams::default(),
            max_features_fraction: None,
            bootstrap: true,
            seed,
            trees: Vec::new(),
            n_features: 0,
        }
    }

    /// Sets the maximum tree depth.
    pub fn with_max_depth(mut self, depth: usize) -> Self {
        self.tree_params.max_depth = depth;
        self
    }

    /// Sets the minimum samples per leaf.
    pub fn with_min_samples_leaf(mut self, m: usize) -> Self {
        self.tree_params.min_samples_leaf = m.max(1);
        self
    }

    /// Sets the fraction of features examined per split.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidParameter`] when outside `(0, 1]`.
    pub fn with_max_features_fraction(mut self, f: f64) -> Result<Self> {
        if !(f > 0.0 && f <= 1.0) {
            return Err(Error::InvalidParameter(format!(
                "max_features_fraction must be in (0, 1], got {f}"
            )));
        }
        self.max_features_fraction = Some(f);
        Ok(self)
    }

    /// Disables bootstrap sampling (each tree sees all rows).
    pub fn without_bootstrap(mut self) -> Self {
        self.bootstrap = false;
        self
    }

    /// Number of trees.
    pub fn n_estimators(&self) -> usize {
        self.n_estimators
    }

    /// Mean impurity-decrease feature importances across trees,
    /// normalized to sum to 1.
    ///
    /// # Errors
    ///
    /// Returns [`Error::NotFitted`] before `fit`.
    pub fn feature_importances(&self) -> Result<Vec<f64>> {
        if self.trees.is_empty() {
            return Err(Error::NotFitted("RandomForestRegressor"));
        }
        let mut acc = vec![0.0; self.n_features];
        for tree in &self.trees {
            for (a, v) in acc.iter_mut().zip(tree.feature_importances()?) {
                *a += v;
            }
        }
        let total: f64 = acc.iter().sum();
        if total > 0.0 {
            for a in &mut acc {
                *a /= total;
            }
        }
        Ok(acc)
    }
}

impl Regressor for RandomForestRegressor {
    fn fit(&mut self, x: &Matrix, y: &[f64]) -> Result<()> {
        check_fit_inputs(x, y)?;
        let n = x.nrows();
        let d = x.ncols();
        self.n_features = d;
        let max_features = match self.max_features_fraction {
            Some(f) => ((d as f64 * f).ceil() as usize).clamp(1, d),
            None => ((d as f64).sqrt().ceil() as usize).clamp(1, d),
        };
        let params = TreeParams {
            max_features: Some(max_features),
            ..self.tree_params
        };

        let mut rng = StdRng::seed_from_u64(self.seed);
        self.trees = Vec::with_capacity(self.n_estimators);
        for t in 0..self.n_estimators {
            let tree_seed = rng.random::<u64>() ^ t as u64;
            let (bx, by) = if self.bootstrap {
                let idx: Vec<usize> = (0..n).map(|_| rng.random_range(0..n)).collect();
                let bx = x.select_rows(&idx);
                let by: Vec<f64> = idx.iter().map(|&i| y[i]).collect();
                (bx, by)
            } else {
                (x.clone(), y.to_vec())
            };
            let mut tree = DecisionTreeRegressor::new(params, tree_seed);
            tree.fit(&bx, &by)?;
            self.trees.push(tree);
        }
        Ok(())
    }

    fn predict(&self, x: &Matrix) -> Result<Vec<f64>> {
        if self.trees.is_empty() {
            return Err(Error::NotFitted("RandomForestRegressor"));
        }
        let mut acc = vec![0.0; x.nrows()];
        for tree in &self.trees {
            for (a, p) in acc.iter_mut().zip(tree.predict(x)?) {
                *a += p;
            }
        }
        let k = self.trees.len() as f64;
        for a in &mut acc {
            *a /= k;
        }
        Ok(acc)
    }

    fn name(&self) -> &'static str {
        "random_forest"
    }

    fn feature_importances(&self) -> Option<Vec<f64>> {
        RandomForestRegressor::feature_importances(self).ok()
    }

    fn snapshot_write(&self, w: &mut suod_linalg::SnapshotWriter) -> Result<()> {
        w.write_usize(self.n_estimators);
        crate::tree::write_tree_params(&self.tree_params, w);
        match self.max_features_fraction {
            Some(f) => {
                w.write_bool(true);
                w.write_f64(f);
            }
            None => w.write_bool(false),
        }
        w.write_bool(self.bootstrap);
        w.write_u64(self.seed);
        w.write_usize(self.trees.len());
        for tree in &self.trees {
            tree.snapshot_write(w)?;
        }
        w.write_usize(self.n_features);
        Ok(())
    }
}

impl RandomForestRegressor {
    /// Reads a forest written by [`Regressor::snapshot_write`].
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidParameter`] on truncated or malformed state.
    pub fn snapshot_read(r: &mut suod_linalg::SnapshotReader<'_>) -> Result<Self> {
        let n_estimators = r.read_usize()?;
        let tree_params = crate::tree::read_tree_params(r)?;
        let max_features_fraction = if r.read_bool()? {
            Some(r.read_f64()?)
        } else {
            None
        };
        let bootstrap = r.read_bool()?;
        let seed = r.read_u64()?;
        let count = r.read_usize()?;
        let mut trees = Vec::new();
        for _ in 0..count {
            trees.push(DecisionTreeRegressor::snapshot_read(r)?);
        }
        Ok(Self {
            n_estimators,
            tree_params,
            max_features_fraction,
            bootstrap,
            seed,
            trees,
            n_features: r.read_usize()?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use suod_datasets_testutil::*;

    /// Tiny shared helpers (kept local; no extra dev-dependency).
    mod suod_datasets_testutil {
        use super::Matrix;

        pub fn linear_data(n: usize) -> (Matrix, Vec<f64>) {
            let rows: Vec<Vec<f64>> = (0..n).map(|i| vec![i as f64, (i % 5) as f64]).collect();
            let y: Vec<f64> = (0..n).map(|i| 3.0 * i as f64 + 1.0).collect();
            (Matrix::from_rows(&rows).unwrap(), y)
        }
    }

    #[test]
    fn learns_linear_trend() {
        let (x, y) = linear_data(80);
        let mut rf = RandomForestRegressor::new(25, 3);
        rf.fit(&x, &y).unwrap();
        let pred = rf.predict(&x).unwrap();
        // In-sample R^2 should be high.
        let mean = suod_linalg::stats::mean(&y);
        let ss_res: f64 = pred.iter().zip(&y).map(|(p, t)| (p - t) * (p - t)).sum();
        let ss_tot: f64 = y.iter().map(|t| (t - mean) * (t - mean)).sum();
        assert!(1.0 - ss_res / ss_tot > 0.95);
    }

    #[test]
    fn deterministic_per_seed() {
        let (x, y) = linear_data(40);
        let mut a = RandomForestRegressor::new(10, 5);
        let mut b = RandomForestRegressor::new(10, 5);
        a.fit(&x, &y).unwrap();
        b.fit(&x, &y).unwrap();
        assert_eq!(a.predict(&x).unwrap(), b.predict(&x).unwrap());
        let mut c = RandomForestRegressor::new(10, 6);
        c.fit(&x, &y).unwrap();
        assert_ne!(a.predict(&x).unwrap(), c.predict(&x).unwrap());
    }

    #[test]
    fn importances_favor_signal_feature() {
        let (x, y) = linear_data(60);
        let mut rf = RandomForestRegressor::new(20, 1);
        rf.fit(&x, &y).unwrap();
        let imp = rf.feature_importances().unwrap();
        assert!(imp[0] > imp[1]);
        assert!((imp.iter().sum::<f64>() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn not_fitted_error() {
        let rf = RandomForestRegressor::new(5, 0);
        assert!(matches!(
            rf.predict(&Matrix::zeros(1, 2)).unwrap_err(),
            Error::NotFitted(_)
        ));
        assert!(rf.feature_importances().is_err());
    }

    #[test]
    fn invalid_fraction_rejected() {
        assert!(RandomForestRegressor::new(5, 0)
            .with_max_features_fraction(0.0)
            .is_err());
        assert!(RandomForestRegressor::new(5, 0)
            .with_max_features_fraction(1.5)
            .is_err());
    }

    #[test]
    fn without_bootstrap_fits_training_data_closely() {
        let (x, y) = linear_data(30);
        let mut rf = RandomForestRegressor::new(8, 2).without_bootstrap();
        rf.fit(&x, &y).unwrap();
        let pred = rf.predict(&x).unwrap();
        for (p, t) in pred.iter().zip(&y) {
            assert!((p - t).abs() < 3.0, "{p} vs {t}");
        }
    }

    #[test]
    fn single_tree_forest_works() {
        let (x, y) = linear_data(20);
        let mut rf = RandomForestRegressor::new(1, 0);
        rf.fit(&x, &y).unwrap();
        assert_eq!(rf.predict(&x).unwrap().len(), 20);
    }
}
