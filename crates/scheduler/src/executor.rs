//! Real multi-threaded executor.
//!
//! Runs one OS thread per worker group; each worker executes its assigned
//! tasks sequentially and results are returned in the original task order.
//! Used by `suod::Suod` when `n_workers > 1`. (The paper's timing tables
//! are additionally reproduced with the [`crate::simulate`] module because
//! this reproduction's CI host has a single physical core — see
//! DESIGN.md §4.)

use crate::assignment::Assignment;
use crate::{Error, Result};

/// Executes closures across worker threads according to an [`Assignment`].
#[derive(Debug, Clone, Copy, Default)]
pub struct ThreadPoolExecutor;

impl ThreadPoolExecutor {
    /// Creates an executor.
    pub fn new() -> Self {
        Self
    }

    /// Runs `tasks` per `assignment`; `results[i]` corresponds to
    /// `tasks[i]` regardless of which worker ran it.
    ///
    /// Each worker accumulates `(index, output)` pairs in a private
    /// buffer; the buffers are merged into task order after the join, so
    /// there is no shared result table (and no lock) on the hot path.
    ///
    /// # Errors
    ///
    /// Returns [`Error::BadAssignment`] when the assignment does not cover
    /// exactly `tasks.len()` tasks.
    ///
    /// # Panics
    ///
    /// Panics if a task panics (the panic is propagated from the worker
    /// thread).
    pub fn run<T, F>(&self, tasks: Vec<F>, assignment: &Assignment) -> Result<Vec<T>>
    where
        T: Send,
        F: FnOnce() -> T + Send,
    {
        if assignment.n_tasks() != tasks.len() {
            return Err(Error::BadAssignment(format!(
                "assignment covers {} tasks but {} were provided",
                assignment.n_tasks(),
                tasks.len()
            )));
        }
        let n = tasks.len();

        // Hand each worker its own (index, task) list.
        let mut per_worker: Vec<Vec<(usize, F)>> = assignment
            .groups()
            .iter()
            .map(|g| Vec::with_capacity(g.len()))
            .collect();
        let mut indexed: Vec<Option<(usize, F)>> =
            tasks.into_iter().enumerate().map(Some).collect();
        for (w, group) in assignment.groups().iter().enumerate() {
            for &i in group {
                per_worker[w].push(indexed[i].take().expect("assignment indices are unique"));
            }
        }

        let buffers: Vec<Vec<(usize, T)>> = std::thread::scope(|scope| {
            let handles: Vec<_> = per_worker
                .into_iter()
                .map(|work| {
                    scope.spawn(move || {
                        let mut buffer = Vec::with_capacity(work.len());
                        for (i, task) in work {
                            buffer.push((i, task()));
                        }
                        buffer
                    })
                })
                .collect();
            // Join *every* worker before propagating any panic: aborting
            // on the first poisoned join would leak the still-running
            // threads' borrows out of the scope guard's control flow and
            // turn one task failure into a cascade.
            let joined: Vec<_> = handles.into_iter().map(|h| h.join()).collect();
            let mut buffers = Vec::with_capacity(joined.len());
            let mut first_panic = None;
            for outcome in joined {
                match outcome {
                    Ok(buffer) => buffers.push(buffer),
                    Err(payload) => {
                        if first_panic.is_none() {
                            first_panic = Some(payload);
                        }
                    }
                }
            }
            if let Some(payload) = first_panic {
                std::panic::resume_unwind(payload);
            }
            buffers
        });

        let mut slots: Vec<Option<T>> = Vec::with_capacity(n);
        slots.resize_with(n, || None);
        for (i, out) in buffers.into_iter().flatten() {
            slots[i] = Some(out);
        }
        Ok(slots
            .into_iter()
            .map(|s| s.expect("every task produced a result"))
            .collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::assignment::{bps_schedule, generic_schedule};
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn results_in_task_order() {
        let tasks: Vec<Box<dyn FnOnce() -> usize + Send>> =
            (0usize..10).map(|i| Box::new(move || i * i) as _).collect();
        let a = generic_schedule(10, 3).unwrap();
        let out = ThreadPoolExecutor::new().run(tasks, &a).unwrap();
        assert_eq!(out, (0..10).map(|i| i * i).collect::<Vec<_>>());
    }

    #[test]
    fn all_tasks_run_exactly_once() {
        static COUNTER: AtomicUsize = AtomicUsize::new(0);
        let tasks: Vec<Box<dyn FnOnce() + Send>> = (0..25)
            .map(|_| {
                Box::new(|| {
                    COUNTER.fetch_add(1, Ordering::SeqCst);
                }) as _
            })
            .collect();
        let a = generic_schedule(25, 4).unwrap();
        ThreadPoolExecutor::new().run(tasks, &a).unwrap();
        assert_eq!(COUNTER.load(Ordering::SeqCst), 25);
    }

    #[test]
    fn works_with_bps_assignment() {
        let costs: Vec<f64> = (1..=9).map(|i| i as f64).collect();
        let a = bps_schedule(&costs, 3, 1.0).unwrap();
        let tasks: Vec<Box<dyn FnOnce() -> usize + Send>> = (0usize..9)
            .map(|i| Box::new(move || i + 100) as _)
            .collect();
        let out = ThreadPoolExecutor::new().run(tasks, &a).unwrap();
        assert_eq!(out, (100..109).collect::<Vec<_>>());
    }

    #[test]
    #[should_panic(expected = "task exploded")]
    fn task_panic_propagates() {
        let a = generic_schedule(2, 2).unwrap();
        let tasks: Vec<Box<dyn FnOnce() -> usize + Send>> =
            vec![Box::new(|| 1), Box::new(|| panic!("task exploded"))];
        let _ = ThreadPoolExecutor::new().run(tasks, &a);
    }

    #[test]
    fn mismatched_assignment_rejected() {
        let a = generic_schedule(3, 1).unwrap();
        let tasks: Vec<Box<dyn FnOnce() -> usize + Send>> =
            (0usize..2).map(|i| Box::new(move || i) as _).collect();
        assert!(ThreadPoolExecutor::new().run(tasks, &a).is_err());
    }

    #[test]
    fn single_worker_is_sequential() {
        let a = generic_schedule(5, 1).unwrap();
        let tasks: Vec<Box<dyn FnOnce() -> usize + Send>> =
            (0usize..5).map(|i| Box::new(move || i * 2) as _).collect();
        let out = ThreadPoolExecutor::new().run(tasks, &a).unwrap();
        assert_eq!(out, vec![0, 2, 4, 6, 8]);
    }
}
