//! Property-based tests for the supervised regressors.

use proptest::prelude::*;
use suod_linalg::Matrix;
use suod_supervised::{
    DecisionTreeRegressor, KnnRegressor, RandomForestRegressor, Regressor, Ridge, TreeParams,
};

fn regression_problem() -> impl Strategy<Value = (Matrix, Vec<f64>)> {
    (4usize..40, 1usize..4).prop_flat_map(|(n, d)| {
        (
            proptest::collection::vec(-50.0f64..50.0, n * d),
            proptest::collection::vec(-10.0f64..10.0, d),
            -10.0f64..10.0,
        )
            .prop_map(move |(data, coefs, intercept)| {
                let x = Matrix::from_vec(n, d, data).expect("sized");
                let y: Vec<f64> = x
                    .rows_iter()
                    .map(|row| {
                        intercept + row.iter().zip(&coefs).map(|(&v, &c)| v * c).sum::<f64>()
                    })
                    .collect();
                (x, y)
            })
    })
}

fn all_regressors(seed: u64) -> Vec<Box<dyn Regressor>> {
    vec![
        Box::new(DecisionTreeRegressor::new(TreeParams::default(), seed)),
        Box::new(RandomForestRegressor::new(10, seed)),
        Box::new(Ridge::new(1e-6).expect("valid lambda")),
        Box::new(KnnRegressor::new(3).expect("valid k")),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn predictions_are_finite_and_sized((x, y) in regression_problem()) {
        for mut reg in all_regressors(3) {
            reg.fit(&x, &y).unwrap();
            let p = reg.predict(&x).unwrap();
            prop_assert_eq!(p.len(), x.nrows(), "{}", reg.name());
            prop_assert!(p.iter().all(|v| v.is_finite()), "{}", reg.name());
        }
    }

    #[test]
    fn ridge_recovers_linear_models((x, y) in regression_problem()) {
        // Ridge with tiny lambda must fit an exactly-linear target nearly
        // perfectly (up to conditioning).
        let spread = y.iter().cloned().fold(0.0f64, |a, v| a.max(v.abs())).max(1.0);
        let mut m = Ridge::new(1e-8).unwrap();
        m.fit(&x, &y).unwrap();
        let p = m.predict(&x).unwrap();
        for (pi, yi) in p.iter().zip(&y) {
            prop_assert!((pi - yi).abs() < 1e-3 * spread, "{pi} vs {yi}");
        }
    }

    #[test]
    fn tree_predictions_within_target_range((x, y) in regression_problem()) {
        // A CART leaf predicts a mean of training targets, so predictions
        // never leave [min y, max y].
        let lo = y.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = y.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        let mut t = DecisionTreeRegressor::default();
        t.fit(&x, &y).unwrap();
        for p in t.predict(&x).unwrap() {
            prop_assert!(p >= lo - 1e-9 && p <= hi + 1e-9);
        }
    }

    #[test]
    fn forest_predictions_within_target_range((x, y) in regression_problem()) {
        let lo = y.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = y.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        let mut f = RandomForestRegressor::new(8, 1);
        f.fit(&x, &y).unwrap();
        for p in f.predict(&x).unwrap() {
            prop_assert!(p >= lo - 1e-9 && p <= hi + 1e-9);
        }
    }

    #[test]
    fn deterministic_per_seed((x, y) in regression_problem(), seed in 0u64..64) {
        for (mut a, mut b) in all_regressors(seed).into_iter().zip(all_regressors(seed)) {
            a.fit(&x, &y).unwrap();
            b.fit(&x, &y).unwrap();
            prop_assert_eq!(a.predict(&x).unwrap(), b.predict(&x).unwrap(), "{}", a.name());
        }
    }

    #[test]
    fn constant_target_predicted_exactly((x, _) in regression_problem(), c in -5.0f64..5.0) {
        let y = vec![c; x.nrows()];
        for mut reg in all_regressors(0) {
            reg.fit(&x, &y).unwrap();
            for p in reg.predict(&x).unwrap() {
                prop_assert!((p - c).abs() < 1e-6, "{}: {p} vs {c}", reg.name());
            }
        }
    }
}
