#![warn(missing_docs)]

//! Command-line interface for the SUOD reproduction.
//!
//! The binary (`suod-cli`) wraps the `suod` library around the fitted-pool
//! lifecycle: **fit** a heterogeneous ensemble once and persist it as a
//! `suod-pool/1` snapshot, **score** datasets with it (locally or against
//! a server), and **serve** it online with hot reload. Argument parsing
//! is hand-rolled (no CLI dependency) and lives in [`flags`] so it is
//! unit-testable; `main.rs` is a thin shell.
//!
//! ```text
//! suod-cli fit --dataset cardio --snapshot pool.suod [--models 20] [--workers 2]
//! suod-cli detect --dataset cardio [--scale 0.25] [--models 20]
//!                 [--no-rp] [--no-psa] [--no-bps] [--workers 2]
//!                 [--contamination 0.1] [--seed 42] [--output scores.csv]
//! suod-cli detect --csv data.csv [--label-column 3] ...
//! suod-cli trace --dataset cardio [--format json|chrome] [--output trace.json] ...
//! suod-cli serve --dataset cardio [--chaos panic] [--listen 127.0.0.1:7878] ...
//! suod-cli serve --snapshot pool.suod --listen 127.0.0.1:7878
//! suod-cli score --connect 127.0.0.1:7878 --csv data.csv
//! suod-cli score --snapshot pool.suod --csv data.csv
//! suod-cli list-datasets
//! suod-cli help
//! ```

pub mod flags;

pub use flags::{
    parse_args, usage, Command, DetectArgs, FitArgs, ScoreArgs, ServeArgs, TraceArgs, TraceFormat,
    WireFormat,
};

use std::fmt::Write as _;
use std::net::TcpListener;
use std::sync::Arc;
use suod::prelude::*;
use suod_datasets::csv::{load_csv, CsvOptions};
use suod_datasets::{registry, Dataset};
use suod_metrics::{precision_at_n, roc_auc};
use suod_serve::{
    score_rows_text, serve_front, FrontConfig, Lane, LaneConfig, ScoreOutcome, ScoreService,
    ServeConfig, SubmitError, WireClient, WireResponse,
};

/// Runs a parsed command, returning the text to print.
///
/// # Errors
///
/// Returns a human-readable message on any pipeline failure.
pub fn run(command: Command) -> Result<String, String> {
    match command {
        Command::Help => Ok(usage().to_string()),
        Command::ListDatasets => {
            let mut out = String::new();
            writeln!(
                out,
                "{:<12} {:>8} {:>5} {:>9} {:>10}",
                "name", "n", "d", "outliers", "% outlier"
            )
            .expect("string write");
            for info in registry::TABLE_A1 {
                writeln!(
                    out,
                    "{:<12} {:>8} {:>5} {:>9} {:>10.2}",
                    info.name,
                    info.n_samples,
                    info.n_features,
                    info.n_outliers,
                    100.0 * info.contamination()
                )
                .expect("string write");
            }
            Ok(out)
        }
        Command::Fit(args) => fit(&args),
        Command::Detect(args) => detect(&args),
        Command::Trace(args) => trace(&args),
        Command::Serve(args) => serve(&args),
        Command::Score(args) => score(&args),
    }
}

fn load_dataset(args: &DetectArgs) -> Result<(Dataset, bool), String> {
    if let Some(name) = &args.dataset {
        let ds = registry::load_scaled(name, args.seed, args.scale)
            .map_err(|e| format!("cannot load dataset `{name}`: {e}"))?;
        Ok((ds, true))
    } else {
        let path = args.csv.as_ref().expect("validated in parse_args");
        let ds = load_csv(
            path,
            CsvOptions {
                has_header: None,
                label_column: args.label_column,
            },
        )
        .map_err(|e| format!("cannot load CSV: {e}"))?;
        let labeled = args.label_column.is_some();
        Ok((ds, labeled))
    }
}

fn clamp_pool(pool: Vec<ModelSpec>, n: usize) -> Vec<ModelSpec> {
    let cap = (n / 3).max(2);
    pool.into_iter()
        .map(|spec| match spec {
            ModelSpec::Abod { n_neighbors } => ModelSpec::Abod {
                n_neighbors: n_neighbors.clamp(2, cap),
            },
            ModelSpec::Knn {
                n_neighbors,
                method,
            } => ModelSpec::Knn {
                n_neighbors: n_neighbors.min(cap),
                method,
            },
            ModelSpec::Lof {
                n_neighbors,
                metric,
            } => ModelSpec::Lof {
                n_neighbors: n_neighbors.clamp(2, cap),
                metric,
            },
            ModelSpec::Cblof { n_clusters } => ModelSpec::Cblof {
                n_clusters: n_clusters.min(n / 4).max(1),
            },
            other => other,
        })
        .collect()
}

/// Builds (but does not fit) the estimator every pipeline subcommand
/// shares, translating the flag set into the builder's current API.
fn build_estimator(
    args: &DetectArgs,
    n_samples: usize,
    observer: Option<Arc<RecordingObserver>>,
) -> Result<Suod, String> {
    let pool = clamp_pool(suod::random_pool(args.models, args.seed), n_samples);
    let mut builder = Suod::builder()
        .base_estimators(pool)
        .with_projection(args.rp)
        .with_approximation(args.psa)
        .with_bps(args.bps)
        .n_workers(args.workers.max(1))
        .contamination(args.contamination)
        .seed(args.seed)
        .kernel(args.kernel_config());
    if let Some(recorder) = observer {
        builder = builder.observer(recorder);
    }
    builder
        .build()
        .map_err(|e| format!("invalid configuration: {e}"))
}

fn fit(args: &FitArgs) -> Result<String, String> {
    let (ds, _) = load_dataset(&args.detect)?;
    let mut clf = build_estimator(&args.detect, ds.n_samples(), None)?;

    let fit_start = std::time::Instant::now();
    clf.fit(&ds.x).map_err(|e| format!("fit failed: {e}"))?;
    let fit_secs = fit_start.elapsed().as_secs_f64();
    clf.save(&args.snapshot)
        .map_err(|e| format!("cannot write snapshot: {e}"))?;
    let bytes = std::fs::metadata(&args.snapshot)
        .map(|m| m.len())
        .unwrap_or(0);

    let mut out = String::new();
    writeln!(
        out,
        "dataset: {} ({} samples x {} features)",
        ds.name,
        ds.n_samples(),
        ds.n_features()
    )
    .expect("string write");
    writeln!(
        out,
        "pool: {} models | rp={} psa={} bps={} workers={}",
        args.detect.models, args.detect.rp, args.detect.psa, args.detect.bps, args.detect.workers
    )
    .expect("string write");
    writeln!(out, "fit time: {fit_secs:.3}s").expect("string write");
    writeln!(
        out,
        "snapshot written to {} ({bytes} bytes, {})",
        args.snapshot,
        suod::SNAPSHOT_FORMAT
    )
    .expect("string write");
    Ok(out)
}

fn detect(args: &DetectArgs) -> Result<String, String> {
    let (ds, labeled) = load_dataset(args)?;
    let mut clf = build_estimator(args, ds.n_samples(), None)?;

    let fit_start = std::time::Instant::now();
    clf.fit(&ds.x).map_err(|e| format!("fit failed: {e}"))?;
    let fit_secs = fit_start.elapsed().as_secs_f64();

    let scores = clf
        .combined_scores(&ds.x)
        .map_err(|e| format!("scoring failed: {e}"))?;
    let labels = clf
        .predict(&ds.x)
        .map_err(|e| format!("predict failed: {e}"))?;

    let mut out = String::new();
    writeln!(
        out,
        "dataset: {} ({} samples x {} features)",
        ds.name,
        ds.n_samples(),
        ds.n_features()
    )
    .expect("string write");
    writeln!(
        out,
        "pool: {} models | rp={} psa={} bps={} workers={}",
        args.models, args.rp, args.psa, args.bps, args.workers
    )
    .expect("string write");
    writeln!(
        out,
        "kernels: backend={} {}",
        args.backend.name(),
        clf.diagnostics()
            .map(|d| d.cpu_features().to_string())
            .unwrap_or_else(|| "unavailable".into()),
    )
    .expect("string write");
    writeln!(out, "snapshot format: {}", suod::SNAPSHOT_FORMAT).expect("string write");
    writeln!(out, "fit time: {fit_secs:.3}s").expect("string write");
    writeln!(
        out,
        "flagged: {}/{} samples",
        labels.iter().sum::<i32>(),
        labels.len()
    )
    .expect("string write");
    if labeled && ds.n_outliers() > 0 && ds.n_outliers() < ds.n_samples() {
        let auc = roc_auc(&ds.y, &scores).map_err(|e| e.to_string())?;
        let pan = precision_at_n(&ds.y, &scores, None).map_err(|e| e.to_string())?;
        writeln!(out, "ROC-AUC: {auc:.4}").expect("string write");
        writeln!(out, "P@N:     {pan:.4}").expect("string write");
    }

    if let Some(path) = &args.output {
        let mut csv = String::from("index,score,label\n");
        for (i, (s, l)) in scores.iter().zip(&labels).enumerate() {
            writeln!(csv, "{i},{s:.6},{l}").expect("string write");
        }
        std::fs::write(path, csv).map_err(|e| format!("cannot write {path}: {e}"))?;
        writeln!(out, "scores written to {path}").expect("string write");
    }
    Ok(out)
}

fn trace(args: &TraceArgs) -> Result<String, String> {
    let (ds, _) = load_dataset(&args.detect)?;
    let recorder = Arc::new(RecordingObserver::new());
    let mut clf = build_estimator(&args.detect, ds.n_samples(), Some(recorder.clone()))?;
    clf.fit(&ds.x).map_err(|e| format!("fit failed: {e}"))?;
    clf.decision_function(&ds.x)
        .map_err(|e| format!("scoring failed: {e}"))?;

    let trace = recorder.trace();
    let body = match args.format {
        TraceFormat::Json => {
            let json = suod::observe::export::to_json(&trace);
            // Validate the export against the schema before it leaves the
            // process: a trace we cannot re-parse is a bug, not output.
            suod::observe::export::from_json(&json)
                .map_err(|e| format!("exported trace failed schema validation: {e}"))?;
            json
        }
        TraceFormat::Chrome => suod::observe::export::to_chrome_trace(&trace),
    };

    let mut out = String::new();
    writeln!(
        out,
        "trace: {} spans, {} stages with latency histograms, {:.3}s wall",
        trace.spans().len(),
        trace.histograms().len(),
        trace.wall_us() as f64 / 1e6
    )
    .expect("string write");
    for (counter, value) in trace.counters() {
        if value > 0 {
            writeln!(out, "  {} = {value}", counter.name()).expect("string write");
        }
    }
    match &args.detect.output {
        Some(path) => {
            std::fs::write(path, body).map_err(|e| format!("cannot write {path}: {e}"))?;
            writeln!(out, "trace written to {path}").expect("string write");
        }
        None => out.push_str(&body),
    }
    Ok(out)
}

fn serve(args: &ServeArgs) -> Result<String, String> {
    // The pool comes from a snapshot (pre-fitted elsewhere) or a fresh
    // fit on the data source; the replay demo additionally needs the
    // data source for its query rows.
    let ds = if args.detect.dataset.is_some() || args.detect.csv.is_some() {
        Some(load_dataset(&args.detect)?.0)
    } else {
        None
    };
    let clf = match &args.snapshot {
        Some(path) => Suod::load(path).map_err(|e| format!("cannot load snapshot {path}: {e}"))?,
        None => {
            let ds = ds.as_ref().expect("validated in parse_args");
            let mut pool = clamp_pool(
                suod::random_pool(args.detect.models, args.detect.seed),
                ds.n_samples(),
            );
            if let Some(mode) = args.chaos {
                pool.push(ModelSpec::Chaos {
                    mode,
                    n_neighbors: 5,
                });
            }
            let mut clf = Suod::builder()
                .base_estimators(pool)
                .with_projection(args.detect.rp)
                .with_approximation(args.detect.psa)
                .with_bps(args.detect.bps)
                .n_workers(args.detect.workers.max(1))
                .min_healthy_fraction(args.min_healthy)
                .seed(args.detect.seed)
                .build()
                .map_err(|e| format!("invalid configuration: {e}"))?;
            clf.fit(&ds.x).map_err(|e| format!("fit failed: {e}"))?;
            clf
        }
    };

    let config = ServeConfig {
        queue_capacity: args.queue,
        max_batch_rows: args.batch_rows,
        batch_window: std::time::Duration::from_millis(args.window_ms),
        default_deadline_ms: args.deadline_ms,
        predict_failure_budget: args.failure_budget,
        min_healthy_fraction: args.min_healthy,
        ..ServeConfig::default()
    };
    let mut service =
        ScoreService::new(clf, config).map_err(|e| format!("invalid serve config: {e}"))?;
    service.spawn_dispatcher();

    if let Some(addr) = &args.listen {
        let listener =
            TcpListener::bind(addr).map_err(|e| format!("cannot listen on {addr}: {e}"))?;
        let bound = listener
            .local_addr()
            .map_err(|e| format!("cannot resolve bound address: {e}"))?;
        println!(
            "serving {} on {bound} ({} = stop)",
            suod_serve::WIRE_FORMAT,
            match args.max_conns {
                0 => "ctrl-c".to_string(),
                n => format!("{n} connections"),
            }
        );
        let front = FrontConfig {
            worker_threads: args.front_workers,
            idle_timeout: std::time::Duration::from_millis(args.idle_timeout_ms),
            max_pipeline: args.max_pipeline,
            lanes: LaneConfig {
                per_client_inflight: args.client_quota,
                normal_lane_headroom: args.lane_headroom,
            },
            max_conns: args.max_conns,
            ..FrontConfig::default()
        };
        let report = serve_front(&listener, &service, &front, &suod::observe::noop())
            .map_err(|e| e.to_string())?;
        let mut out = report.to_string();
        out.push('\n');
        write!(out, "{}", service.report()).expect("string write");
        return Ok(out);
    }

    // Replay demo: concurrent clients score slices of the dataset's own
    // rows through the full admission/batching/quarantine path.
    let ds = ds.ok_or("replay demo needs --dataset or --csv (or use --listen)")?;
    let service = Arc::new(service);
    let n_rows = ds.x.nrows();
    let mut clients = Vec::new();
    for r in 0..args.requests {
        let service = Arc::clone(&service);
        let rows: Vec<Vec<f64>> = (0..args.rows_per_request)
            .map(|i| ds.x.row((r * args.rows_per_request + i) % n_rows).to_vec())
            .collect();
        clients.push(std::thread::spawn(move || {
            let query = suod_linalg::Matrix::from_rows(&rows).expect("rectangular request");
            let ticket = loop {
                match service.submit(query.clone()) {
                    Ok(t) => break t,
                    Err(SubmitError::Busy { .. }) => {
                        std::thread::sleep(std::time::Duration::from_millis(1))
                    }
                    Err(e) => return (r, Err(format!("submit failed: {e}"))),
                }
            };
            (r, Ok(ticket.wait()))
        }));
    }

    let mut out = String::new();
    let mut outcomes: Vec<(usize, Result<ScoreOutcome, String>)> = clients
        .into_iter()
        .map(|c| c.join().expect("client thread"))
        .collect();
    outcomes.sort_by_key(|(r, _)| *r);
    for (r, outcome) in outcomes {
        match outcome {
            Ok(ScoreOutcome::Scored(batch)) if batch.faults.is_empty() => {
                writeln!(
                    out,
                    "request {r:2}: scored clean ({} rows, {}ms)",
                    batch.combined.len(),
                    batch.latency_ms
                )
                .expect("string write");
            }
            Ok(ScoreOutcome::Scored(batch)) => {
                let faults: Vec<String> = batch
                    .faults
                    .iter()
                    .map(|fault| {
                        format!(
                            "{}#{}{}",
                            fault.name,
                            fault.pool_index,
                            if fault.quarantined {
                                " [quarantined]"
                            } else {
                                ""
                            }
                        )
                    })
                    .collect();
                writeln!(
                    out,
                    "request {r:2}: scored degraded ({}/{} models healthy): {}",
                    batch.healthy_models,
                    batch.total_models,
                    faults.join(", ")
                )
                .expect("string write");
            }
            Ok(other) => writeln!(out, "request {r:2}: {other:?}").expect("string write"),
            Err(msg) => writeln!(out, "request {r:2}: {msg}").expect("string write"),
        }
    }
    writeln!(out, "{}", service.report()).expect("string write");
    Ok(out)
}

/// Scores `rows` against a `serve --listen` server over the requested
/// wire protocol and returns the combined scores. Thin wrapper over the
/// clients in `suod_serve::net` — the protocol itself lives there.
///
/// # Errors
///
/// Returns a message on connection failure, a `busy` / `shed` / `error`
/// response, or a malformed reply.
pub fn score_rows(addr: &str, rows: &[Vec<f64>], wire: WireFormat) -> Result<Vec<f64>, String> {
    match wire {
        WireFormat::Text => score_rows_text(addr, rows),
        WireFormat::Binary => {
            let query = suod_linalg::Matrix::from_rows(rows)
                .map_err(|e| format!("rows are not a matrix: {e}"))?;
            let mut client =
                WireClient::connect(addr).map_err(|e| format!("cannot connect to {addr}: {e}"))?;
            match client
                .score(&query, Lane::Normal, None)
                .map_err(|e| e.to_string())?
            {
                WireResponse::Ok { scores, .. } => Ok(scores),
                WireResponse::Busy { reason, .. } => {
                    Err(format!("server refused request: busy ({})", reason.name()))
                }
                WireResponse::Shed {
                    waited_ms,
                    deadline_ms,
                    ..
                } => Err(format!(
                    "server refused request: shed waited_ms={waited_ms} deadline_ms={deadline_ms}"
                )),
                WireResponse::Error { message, .. } => {
                    Err(format!("server refused request: {message}"))
                }
            }
        }
    }
}

fn score(args: &ScoreArgs) -> Result<String, String> {
    if let Some(snapshot) = &args.snapshot {
        return score_offline(args, snapshot);
    }
    let connect = args.connect.as_ref().expect("validated in parse_args");
    let csv = args.csv.as_ref().expect("validated in parse_args");
    let ds = load_csv(
        csv,
        CsvOptions {
            has_header: None,
            label_column: args.label_column,
        },
    )
    .map_err(|e| format!("cannot load CSV: {e}"))?;
    let rows: Vec<Vec<f64>> = (0..ds.x.nrows()).map(|r| ds.x.row(r).to_vec()).collect();
    let scores = score_rows(connect, &rows, args.wire)?;

    let mut csv_out = String::from("index,score\n");
    for (i, s) in scores.iter().enumerate() {
        writeln!(csv_out, "{i},{s:.6}").expect("string write");
    }
    let mut out = format!("scored {} rows via {connect}\n", scores.len());
    match &args.output {
        Some(path) => {
            std::fs::write(path, csv_out).map_err(|e| format!("cannot write {path}: {e}"))?;
            writeln!(out, "scores written to {path}").expect("string write");
        }
        None => out.push_str(&csv_out),
    }
    Ok(out)
}

/// `score --snapshot`: load a fitted pool and score rows in-process —
/// the fit/score lifecycle split without a server in between.
fn score_offline(args: &ScoreArgs, snapshot: &str) -> Result<String, String> {
    let clf = Suod::load(snapshot).map_err(|e| format!("cannot load snapshot {snapshot}: {e}"))?;
    let source = DetectArgs {
        dataset: args.dataset.clone(),
        csv: args.csv.clone(),
        label_column: args.label_column,
        scale: args.scale,
        seed: args.seed,
        ..DetectArgs::default()
    };
    let (ds, labeled) = load_dataset(&source)?;
    let scores = clf
        .combined_scores(&ds.x)
        .map_err(|e| format!("scoring failed: {e}"))?;

    let mut out = format!(
        "scored {} rows with snapshot {snapshot} ({} models)\n",
        scores.len(),
        clf.diagnostics()
            .map(|d| d.models().len())
            .unwrap_or_default(),
    );
    if labeled && ds.n_outliers() > 0 && ds.n_outliers() < ds.n_samples() {
        let auc = roc_auc(&ds.y, &scores).map_err(|e| e.to_string())?;
        writeln!(out, "ROC-AUC: {auc:.4}").expect("string write");
    }
    let mut csv_out = String::from("index,score\n");
    for (i, s) in scores.iter().enumerate() {
        writeln!(csv_out, "{i},{s:.6}").expect("string write");
    }
    match &args.output {
        Some(path) => {
            std::fs::write(path, csv_out).map_err(|e| format!("cannot write {path}: {e}"))?;
            writeln!(out, "scores written to {path}").expect("string write");
        }
        None => out.push_str(&csv_out),
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(s: &str) -> Vec<String> {
        s.split_whitespace().map(str::to_string).collect()
    }

    #[test]
    fn parses_help_and_list() {
        assert_eq!(parse_args(&[]).unwrap(), Command::Help);
        assert_eq!(parse_args(&argv("help")).unwrap(), Command::Help);
        assert_eq!(parse_args(&argv("--help")).unwrap(), Command::Help);
        assert_eq!(
            parse_args(&argv("list-datasets")).unwrap(),
            Command::ListDatasets
        );
    }

    #[test]
    fn parses_detect_flags() {
        let cmd = parse_args(&argv(
            "detect --dataset cardio --scale 0.1 --models 8 --no-rp --workers 3 --seed 7",
        ))
        .unwrap();
        let Command::Detect(d) = cmd else {
            panic!("expected detect")
        };
        assert_eq!(d.dataset.as_deref(), Some("cardio"));
        assert_eq!(d.scale, 0.1);
        assert_eq!(d.models, 8);
        assert!(!d.rp);
        assert!(d.psa && d.bps);
        assert_eq!(d.workers, 3);
        assert_eq!(d.seed, 7);
    }

    #[test]
    fn rejects_bad_input() {
        assert!(parse_args(&argv("detect")).is_err()); // no source
        assert!(parse_args(&argv("detect --dataset a --csv b.csv")).is_err());
        assert!(parse_args(&argv("detect --dataset a --bogus")).is_err());
        assert!(parse_args(&argv("detect --dataset a --models x")).is_err());
        assert!(parse_args(&argv("detect --dataset a --models")).is_err());
        assert!(parse_args(&argv("detect --dataset a --backend simd")).is_err());
        assert!(parse_args(&argv("detect --dataset a --precision f16")).is_err());
        assert!(parse_args(&argv("detect --dataset a --neighbor-backend kdtree")).is_err());
        assert!(parse_args(&argv("detect --dataset a --ef-search fast")).is_err());
        // --snapshot belongs to fit/serve/score, not detect.
        assert!(parse_args(&argv("detect --dataset a --snapshot p.suod")).is_err());
        assert!(parse_args(&argv("frobnicate")).is_err());
    }

    #[test]
    fn parses_fit_flags() {
        let cmd = parse_args(&argv(
            "fit --dataset cardio --snapshot pool.suod --models 6 --workers 2 --seed 9",
        ))
        .unwrap();
        let Command::Fit(f) = cmd else {
            panic!("expected fit")
        };
        assert_eq!(f.detect.dataset.as_deref(), Some("cardio"));
        assert_eq!(f.snapshot, "pool.suod");
        assert_eq!(f.detect.models, 6);
        assert_eq!(f.detect.seed, 9);

        assert!(parse_args(&argv("fit --dataset cardio")).is_err()); // no snapshot
        assert!(parse_args(&argv("fit --snapshot pool.suod")).is_err()); // no source
        assert!(parse_args(&argv("fit --dataset a --format json")).is_err());
    }

    #[test]
    fn parses_kernel_flags() {
        let cmd = parse_args(&argv(
            "detect --dataset cardio --backend gemm --precision mixed",
        ))
        .unwrap();
        let Command::Detect(d) = cmd else {
            panic!("expected detect")
        };
        assert_eq!(d.backend, DistanceBackend::Gemm);
        assert_eq!(d.precision, Precision::Mixed);

        // Defaults: the exact blocked/f64 pipeline.
        let Command::Detect(d) = parse_args(&argv("detect --dataset cardio")).unwrap() else {
            panic!("expected detect")
        };
        assert_eq!(d.backend, DistanceBackend::Blocked);
        assert_eq!(d.precision, Precision::F64);
        assert_eq!(d.neighbor, NeighborBackend::Exact);
        assert_eq!(d.ef_search, None);
    }

    #[test]
    fn parses_neighbor_flags() {
        let cmd = parse_args(&argv(
            "detect --dataset cardio --neighbor-backend hnsw --ef-search 128",
        ))
        .unwrap();
        let Command::Detect(d) = cmd else {
            panic!("expected detect")
        };
        assert!(d.neighbor.is_approximate());
        assert_eq!(d.ef_search, Some(128));
        // The folded kernel config carries the override.
        match d.kernel_config().neighbor {
            NeighborBackend::Hnsw(params) => assert_eq!(params.ef_search, 128),
            other => panic!("expected hnsw, got {other:?}"),
        }
    }

    #[test]
    fn detect_reports_cpu_features() {
        let cmd = parse_args(&argv(
            "detect --dataset pima --scale 0.2 --models 4 --seed 3 --backend gemm \
             --precision mixed",
        ))
        .unwrap();
        let out = run(cmd).unwrap();
        assert!(out.contains("kernels: backend=gemm lane="), "{out}");
        assert!(out.contains("precision=mixed"), "{out}");
        assert!(out.contains("neighbors=exact"), "{out}");
        assert!(out.contains("snapshot format: suod-pool/1"), "{out}");
    }

    #[test]
    fn detect_reports_hnsw_backend() {
        // Registry analogs are far below DEFAULT_HNSW_MIN_ROWS at this
        // scale, so the run exercises the exactness fallback while the
        // kernels line still reports the configured hnsw backend.
        let cmd = parse_args(&argv(
            "detect --dataset pima --scale 0.2 --models 4 --seed 3 \
             --neighbor-backend hnsw --ef-search 32",
        ))
        .unwrap();
        let out = run(cmd).unwrap();
        assert!(out.contains("neighbors=hnsw(ef_search=32)"), "{out}");
    }

    #[test]
    fn list_datasets_prints_registry() {
        let out = run(Command::ListDatasets).unwrap();
        assert!(out.contains("cardio"));
        assert!(out.contains("shuttle"));
        assert_eq!(out.lines().count(), 1 + registry::TABLE_A1.len());
    }

    #[test]
    fn detect_on_registry_analog() {
        let cmd = parse_args(&argv(
            "detect --dataset pima --scale 0.2 --models 5 --workers 1 --seed 3",
        ))
        .unwrap();
        let out = run(cmd).unwrap();
        assert!(out.contains("ROC-AUC"), "{out}");
        assert!(out.contains("flagged"));
    }

    #[test]
    fn detect_on_csv_roundtrip() {
        let dir = std::env::temp_dir().join("suod_cli_test");
        std::fs::create_dir_all(&dir).unwrap();
        let input = dir.join("in.csv");
        let mut body = String::from("a,b,label\n");
        for i in 0..40 {
            body.push_str(&format!("{}.0,{}.5,0\n", i % 7, (i * 3) % 5));
        }
        body.push_str("50.0,50.0,1\n");
        std::fs::write(&input, body).unwrap();
        let output = dir.join("out.csv");

        let cmd = parse_args(&argv(&format!(
            "detect --csv {} --label-column 2 --models 4 --seed 1 --output {}",
            input.display(),
            output.display()
        )))
        .unwrap();
        let report = run(cmd).unwrap();
        assert!(report.contains("ROC-AUC"), "{report}");
        let written = std::fs::read_to_string(&output).unwrap();
        assert!(written.starts_with("index,score,label\n"));
        assert_eq!(written.lines().count(), 1 + 41);
    }

    #[test]
    fn detect_errors_are_messages_not_panics() {
        let cmd = parse_args(&argv("detect --dataset not-a-dataset")).unwrap();
        assert!(run(cmd).is_err());
        let cmd = parse_args(&argv("detect --csv /nonexistent/nope.csv")).unwrap();
        assert!(run(cmd).is_err());
    }

    #[test]
    fn parses_trace_flags() {
        let cmd = parse_args(&argv(
            "trace --dataset pima --scale 0.2 --models 4 --format chrome --workers 2",
        ))
        .unwrap();
        let Command::Trace(t) = cmd else {
            panic!("expected trace")
        };
        assert_eq!(t.detect.dataset.as_deref(), Some("pima"));
        assert_eq!(t.detect.models, 4);
        assert_eq!(t.format, TraceFormat::Chrome);

        // Default format is the stable JSON schema.
        let Command::Trace(t) = parse_args(&argv("trace --dataset pima")).unwrap() else {
            panic!("expected trace")
        };
        assert_eq!(t.format, TraceFormat::Json);

        assert!(parse_args(&argv("trace")).is_err()); // no source
        assert!(parse_args(&argv("trace --dataset pima --format xml")).is_err());
        // --format belongs to trace only.
        assert!(parse_args(&argv("detect --dataset pima --format json")).is_err());
    }

    #[test]
    fn parses_serve_flags() {
        let cmd = parse_args(&argv(
            "serve --dataset cardio --scale 0.2 --models 6 --workers 2 --queue 8 \
             --batch-rows 64 --window-ms 5 --deadline-ms 100 --failure-budget 2 \
             --min-healthy 0.6 --chaos panic --requests 4 --rows-per-request 8",
        ))
        .unwrap();
        let Command::Serve(s) = cmd else {
            panic!("expected serve")
        };
        assert_eq!(s.detect.dataset.as_deref(), Some("cardio"));
        assert_eq!(s.detect.workers, 2);
        assert_eq!(s.queue, 8);
        assert_eq!(s.batch_rows, 64);
        assert_eq!(s.window_ms, 5);
        assert_eq!(s.deadline_ms, Some(100));
        assert_eq!(s.failure_budget, 2);
        assert_eq!(s.min_healthy, 0.6);
        assert_eq!(s.chaos, Some(ChaosMode::PanicOnPredict));
        assert_eq!(s.requests, 4);
        assert_eq!(s.rows_per_request, 8);
        assert_eq!(s.listen, None);
        assert_eq!(s.snapshot, None);

        // Chaos mode spellings.
        let parse = |raw: &str| {
            parse_args(&argv(&format!("serve --dataset a --chaos {raw}"))).map(|cmd| match cmd {
                Command::Serve(s) => s.chaos,
                _ => panic!("expected serve"),
            })
        };
        assert_eq!(parse("nan").unwrap(), Some(ChaosMode::NanOnPredict));
        assert_eq!(parse("slow").unwrap(), Some(ChaosMode::SlowPredict(25)));
        assert_eq!(parse("slow:9").unwrap(), Some(ChaosMode::SlowPredict(9)));
        assert!(parse("explode").is_err());

        assert!(parse_args(&argv("serve")).is_err()); // no source
        assert!(parse_args(&argv("serve --dataset a --csv b.csv")).is_err());
        assert!(parse_args(&argv("serve --dataset a --format json")).is_err());

        // Snapshot mode: standalone only with --listen; composes with a
        // data source for the replay demo.
        assert!(parse_args(&argv("serve --snapshot p.suod")).is_err());
        let Command::Serve(s) =
            parse_args(&argv("serve --snapshot p.suod --listen 127.0.0.1:0")).unwrap()
        else {
            panic!("expected serve")
        };
        assert_eq!(s.snapshot.as_deref(), Some("p.suod"));
        let Command::Serve(s) =
            parse_args(&argv("serve --snapshot p.suod --dataset cardio")).unwrap()
        else {
            panic!("expected serve")
        };
        assert_eq!(s.snapshot.as_deref(), Some("p.suod"));
        assert_eq!(s.detect.dataset.as_deref(), Some("cardio"));
    }

    #[test]
    fn parses_score_flags() {
        let cmd = parse_args(&argv(
            "score --connect 127.0.0.1:7878 --csv q.csv --label-column 2",
        ))
        .unwrap();
        let Command::Score(s) = cmd else {
            panic!("expected score")
        };
        assert_eq!(s.connect.as_deref(), Some("127.0.0.1:7878"));
        assert_eq!(s.csv.as_deref(), Some("q.csv"));
        assert_eq!(s.label_column, Some(2));
        assert_eq!(s.output, None);

        // Offline mode spellings.
        let Command::Score(s) = parse_args(&argv(
            "score --snapshot pool.suod --dataset cardio --scale 0.1 --seed 7",
        ))
        .unwrap() else {
            panic!("expected score")
        };
        assert_eq!(s.snapshot.as_deref(), Some("pool.suod"));
        assert_eq!(s.dataset.as_deref(), Some("cardio"));
        assert_eq!(s.scale, 0.1);
        assert_eq!(s.seed, 7);

        assert!(parse_args(&argv("score --csv q.csv")).is_err()); // no addr/snapshot
        assert!(parse_args(&argv("score --connect 127.0.0.1:1")).is_err()); // no csv
        assert!(parse_args(&argv("score --snapshot p.suod")).is_err()); // no rows
        assert!(parse_args(&argv("score --connect a --snapshot p --csv q.csv")).is_err());
        assert!(parse_args(&argv("score --connect a --csv b --dataset c")).is_err());
        assert!(parse_args(&argv("score --snapshot p --csv b --dataset c")).is_err());
        assert!(parse_args(&argv("score --connect a --csv b --models 3")).is_err());
    }

    #[test]
    fn fit_then_score_snapshot_roundtrip() {
        let dir = std::env::temp_dir().join("suod_cli_fit_test");
        std::fs::create_dir_all(&dir).unwrap();
        let snapshot = dir.join("pool.suod");

        let cmd = parse_args(&argv(&format!(
            "fit --dataset pima --scale 0.2 --models 4 --seed 3 --snapshot {}",
            snapshot.display()
        )))
        .unwrap();
        let out = run(cmd).unwrap();
        assert!(out.contains("snapshot written to"), "{out}");
        assert!(out.contains("suod-pool/1"), "{out}");
        assert!(snapshot.exists());

        // Offline scoring with the saved pool on the same rows reports
        // metrics and emits one score per row.
        let output = dir.join("scores.csv");
        let cmd = parse_args(&argv(&format!(
            "score --snapshot {} --dataset pima --scale 0.2 --seed 3 --output {}",
            snapshot.display(),
            output.display()
        )))
        .unwrap();
        let report = run(cmd).unwrap();
        assert!(report.contains("scored"), "{report}");
        assert!(report.contains("ROC-AUC"), "{report}");
        let written = std::fs::read_to_string(&output).unwrap();
        assert!(written.starts_with("index,score\n"));

        // A corrupt snapshot is a typed message, not a panic.
        let garbled = dir.join("garbled.suod");
        let mut bytes = std::fs::read(&snapshot).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0x40;
        std::fs::write(&garbled, bytes).unwrap();
        let cmd = parse_args(&argv(&format!(
            "score --snapshot {} --dataset pima --scale 0.2",
            garbled.display()
        )))
        .unwrap();
        let err = run(cmd).unwrap_err();
        assert!(err.contains("cannot load snapshot"), "{err}");
    }

    #[test]
    fn serve_replay_demo_answers_every_request() {
        // NanOnPredict keeps stderr quiet (no panic hook noise) while
        // still exercising the degradation path end to end.
        let cmd = parse_args(&argv(
            "serve --dataset pima --scale 0.2 --models 4 --seed 3 --workers 2 \
             --requests 3 --rows-per-request 8 --batch-rows 8 --chaos nan \
             --failure-budget 2 --min-healthy 0.5",
        ))
        .unwrap();
        let out = run(cmd).unwrap();
        assert!(out.contains("request  0: scored"), "{out}");
        assert!(out.contains("request  2: scored"), "{out}");
        assert!(out.contains("serve: 3 admitted"), "{out}");
        assert!(out.contains("chaos#4"), "{out}");
        assert!(!out.contains("Failed"), "{out}");
    }

    #[test]
    fn serve_replay_demo_from_snapshot() {
        let dir = std::env::temp_dir().join("suod_cli_serve_snapshot_test");
        std::fs::create_dir_all(&dir).unwrap();
        let snapshot = dir.join("pool.suod");
        let cmd = parse_args(&argv(&format!(
            "fit --dataset pima --scale 0.2 --models 4 --seed 3 --snapshot {}",
            snapshot.display()
        )))
        .unwrap();
        run(cmd).unwrap();

        // The saved pool serves the replay demo without refitting.
        let cmd = parse_args(&argv(&format!(
            "serve --snapshot {} --dataset pima --scale 0.2 --seed 3 \
             --requests 2 --rows-per-request 4",
            snapshot.display()
        )))
        .unwrap();
        let out = run(cmd).unwrap();
        assert!(out.contains("request  0: scored clean"), "{out}");
        assert!(out.contains("request  1: scored clean"), "{out}");
        assert!(out.contains("serve: 2 admitted"), "{out}");
    }

    #[test]
    fn serve_listen_and_score_round_trip_over_loopback() {
        let dir = std::env::temp_dir().join("suod_cli_serve_test");
        std::fs::create_dir_all(&dir).unwrap();

        // A small healthy service bound to an ephemeral loopback port.
        let mut rows: Vec<Vec<f64>> = (0..60)
            .map(|i| vec![(i % 8) as f64, (i % 5) as f64 * 0.5, (i % 3) as f64])
            .collect();
        rows.push(vec![40.0, 40.0, 40.0]);
        let x = suod_linalg::Matrix::from_rows(&rows).unwrap();
        let mut clf = Suod::builder()
            .base_estimators(vec![
                ModelSpec::Hbos {
                    n_bins: 8,
                    tolerance: 0.3,
                },
                ModelSpec::IForest {
                    n_estimators: 10,
                    max_features: 1.0,
                },
            ])
            .n_workers(1)
            .seed(5)
            .build()
            .unwrap();
        clf.fit(&x).unwrap();
        let mut service = ScoreService::new(clf, ServeConfig::default()).unwrap();
        service.spawn_dispatcher();

        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap().to_string();
        let server = std::thread::spawn(move || {
            let front = FrontConfig {
                worker_threads: 2,
                max_conns: 4,
                ..FrontConfig::default()
            };
            let report = serve_front(&listener, &service, &front, &suod::observe::noop()).unwrap();
            (report, service.report())
        });

        // Connection 1: binary keep-alive client round trip.
        let queries = vec![vec![1.0, 0.5, 2.0], vec![39.0, 41.0, 38.0]];
        let scores = score_rows(&addr, &queries, WireFormat::Binary).unwrap();
        assert_eq!(scores.len(), 2);
        assert!(scores.iter().all(|s| s.is_finite()));
        assert!(scores[1] > scores[0], "planted outlier must score higher");

        // Connection 2: the text debug path returns the same bits.
        let text_scores = score_rows(&addr, &queries, WireFormat::Text).unwrap();
        assert_eq!(
            scores.iter().map(|s| s.to_bits()).collect::<Vec<_>>(),
            text_scores.iter().map(|s| s.to_bits()).collect::<Vec<_>>(),
            "binary and text protocols must agree bit-for-bit"
        );

        // Connection 3: a ragged text request is answered in-band, not
        // fatal (the binary client rejects ragged rows before sending).
        let err =
            score_rows(&addr, &[vec![1.0, 2.0, 3.0], vec![4.0]], WireFormat::Text).unwrap_err();
        assert!(err.contains("server refused request"), "{err}");

        // Connection 4: the score subcommand end to end, via CSV.
        let input = dir.join("queries.csv");
        std::fs::write(&input, "a,b,c\n0.0,0.5,1.0\n38.0,40.0,39.0\n").unwrap();
        let output = dir.join("scores.csv");
        let cmd = parse_args(&argv(&format!(
            "score --connect {addr} --csv {} --output {}",
            input.display(),
            output.display()
        )))
        .unwrap();
        let report = run(cmd).unwrap();
        assert!(report.contains("scored 2 rows"), "{report}");
        let written = std::fs::read_to_string(&output).unwrap();
        assert!(written.starts_with("index,score\n"));
        assert_eq!(written.lines().count(), 3);

        let (front_report, report) = server.join().unwrap();
        assert_eq!(front_report.conns_accepted, 4);
        assert_eq!(front_report.wire_requests, 2); // conn 1 + the subcommand
        assert_eq!(front_report.text_requests, 2); // conn 2 + the ragged one
        assert_eq!(front_report.responses_ok, 3);
        assert_eq!(front_report.responses_error, 1);
        assert_eq!(report.requests_scored, 3);
        assert_eq!(report.admitted, 3); // the ragged request never queued
    }

    #[test]
    fn trace_exports_schema_valid_json() {
        let dir = std::env::temp_dir().join("suod_cli_trace_test");
        std::fs::create_dir_all(&dir).unwrap();
        let output = dir.join("trace.json");
        let cmd = parse_args(&argv(&format!(
            "trace --dataset pima --scale 0.2 --models 5 --workers 2 --seed 3 --output {}",
            output.display()
        )))
        .unwrap();
        let report = run(cmd).unwrap();
        assert!(report.contains("spans"), "{report}");
        assert!(report.contains("trace written to"), "{report}");

        let written = std::fs::read_to_string(&output).unwrap();
        let trace = suod::observe::export::from_json(&written).expect("schema-valid trace");
        assert!(trace.spans_of(suod::observe::Stage::Fit).count() >= 1);
        assert!(trace.spans_of(suod::observe::Stage::ModelFit).count() >= 5);
        assert!(trace.spans_of(suod::observe::Stage::Predict).count() >= 1);
    }

    #[test]
    fn trace_chrome_format_streams_to_stdout() {
        let cmd = parse_args(&argv(
            "trace --dataset pima --scale 0.2 --models 3 --workers 1 --seed 5 --format chrome",
        ))
        .unwrap();
        let out = run(cmd).unwrap();
        assert!(out.contains("\"traceEvents\""), "{out}");
        assert!(out.contains("\"ph\": \"X\""), "{out}");
    }
}
