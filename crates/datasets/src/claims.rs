//! Synthetic pharmacy-claims generator for the IQVIA deployment case.
//!
//! The paper's §4.5 evaluates SUOD on a proprietary IQVIA dataset of
//! 123,720 medical claims with 35 features and 15.38 % labelled fraud.
//! That data cannot be shared; this module generates a statistical
//! stand-in with the same published shape: 35 mixed-scale features
//! (billing amounts, quantities, day supplies, demographic codes, ...)
//! where fraudulent claims exhibit correlated shifts in a subset of
//! billing-related features plus heavier tails — the structure fraud
//! detectors exploit in practice.

use crate::synthetic::randn;
use crate::{Dataset, Error, Result};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use suod_linalg::Matrix;

/// Number of features in the IQVIA claims dataset (fixed by the paper).
pub const N_FEATURES: usize = 35;

/// Published size of the IQVIA claims dataset.
pub const PAPER_N_CLAIMS: usize = 123_720;

/// Published fraud rate of the IQVIA claims dataset.
pub const PAPER_FRAUD_RATE: f64 = 0.1538;

/// Configuration for [`generate_claims`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ClaimsConfig {
    /// Number of claims to generate.
    pub n_claims: usize,
    /// Fraction of fraudulent claims, in `(0, 0.5]`.
    pub fraud_rate: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for ClaimsConfig {
    fn default() -> Self {
        Self {
            n_claims: PAPER_N_CLAIMS,
            fraud_rate: PAPER_FRAUD_RATE,
            seed: 0,
        }
    }
}

/// Generates a synthetic claims dataset with `N_FEATURES` columns.
///
/// Feature blocks (all continuous; categorical attributes are encoded as
/// small-integer ordinals, matching how PyOD pipelines consume them):
///
/// * 0–9   billing: copay, total cost, quantity, days supply, refills, ...
///   log-normal-ish positive amounts, correlated through a latent
///   "prescription size" factor;
/// * 10–19 pharmacy/provider profile: ordinal region, chain size, claim
///   volume percentile, ...;
/// * 20–29 patient demographics & history: age, chronic-condition count,
///   prior-claims statistics;
/// * 30–34 insurance plan attributes.
///
/// Fraudulent claims get (a) a shifted latent billing factor, (b) inflated
/// quantity/refill features, and (c) extra heavy-tail noise on a random
/// subset of profile features — so fraud is detectable but not linearly
/// separable.
///
/// # Errors
///
/// Returns [`Error::InvalidConfig`] for an out-of-domain `fraud_rate` or a
/// claim count below 10.
pub fn generate_claims(config: &ClaimsConfig) -> Result<Dataset> {
    if config.n_claims < 10 {
        return Err(Error::InvalidConfig("n_claims must be >= 10".into()));
    }
    if !(config.fraud_rate > 0.0 && config.fraud_rate <= 0.5) {
        return Err(Error::InvalidConfig(format!(
            "fraud_rate must be in (0, 0.5], got {}",
            config.fraud_rate
        )));
    }
    let mut rng = StdRng::seed_from_u64(config.seed);
    let n_fraud = ((config.n_claims as f64) * config.fraud_rate).round() as usize;
    let n_fraud = n_fraud.clamp(1, config.n_claims - 1);

    let mut rows: Vec<(Vec<f64>, i32)> = Vec::with_capacity(config.n_claims);
    for _ in 0..(config.n_claims - n_fraud) {
        rows.push((claim_row(&mut rng, false), 0));
    }
    for _ in 0..n_fraud {
        rows.push((claim_row(&mut rng, true), 1));
    }
    // Shuffle.
    for i in (1..rows.len()).rev() {
        let j = rng.random_range(0..=i);
        rows.swap(i, j);
    }
    let y: Vec<i32> = rows.iter().map(|(_, l)| *l).collect();
    let flat: Vec<Vec<f64>> = rows.into_iter().map(|(r, _)| r).collect();
    Ok(Dataset {
        x: Matrix::from_rows(&flat)?,
        y,
        name: "claims-synthetic".to_string(),
    })
}

fn claim_row(rng: &mut StdRng, fraud: bool) -> Vec<f64> {
    let mut row = Vec::with_capacity(N_FEATURES);

    // Latent prescription-size factor; fraud shifts it up.
    let latent = randn(rng) + if fraud { 1.6 } else { 0.0 };

    // Billing block (10): positive, latent-correlated amounts.
    for j in 0..10 {
        let weight = 0.5 + 0.1 * j as f64;
        let base = (weight * latent + 0.8 * randn(rng)).exp();
        let inflate = if fraud && j % 3 == 0 {
            // Inflated quantities / refills with heavy tails.
            1.0 + rng.random_range(0.5..2.5)
        } else {
            1.0
        };
        row.push(base * inflate);
    }

    // Pharmacy/provider profile block (10): ordinals + percentiles.
    for j in 0..10 {
        let ordinal = rng.random_range(0..12) as f64;
        let tail = if fraud && j % 4 == 0 {
            3.0 * randn(rng).abs()
        } else {
            0.0
        };
        row.push(ordinal + 0.3 * randn(rng) + tail);
    }

    // Patient demographics/history block (10).
    let age = 40.0 + 18.0 * randn(rng);
    row.push(age.clamp(0.0, 100.0));
    for _ in 0..9 {
        row.push((randn(rng) + 0.2 * latent).abs() * 4.0);
    }

    // Insurance plan block (5): small ordinals, weak fraud signal.
    for _ in 0..5 {
        let shift = if fraud { 0.4 } else { 0.0 };
        row.push(rng.random_range(0..5) as f64 + shift + 0.1 * randn(rng));
    }

    debug_assert_eq!(row.len(), N_FEATURES);
    row
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> Dataset {
        generate_claims(&ClaimsConfig {
            n_claims: 2000,
            fraud_rate: 0.15,
            seed: 1,
        })
        .unwrap()
    }

    #[test]
    fn shape_and_rate() {
        let ds = small();
        assert_eq!(ds.n_samples(), 2000);
        assert_eq!(ds.n_features(), N_FEATURES);
        assert!((ds.contamination() - 0.15).abs() < 0.01);
    }

    #[test]
    fn default_matches_paper_stats() {
        let cfg = ClaimsConfig::default();
        assert_eq!(cfg.n_claims, 123_720);
        assert!((cfg.fraud_rate - 0.1538).abs() < 1e-12);
    }

    #[test]
    fn deterministic() {
        let a = small();
        let b = small();
        assert_eq!(a.x, b.x);
        assert_eq!(a.y, b.y);
    }

    #[test]
    fn fraud_shifts_billing_mean() {
        let ds = small();
        let mut fraud_total = 0.0;
        let mut ok_total = 0.0;
        let mut n_fraud = 0;
        for (i, row) in ds.x.rows_iter().enumerate() {
            let billing: f64 = row[..10].iter().sum();
            if ds.y[i] == 1 {
                fraud_total += billing;
                n_fraud += 1;
            } else {
                ok_total += billing;
            }
        }
        let fraud_mean = fraud_total / n_fraud as f64;
        let ok_mean = ok_total / (ds.n_samples() - n_fraud) as f64;
        assert!(
            fraud_mean > 1.5 * ok_mean,
            "fraud billing not elevated: {fraud_mean} vs {ok_mean}"
        );
    }

    #[test]
    fn invalid_configs_rejected() {
        assert!(generate_claims(&ClaimsConfig {
            n_claims: 5,
            ..Default::default()
        })
        .is_err());
        assert!(generate_claims(&ClaimsConfig {
            fraud_rate: 0.0,
            ..Default::default()
        })
        .is_err());
        assert!(generate_claims(&ClaimsConfig {
            fraud_rate: 0.7,
            ..Default::default()
        })
        .is_err());
    }

    #[test]
    fn features_are_finite() {
        let ds = small();
        assert!(ds.x.as_slice().iter().all(|v| v.is_finite()));
    }
}
