//! End-to-end integration tests: datasets -> SUOD -> metrics, exercising
//! the full pipeline the paper's experiments run.

use suod::prelude::*;
use suod_datasets::{registry, train_test_split};
use suod_metrics::{precision_at_n, roc_auc};

fn small_pool(seedless: bool) -> Vec<ModelSpec> {
    let mut pool = vec![
        ModelSpec::Knn {
            n_neighbors: 10,
            method: KnnMethod::Largest,
        },
        ModelSpec::Knn {
            n_neighbors: 10,
            method: KnnMethod::Mean,
        },
        ModelSpec::Lof {
            n_neighbors: 15,
            metric: Metric::Euclidean,
        },
        ModelSpec::Hbos {
            n_bins: 15,
            tolerance: 0.3,
        },
        ModelSpec::IForest {
            n_estimators: 30,
            max_features: 0.9,
        },
    ];
    if !seedless {
        pool.push(ModelSpec::Cblof { n_clusters: 3 });
    }
    pool
}

#[test]
fn suod_detects_outliers_on_registry_dataset() {
    let ds = registry::load_scaled("cardio", 7, 0.25).unwrap();
    let split = train_test_split(&ds, 0.4, 7).unwrap();

    let mut clf = Suod::builder()
        .base_estimators(small_pool(false))
        .contamination(ds.contamination().min(0.5))
        .seed(7)
        .build()
        .unwrap();
    clf.fit(&split.x_train).unwrap();

    let scores = clf.combined_scores(&split.x_test).unwrap();
    let auc = roc_auc(&split.y_test, &scores).unwrap();
    assert!(auc > 0.7, "combined test AUC {auc}");
    let p = precision_at_n(&split.y_test, &scores, None).unwrap();
    assert!(p > 0.2, "P@N {p}");
}

#[test]
fn all_module_combinations_work_and_detect() {
    let ds = registry::load_scaled("pima", 3, 0.4).unwrap();
    for (rp, psa, bps) in [
        (false, false, false),
        (true, false, false),
        (false, true, false),
        (false, false, true),
        (true, true, true),
    ] {
        let mut clf = Suod::builder()
            .base_estimators(small_pool(false))
            .with_projection(rp)
            .with_approximation(psa)
            .with_bps(bps)
            .n_workers(if bps { 2 } else { 1 })
            .seed(11)
            .build()
            .unwrap();
        clf.fit(&ds.x).unwrap();
        let scores = clf.combined_scores(&ds.x).unwrap();
        let auc = roc_auc(&ds.y, &scores).unwrap();
        assert!(auc > 0.55, "rp={rp} psa={psa} bps={bps}: train AUC {auc}");
    }
}

#[test]
fn random_pool_from_grid_runs_end_to_end() {
    // A heterogeneous Table B.1 pool (OCSVM included) on a small dataset.
    let ds = registry::load_scaled("vertebral", 5, 1.0).unwrap();
    let pool: Vec<ModelSpec> = suod::random_pool(12, 9)
        .into_iter()
        .map(|spec| match spec {
            // Clamp neighbourhood sizes to the tiny dataset.
            ModelSpec::Abod { n_neighbors } => ModelSpec::Abod {
                n_neighbors: n_neighbors.min(20),
            },
            ModelSpec::Knn {
                n_neighbors,
                method,
            } => ModelSpec::Knn {
                n_neighbors: n_neighbors.min(20),
                method,
            },
            ModelSpec::Lof {
                n_neighbors,
                metric,
            } => ModelSpec::Lof {
                n_neighbors: n_neighbors.min(20),
                metric,
            },
            other => other,
        })
        .collect();
    let mut clf = Suod::builder()
        .base_estimators(pool)
        .seed(2)
        .build()
        .unwrap();
    clf.fit(&ds.x).unwrap();
    let m = clf.decision_function(&ds.x).unwrap();
    assert_eq!(m.nrows(), ds.n_samples());
    assert!(m.as_slice().iter().all(|v| v.is_finite()));
}

#[test]
fn psa_keeps_prediction_quality() {
    // Approximated predictions should stay close in ranking quality to the
    // exact ones (the paper's Table 2 claim, in miniature).
    let ds = registry::load_scaled("thyroid", 13, 0.3).unwrap();
    let split = train_test_split(&ds, 0.4, 13).unwrap();

    let run = |approx: bool| {
        let mut clf = Suod::builder()
            .base_estimators(small_pool(true))
            .with_projection(false)
            .with_approximation(approx)
            .seed(5)
            .build()
            .unwrap();
        clf.fit(&split.x_train).unwrap();
        let scores = clf.combined_scores(&split.x_test).unwrap();
        roc_auc(&split.y_test, &scores).unwrap()
    };
    let exact = run(false);
    let approximated = run(true);
    assert!(
        approximated > exact - 0.1,
        "approx AUC {approximated} fell too far below exact {exact}"
    );
}

#[test]
fn predict_flags_roughly_contamination_fraction() {
    let ds = registry::load_scaled("waveform", 21, 0.3).unwrap();
    let mut clf = Suod::builder()
        .base_estimators(small_pool(false))
        .contamination(0.1)
        .seed(1)
        .build()
        .unwrap();
    clf.fit(&ds.x).unwrap();
    let labels = clf.predict(&ds.x).unwrap();
    let frac = labels.iter().sum::<i32>() as f64 / labels.len() as f64;
    assert!((frac - 0.1).abs() < 0.05, "flagged fraction {frac}");
}

#[test]
fn claims_pipeline_runs() {
    let ds = suod_datasets::claims::generate_claims(&suod_datasets::claims::ClaimsConfig {
        n_claims: 800,
        fraud_rate: 0.15,
        seed: 3,
    })
    .unwrap();
    let split = train_test_split(&ds, 0.4, 3).unwrap();
    let mut clf = Suod::builder()
        .base_estimators(small_pool(false))
        .contamination(0.15)
        .seed(3)
        .build()
        .unwrap();
    clf.fit(&split.x_train).unwrap();
    let scores = clf.combined_scores(&split.x_test).unwrap();
    let auc = roc_auc(&split.y_test, &scores).unwrap();
    assert!(auc > 0.6, "claims AUC {auc}");
}
