//! The SUOD estimator: builder, fit, and prediction paths.
//!
//! Mirrors Algorithm 1 of the paper. `fit`:
//!
//! 1. **RP** — per model, if projection is enabled and the family is
//!    projection-friendly, draw an independent JL matrix and project the
//!    training data (`psi_i`); otherwise use the original space.
//! 2. **BPS** — forecast per-model cost with the configured cost model,
//!    schedule the `m` fits onto `t` workers (BPS or generic), and run
//!    them on the thread-pool executor.
//! 3. **PSA** — for every costly model, train a supervised regressor on
//!    `(psi_i, training scores of M_i)`; the regressor serves that
//!    model's predictions from then on.
//!
//! `decision_function` projects the query with each model's retained `W`,
//! routes costly models through their approximators, and returns the
//! `n x m` score matrix; `combined_scores`/`predict` collapse it with the
//! average combiner and the contamination threshold learned at fit time.

use crate::diagnostics::{
    CpuFeatures, FitDiagnostics, ModelDiagnostics, PredictFailure, PredictReport,
};
use crate::health::{ModelHealth, ModelReport, ModelStatus};
use crate::pseudo::{fit_approximator, ApproxSpec};
use crate::spec::ModelSpec;
use crate::{Error, Result};
use std::collections::HashMap;
use std::sync::Arc;
use std::time::{Duration, Instant};
use suod_detectors::{validate_finite, Detector, FitContext};
use suod_linalg::{
    DataFingerprint, DistanceBackend, DistanceMetric, KernelConfig, Matrix, NeighborBackend,
    NeighborCache, Precision,
};
use suod_observe::{Counter, Observer, SpanAttrs, Stage};
use suod_projection::{JlProjector, JlVariant, Projector};
use suod_scheduler::{
    bps_schedule, generic_schedule, simulate_makespan, AnalyticCostModel, Assignment, CostModel,
    DatasetMeta, ExecutionReport, SimulationResult, TaskFailure, WorkStealingExecutor,
};
use suod_supervised::Regressor;

/// Row-chunk width for the (model x row-chunk) prediction task split.
/// Fixed (never derived from the worker count) so the task decomposition
/// — and therefore every computed value — is identical no matter how
/// many workers execute it.
const PREDICT_ROW_CHUNK: usize = 256;

/// A successful single-model fit: the detector, its training scores, and
/// the measured fit duration.
type FitSuccess = (Box<dyn Detector>, Vec<f64>, Duration);

/// What a fit task returns: the model-level outcome, where `Err` is a
/// retryable typed detector failure. The task-level (outer) `Result`
/// carries non-model failures (spec construction), which stay fatal.
type FitOutput = std::result::Result<FitSuccess, suod_detectors::Error>;

/// Seed for fit attempt `attempt` (0-based) of a model whose base seed
/// is `seed`. Attempt 0 uses the seed unchanged; retries XOR in an
/// odd-multiple salt so a seed-dependent failure can resolve differently
/// on retry, deterministically and independently of the worker count.
fn salted_seed(seed: u64, attempt: usize) -> u64 {
    seed ^ (attempt as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)
}

/// Classifies one fit task's outcome. `Ok(Ok(..))` is a healthy fit with
/// finite training scores; `Ok(Err(cause))` is a retryable model failure
/// (caught panic, typed detector error, or non-finite training scores);
/// the outer `Err` propagates fatal non-model failures.
fn interpret_outcome(
    outcome: std::result::Result<Result<FitOutput>, TaskFailure>,
) -> Result<FitOutput> {
    match outcome {
        Err(panic) => Ok(Err(suod_detectors::Error::Panicked(panic.message))),
        Ok(Err(fatal)) => Err(fatal),
        Ok(Ok(Err(cause))) => Ok(Err(cause)),
        Ok(Ok(Ok((det, scores, dur)))) => {
            if scores.iter().all(|v| v.is_finite()) {
                Ok(Ok((det, scores, dur)))
            } else {
                Ok(Err(suod_detectors::Error::DegenerateData(
                    "model produced non-finite training scores".into(),
                )))
            }
        }
    }
}

/// Builder for [`Suod`]. Mirrors the paper's API demo: a pool of base
/// estimators plus per-module flags.
#[derive(Clone)]
pub struct SuodBuilder {
    pub(crate) base_estimators: Vec<ModelSpec>,
    pub(crate) rp_enabled: bool,
    pub(crate) rp_variant: JlVariant,
    pub(crate) rp_target_fraction: f64,
    pub(crate) rp_min_dim: usize,
    pub(crate) approx_enabled: bool,
    pub(crate) approx_spec: ApproxSpec,
    pub(crate) bps_enabled: bool,
    pub(crate) n_workers: usize,
    pub(crate) bps_alpha: f64,
    pub(crate) cost_model: Arc<dyn CostModel>,
    pub(crate) contamination: f64,
    pub(crate) seed: u64,
    pub(crate) neighbor_cache_enabled: bool,
    pub(crate) kernel: KernelConfig,
    /// `ef_search` override applied to the HNSW params at `build()`, so
    /// `ef_search(..)` composes with `neighbor_backend(..)` in any order.
    pub(crate) ef_search: Option<usize>,
    pub(crate) min_healthy_fraction: f64,
    pub(crate) max_model_retries: usize,
    pub(crate) straggler_factor: f64,
    pub(crate) observer: Arc<dyn Observer>,
}

impl Default for SuodBuilder {
    fn default() -> Self {
        Self {
            base_estimators: Vec::new(),
            rp_enabled: true,
            rp_variant: JlVariant::Circulant,
            rp_target_fraction: 2.0 / 3.0,
            rp_min_dim: 3,
            approx_enabled: true,
            approx_spec: ApproxSpec::default(),
            bps_enabled: true,
            n_workers: 1,
            bps_alpha: 1.0,
            cost_model: Arc::new(AnalyticCostModel::new()),
            contamination: 0.1,
            seed: 0,
            neighbor_cache_enabled: true,
            kernel: KernelConfig::default(),
            ef_search: None,
            min_healthy_fraction: 1.0,
            max_model_retries: 1,
            straggler_factor: 4.0,
            observer: suod_observe::noop(),
        }
    }
}

impl SuodBuilder {
    /// Sets the heterogeneous pool of base estimators.
    pub fn base_estimators(mut self, specs: Vec<ModelSpec>) -> Self {
        self.base_estimators = specs;
        self
    }

    /// Enables/disables the random-projection module (`rp_flag_global`).
    pub fn with_projection(mut self, enabled: bool) -> Self {
        self.rp_enabled = enabled;
        self
    }

    /// Chooses the JL construction (default: `circulant`, the paper's
    /// recommended variant alongside `toeplitz`).
    pub fn projection_variant(mut self, variant: JlVariant) -> Self {
        self.rp_variant = variant;
        self
    }

    /// Sets the target dimension as a fraction of the input dimension
    /// (default 2/3, as in the paper's Table 1 setup).
    pub fn projection_fraction(mut self, fraction: f64) -> Self {
        self.rp_target_fraction = fraction;
        self
    }

    /// Minimum input dimensionality for projection to engage (the JL
    /// bound is vacuous for tiny `d`; default 3).
    pub fn projection_min_dim(mut self, min_dim: usize) -> Self {
        self.rp_min_dim = min_dim;
        self
    }

    /// Enables/disables pseudo-supervised approximation
    /// (`approx_flag_global`).
    pub fn with_approximation(mut self, enabled: bool) -> Self {
        self.approx_enabled = enabled;
        self
    }

    /// Chooses the approximation regressor (default: random forest).
    pub fn approximator(mut self, spec: ApproxSpec) -> Self {
        self.approx_spec = spec;
        self
    }

    /// Enables/disables balanced parallel scheduling (`bps_flag`). When
    /// disabled, multi-worker runs use generic contiguous chunking.
    pub fn with_bps(mut self, enabled: bool) -> Self {
        self.bps_enabled = enabled;
        self
    }

    /// Number of workers `t` (default 1 = sequential).
    pub fn n_workers(mut self, t: usize) -> Self {
        self.n_workers = t;
        self
    }

    /// Rank-discount strength `alpha` for BPS (default 1).
    pub fn bps_alpha(mut self, alpha: f64) -> Self {
        self.bps_alpha = alpha;
        self
    }

    /// Replaces the cost model used by BPS (default: analytic).
    pub fn cost_model(mut self, model: Arc<dyn CostModel>) -> Self {
        self.cost_model = model;
        self
    }

    /// Enables/disables the shared neighbour-graph cache (default on).
    ///
    /// When on, `fit` groups proximity models (kNN, LOF, LoOP, COF, ABOD)
    /// by feature space and distance metric, builds each group's
    /// [`KnnIndex`](suod_linalg::KnnIndex) and leave-one-out neighbour
    /// sweep **once** at the pooled maximum `k`, and serves every member
    /// an exact sorted-prefix view. Scores are bit-identical either way —
    /// the switch exists for benchmarking and as an escape hatch.
    pub fn with_neighbor_cache(mut self, enabled: bool) -> Self {
        self.neighbor_cache_enabled = enabled;
        self
    }

    /// Sets the whole numeric-kernel configuration at once: distance
    /// backend, precision, neighbour backend (including HNSW parameters
    /// such as `ef_search`), and the KD-tree crossover threshold. This is
    /// the single entry point for every kernel knob — build the
    /// [`KernelConfig`] with its own with-style setters:
    ///
    /// ```
    /// use suod::prelude::*;
    ///
    /// let clf = Suod::builder()
    ///     .base_estimators(vec![ModelSpec::Hbos { n_bins: 8, tolerance: 0.3 }])
    ///     .kernel(
    ///         KernelConfig::default()
    ///             .with_backend(DistanceBackend::Gemm)
    ///             .with_precision(Precision::Mixed)
    ///             .with_neighbor(NeighborBackend::Hnsw(
    ///                 HnswParams::default().with_ef_search(64),
    ///             )),
    ///     )
    ///     .build()
    ///     .unwrap();
    /// # let _ = clf;
    /// ```
    pub fn kernel(mut self, kernel: KernelConfig) -> Self {
        self.kernel = kernel;
        self
    }

    /// Selects the distance/GEMM backend behind every proximity
    /// detector's brute-force paths (default:
    /// [`DistanceBackend::Blocked`], which is bit-identical to `Naive`).
    /// Choose [`DistanceBackend::Gemm`] for the fastest Euclidean
    /// kernels at the cost of last-bit reproducibility relative to the
    /// scalar reference — results are still deterministic for a fixed
    /// configuration, including across worker counts.
    #[deprecated(note = "use `kernel(KernelConfig::default().with_backend(..))` instead")]
    pub fn distance_backend(mut self, backend: DistanceBackend) -> Self {
        self.kernel.backend = backend;
        self
    }

    /// Sets the dimensionality at or below which `KnnIndex` builds a
    /// KD-tree instead of using the brute-force kernels (default
    /// [`suod_linalg::DEFAULT_KDTREE_CROSSOVER_DIM`], tuned from the
    /// committed kernel benchmarks). Set to 0 to force brute force
    /// everywhere; set very large to always prefer the tree.
    #[deprecated(
        note = "use `kernel(KernelConfig::default().with_kdtree_crossover_dim(..))` \
                         instead"
    )]
    pub fn kdtree_crossover_dim(mut self, dims: usize) -> Self {
        self.kernel.kdtree_crossover_dim = dims;
        self
    }

    /// Selects the numeric precision of the packed distance kernels
    /// (default [`Precision::F64`], the exact mode). With
    /// [`Precision::Mixed`] the [`DistanceBackend::Gemm`] Euclidean
    /// paths store packed panels in f32 and accumulate in f64: roughly
    /// half the kernel memory traffic, distances within
    /// [`suod_linalg::mixed_distance_error_bound`] of the exact values,
    /// and still deterministic across worker counts. Ignored by the
    /// bit-identical backends (`Naive`/`Blocked`) and by non-Euclidean
    /// metrics.
    #[deprecated(note = "use `kernel(KernelConfig::default().with_precision(..))` instead")]
    pub fn precision(mut self, precision: Precision) -> Self {
        self.kernel.precision = precision;
        self
    }

    /// Selects the neighbour index behind every proximity detector's kNN
    /// queries (default [`NeighborBackend::Exact`]). With
    /// [`NeighborBackend::Hnsw`] the index is a seeded, deterministic
    /// approximate graph: the exact `O(n² d)` leave-one-out sweep becomes
    /// an `O(n log n · d)` build plus beam searches, at a documented
    /// recall ≥ 0.95 target for the default parameters. Small inputs
    /// (below [`suod_linalg::DEFAULT_HNSW_MIN_ROWS`] rows) and
    /// non-Euclidean metrics route to the exact path and count an
    /// exactness fallback in
    /// [`FitDiagnostics`](crate::FitDiagnostics::ann_fallbacks). Scores
    /// remain bit-identical across worker counts for a fixed seed.
    #[deprecated(note = "use `kernel(KernelConfig::default().with_neighbor(..))` instead")]
    pub fn neighbor_backend(mut self, backend: NeighborBackend) -> Self {
        self.kernel.neighbor = backend;
        self
    }

    /// Sets the HNSW search beam width `ef_search` — the recall knob
    /// (default [`suod_linalg::DEFAULT_EF_SEARCH`]). Larger values search
    /// more candidates per query: higher recall, slower queries. Applies
    /// whenever the neighbour backend is (or becomes)
    /// [`NeighborBackend::Hnsw`], regardless of builder-call order; it is
    /// ignored by the exact backend.
    #[deprecated(note = "set ef_search on the HnswParams inside \
                         `kernel(KernelConfig::default().with_neighbor(..))` instead")]
    pub fn ef_search(mut self, ef: usize) -> Self {
        self.ef_search = Some(ef.max(1));
        self
    }

    /// Replaces the whole kernel configuration at once (backend,
    /// precision, neighbour backend, and KD-tree crossover thresholds).
    #[deprecated(note = "renamed to `kernel`")]
    pub fn kernel_config(self, kernel: KernelConfig) -> Self {
        self.kernel(kernel)
    }

    /// Minimum fraction of the pool that must fit successfully — after
    /// retries — for [`Suod::fit`] to succeed (default 1.0: any permanent
    /// model failure fails the fit, the strictest behaviour). Lowering it
    /// lets the ensemble degrade gracefully: failed models are
    /// quarantined and the survivors carry combination and prediction.
    pub fn min_healthy_fraction(mut self, fraction: f64) -> Self {
        self.min_healthy_fraction = fraction;
        self
    }

    /// Extra fit attempts granted to a failed model before it is
    /// quarantined (default 1). Each retry re-salts the model's seed, so
    /// transient seed-dependent failures can recover; the outcome is
    /// deterministic for a given master seed regardless of worker count.
    pub fn max_model_retries(mut self, retries: usize) -> Self {
        self.max_model_retries = retries;
        self
    }

    /// Multiple of the forecast-implied expected fit time beyond which a
    /// model is flagged as a straggler in the health report (default 4).
    /// Stragglers are never quarantined — slow is not wrong — the flag
    /// feeds the cost-model validation loop.
    pub fn straggler_factor(mut self, factor: f64) -> Self {
        self.straggler_factor = factor;
        self
    }

    /// Attaches an [`Observer`] that receives spans and counters from
    /// every pipeline stage — projection, neighbour-graph builds,
    /// per-model fits and retries, BPS planning, executor task lifecycle,
    /// PSA distillation, thresholding, and prediction chunks (default:
    /// no-op). Pass an `Arc<suod_observe::RecordingObserver>` (coerced to
    /// `Arc<dyn Observer>`) to capture a deterministic trace exportable
    /// to JSON or Chrome `trace_event` format. Observation never changes
    /// computed values: scores are bit-identical with any observer.
    pub fn observer(mut self, observer: Arc<dyn Observer>) -> Self {
        self.observer = observer;
        self
    }

    /// Expected outlier fraction used by [`Suod::predict`]'s threshold
    /// (default 0.1).
    pub fn contamination(mut self, c: f64) -> Self {
        self.contamination = c;
        self
    }

    /// Master RNG seed; per-model seeds are derived from it.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Validates the configuration and produces an unfitted [`Suod`].
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidConfig`] for an empty pool, a projection
    /// fraction outside `(0, 1]`, `n_workers == 0`, a negative BPS alpha,
    /// or contamination outside `(0, 0.5]`.
    pub fn build(self) -> Result<Suod> {
        if self.base_estimators.is_empty() {
            return Err(Error::InvalidConfig(
                "base_estimators must not be empty".into(),
            ));
        }
        if !(self.rp_target_fraction > 0.0 && self.rp_target_fraction <= 1.0) {
            return Err(Error::InvalidConfig(format!(
                "projection fraction must be in (0, 1], got {}",
                self.rp_target_fraction
            )));
        }
        if self.n_workers == 0 {
            return Err(Error::InvalidConfig("n_workers must be >= 1".into()));
        }
        if self.bps_alpha.is_nan() || self.bps_alpha < 0.0 {
            return Err(Error::InvalidConfig(format!(
                "bps_alpha must be >= 0, got {}",
                self.bps_alpha
            )));
        }
        if !(self.contamination > 0.0 && self.contamination <= 0.5) {
            return Err(Error::InvalidConfig(format!(
                "contamination must be in (0, 0.5], got {}",
                self.contamination
            )));
        }
        if !(self.min_healthy_fraction > 0.0 && self.min_healthy_fraction <= 1.0) {
            return Err(Error::InvalidConfig(format!(
                "min_healthy_fraction must be in (0, 1], got {}",
                self.min_healthy_fraction
            )));
        }
        if !(self.straggler_factor.is_finite() && self.straggler_factor >= 1.0) {
            return Err(Error::InvalidConfig(format!(
                "straggler_factor must be finite and >= 1, got {}",
                self.straggler_factor
            )));
        }
        let mut config = self;
        if let Some(ef) = config.ef_search {
            if let NeighborBackend::Hnsw(p) = config.kernel.neighbor {
                config.kernel.neighbor = NeighborBackend::Hnsw(p.with_ef_search(ef));
            }
        }
        Ok(Suod {
            config,
            state: None,
            executor: None,
            diagnostics: None,
            warm: None,
        })
    }
}

pub(crate) struct FittedModel {
    pub(crate) spec: ModelSpec,
    /// Original index in the configured pool — stable across fit-time
    /// quarantines, so predict-time health reports line up with the
    /// fit-time [`ModelHealth`] indices.
    pub(crate) pool_index: usize,
    pub(crate) detector: Box<dyn Detector>,
    pub(crate) projector: Option<JlProjector>,
    pub(crate) approximator: Option<Box<dyn Regressor>>,
    pub(crate) train_scores: Vec<f64>,
    pub(crate) fit_time: Duration,
}

pub(crate) struct FittedState {
    /// Surviving models, `Arc`-shared so a warm refit can carry unchanged
    /// members into the next fitted state without re-training them.
    pub(crate) models: Vec<Arc<FittedModel>>,
    pub(crate) threshold: f64,
    pub(crate) n_features: usize,
    /// Per-model mean of training scores (standardization reference).
    pub(crate) score_means: Vec<f64>,
    /// Per-model std of training scores (floored away from zero).
    pub(crate) score_stds: Vec<f64>,
}

/// Context retained from the most recent fit so a subsequent
/// [`Suod::warm_refit`] on the *same* training matrix can reuse work:
/// the shared neighbour cache (proximity graphs keyed by feature space)
/// and the fingerprint that gates reuse to an identical dataset.
pub(crate) struct WarmContext {
    /// Neighbour cache from the fit, `None` after a snapshot load (graphs
    /// are not persisted — they rebuild on the first warm refit).
    pub(crate) cache: Option<Arc<NeighborCache>>,
    /// Fingerprint of the training matrix the fitted state came from.
    pub(crate) train_fingerprint: DataFingerprint,
}

/// The SUOD estimator (see the [crate docs](crate) for the full story).
pub struct Suod {
    pub(crate) config: SuodBuilder,
    pub(crate) state: Option<Arc<FittedState>>,
    /// Persistent work-stealing pool created at fit time and reused by
    /// every subsequent predict call — threads are spawned once per
    /// estimator, not once per call.
    pub(crate) executor: Option<Arc<WorkStealingExecutor>>,
    /// Unified diagnostics from the most recent fit — execution
    /// telemetry, per-model health, and module decisions — including
    /// fits that failed with [`Error::PoolDegraded`].
    pub(crate) diagnostics: Option<FitDiagnostics>,
    /// Warm-start context (neighbour cache + data fingerprint) for
    /// [`Suod::warm_refit`].
    pub(crate) warm: Option<WarmContext>,
}

impl std::fmt::Debug for SuodBuilder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SuodBuilder")
            .field("n_models", &self.base_estimators.len())
            .field("rp_enabled", &self.rp_enabled)
            .field("approx_enabled", &self.approx_enabled)
            .field("bps_enabled", &self.bps_enabled)
            .field("n_workers", &self.n_workers)
            .field("contamination", &self.contamination)
            .field("seed", &self.seed)
            .finish_non_exhaustive()
    }
}

impl std::fmt::Debug for Suod {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Suod")
            .field("config", &self.config)
            .field("fitted", &self.state.is_some())
            .finish()
    }
}

impl Suod {
    /// Starts a builder.
    pub fn builder() -> SuodBuilder {
        SuodBuilder::default()
    }

    /// Number of base estimators in the pool.
    pub fn n_models(&self) -> usize {
        self.config.base_estimators.len()
    }

    /// `true` once [`fit`](Self::fit) has succeeded.
    pub fn is_fitted(&self) -> bool {
        self.state.is_some()
    }

    /// Derives a per-model seed from the master seed (splitmix64 step).
    fn model_seed(&self, i: usize) -> u64 {
        let mut z = self
            .config
            .seed
            .wrapping_add(0x9E37_79B9_7F4A_7C15u64.wrapping_mul(i as u64 + 1));
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn should_project(&self, spec: &ModelSpec, d: usize) -> bool {
        if !self.config.rp_enabled || !spec.projection_friendly() {
            return false;
        }
        if d < self.config.rp_min_dim.max(2) {
            return false;
        }
        self.target_dim(d) < d
    }

    fn target_dim(&self, d: usize) -> usize {
        ((d as f64 * self.config.rp_target_fraction).ceil() as usize).clamp(1, d)
    }

    /// Builds the fit assignment over the model pool. `cached_flags[i]`
    /// marks models whose neighbour graph is a shared-cache hit, and
    /// `approx_flags[i]` marks models whose graph the HNSW backend will
    /// answer: their descriptors carry the flags so the cost model stops
    /// forecasting the exact `O(n^2 d)` index build BPS would otherwise
    /// balance against.
    fn schedule(
        &self,
        x_meta: &DatasetMeta,
        cached_flags: &[bool],
        approx_flags: &[bool],
    ) -> Result<Assignment> {
        let m = self.config.base_estimators.len();
        let t = self.config.n_workers;
        if t <= 1 {
            return Ok(generic_schedule(m, 1)?);
        }
        if self.config.bps_enabled {
            let tasks: Vec<_> = self
                .config
                .base_estimators
                .iter()
                .zip(cached_flags.iter().zip(approx_flags))
                .map(|(s, (&cached, &approx))| {
                    s.task_descriptor()
                        .with_cached_neighbors(cached)
                        .with_approx_neighbors(approx)
                })
                .collect();
            let costs = self.config.cost_model.predict_costs(&tasks, x_meta);
            Ok(bps_schedule(&costs, t, self.config.bps_alpha)?)
        } else {
            Ok(generic_schedule(m, t)?)
        }
    }

    /// Fits every base estimator (Algorithm 1, lines 3–16), then trains
    /// the PSA approximators for costly models (lines 17–24).
    ///
    /// Model fits run **fault-isolated**: a detector that panics or
    /// returns a typed error is retried up to
    /// [`max_model_retries`](SuodBuilder::max_model_retries) times with a
    /// re-salted seed, and quarantined if it never recovers. Quarantined
    /// models are excluded from the fitted ensemble — combination,
    /// pseudo-supervision, and prediction scheduling operate over the
    /// survivors — and recorded in [`diagnostics`](Self::diagnostics).
    ///
    /// Every stage reports spans and counters to the configured
    /// [`observer`](SuodBuilder::observer); the resulting
    /// [`FitDiagnostics`] is a view over the same event stream.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Detector`] with
    /// [`NonFiniteInput`](suod_detectors::Error::NonFiniteInput) for
    /// training data containing NaN/infinities, [`Error::PoolDegraded`]
    /// when fewer than `ceil(min_healthy_fraction * m)` models survive
    /// quarantine (the health report stays available), and propagates
    /// fatal failures from projection, scheduling, or approximation.
    pub fn fit(&mut self, x: &Matrix) -> Result<&mut Self> {
        if x.nrows() == 0 || x.ncols() == 0 {
            return Err(Error::InvalidConfig(
                "training data must be non-empty".into(),
            ));
        }
        validate_finite(x, "fit").map_err(Error::Detector)?;
        let obs = Arc::clone(&self.config.observer);
        let _fit_span = suod_observe::span(obs.as_ref(), Stage::Fit, SpanAttrs::none());
        let d = x.ncols();
        let meta = DatasetMeta::extract(x);
        let shared_x = Arc::new(x.clone());

        // --- RP: per-model feature spaces. ---------------------------------
        let mut projectors: Vec<Option<JlProjector>> = Vec::with_capacity(self.n_models());
        let mut spaces: Vec<Arc<Matrix>> = Vec::with_capacity(self.n_models());
        for (i, spec) in self.config.base_estimators.iter().enumerate() {
            if self.should_project(spec, d) {
                let _span =
                    suod_observe::span(obs.as_ref(), Stage::Projection, SpanAttrs::model(i));
                let k = self.target_dim(d);
                let mut proj = JlProjector::new(self.config.rp_variant, k, self.model_seed(i))?;
                proj.fit(x)?;
                spaces.push(Arc::new(proj.transform(x)?));
                projectors.push(Some(proj));
            } else {
                spaces.push(Arc::clone(&shared_x));
                projectors.push(None);
            }
        }

        // --- Neighbor-cache plan (pass 1 of the two-pass fit). --------------
        // Scan the specs to find which proximity models share a feature
        // space and metric, pre-register each group's k so the cache's
        // first build covers the pooled maximum, and pick one "builder"
        // per group for the cost model (everyone else is a near-free
        // cache hit).
        let plan_span = obs.span_begin(Stage::NeighborPlan, SpanAttrs::none());
        let cache: Option<Arc<NeighborCache>> = self.config.neighbor_cache_enabled.then(|| {
            Arc::new(NeighborCache::with_config(
                self.config.kernel,
                Arc::clone(&obs),
            ))
        });
        let m = self.n_models();
        let mut fingerprints: Vec<Option<DataFingerprint>> = vec![None; m];
        let mut cached_flags = vec![false; m];
        // Models whose neighbour graph the approximate backend will
        // actually answer (the exactness fallback routes small n and
        // non-Euclidean metrics back to the exact path, so their cost
        // forecast must stay exact too).
        let approx_flags: Vec<bool> = self
            .config
            .base_estimators
            .iter()
            .map(
                |spec| match (self.config.kernel.neighbor, spec.neighbor_requirement()) {
                    (NeighborBackend::Hnsw(p), Some((metric, _))) => {
                        metric == DistanceMetric::Euclidean && x.nrows() >= p.min_rows
                    }
                    _ => false,
                },
            )
            .collect();
        // Worker budget for the graph builds: groups build concurrently on
        // the executor, so splitting the pool across them keeps a lone
        // group's sweep parallel without oversubscribing many groups.
        let mut fit_threads = 1usize;
        if let Some(cache) = &cache {
            let mut fp_by_space: HashMap<usize, DataFingerprint> = HashMap::new();
            let mut groups: HashMap<(DataFingerprint, u8, u64), Vec<(usize, usize)>> =
                HashMap::new();
            for (i, spec) in self.config.base_estimators.iter().enumerate() {
                if let Some((metric, k)) = spec.neighbor_requirement() {
                    let ptr = Arc::as_ptr(&spaces[i]) as usize;
                    let fp = *fp_by_space
                        .entry(ptr)
                        .or_insert_with(|| DataFingerprint::of(&spaces[i]));
                    cache.register(fp, metric, k);
                    fingerprints[i] = Some(fp);
                    let (tag, bits) = metric_key(metric);
                    let k_eff = k.min(x.nrows().saturating_sub(1));
                    groups.entry((fp, tag, bits)).or_default().push((i, k_eff));
                }
            }
            for members in groups.values() {
                // Builder = largest effective k (ties break to the lowest
                // model index, matching the cache's widen-to-max rule).
                let &(builder, _) = members
                    .iter()
                    .max_by_key(|&&(i, k)| (k, std::cmp::Reverse(i)))
                    .expect("groups are non-empty by construction");
                for &(i, _) in members {
                    cached_flags[i] = i != builder;
                }
            }
            fit_threads = (self.config.n_workers / groups.len().max(1)).max(1);
        }
        obs.span_end(plan_span);

        // --- BPS + fault-isolated fit execution (pass 2). -------------------
        let bps_span = obs.span_begin(Stage::BpsPlan, SpanAttrs::none());
        let assignment = self.schedule(&meta, &cached_flags, &approx_flags);
        obs.span_end(bps_span);
        let assignment = assignment?;
        let executor = self.executor_for_run()?;
        let make_task =
            |i: usize, attempt: usize| -> Box<dyn FnOnce() -> Result<FitOutput> + Send> {
                let spec = self.config.base_estimators[i];
                let seed = salted_seed(self.model_seed(i), attempt);
                let psi = Arc::clone(&spaces[i]);
                let ctx = match &cache {
                    Some(c) if fingerprints[i].is_some() => {
                        FitContext::cached(Arc::clone(c), fingerprints[i], fit_threads)
                    }
                    _ => FitContext::standalone(fit_threads),
                }
                .with_kernel_config(self.config.kernel);
                let task_obs = Arc::clone(&obs);
                let stage = if attempt == 0 {
                    Stage::ModelFit
                } else {
                    Stage::ModelRetry
                };
                Box::new(move || {
                    // Guard, not begin/end: the drop runs even when a
                    // chaotic detector panics out of the closure, so
                    // quarantined models still close their spans.
                    let _span = suod_observe::span(task_obs.as_ref(), stage, SpanAttrs::model(i));
                    let mut det = spec.build(seed)?;
                    let start = Instant::now();
                    match det.fit_with_context(&psi, &ctx) {
                        Ok(()) => {
                            let elapsed = start.elapsed();
                            let scores = det.training_scores()?;
                            Ok(Ok((det, scores, elapsed)))
                        }
                        Err(e) => Ok(Err(e)),
                    }
                })
            };
        let tasks: Vec<_> = (0..m).map(|i| make_task(i, 0)).collect();
        let (outcomes, mut report) =
            executor.run_with_report_isolated_observed(tasks, &assignment, Arc::clone(&obs))?;

        let mut fitted: Vec<Option<FitSuccess>> = (0..m).map(|_| None).collect();
        let mut causes: Vec<Option<suod_detectors::Error>> = vec![None; m];
        let mut attempts = vec![1usize; m];
        for (i, outcome) in outcomes.into_iter().enumerate() {
            match interpret_outcome(outcome)? {
                Ok(ok) => fitted[i] = Some(ok),
                Err(cause) => causes[i] = Some(cause),
            }
        }

        // --- Bounded retry of failed models. --------------------------------
        // Retries run on the same pool under a generic schedule (the
        // failed subset is small and its costs are unknown — the original
        // forecast clearly missed). Each retry re-salts the model seed.
        for attempt in 1..=self.config.max_model_retries {
            let pending: Vec<usize> = (0..m).filter(|&i| causes[i].is_some()).collect();
            if pending.is_empty() {
                break;
            }
            let retry_tasks: Vec<_> = pending.iter().map(|&i| make_task(i, attempt)).collect();
            let retry_assignment =
                generic_schedule(pending.len(), self.config.n_workers.min(pending.len()))?;
            let (retry_outcomes, retry_report) = executor.run_with_report_isolated_observed(
                retry_tasks,
                &retry_assignment,
                Arc::clone(&obs),
            )?;
            obs.counter(Counter::Retry, pending.len() as u64);
            report.retries += pending.len();
            report.failures += retry_report.failures;
            report.steals += retry_report.steals;
            for (&i, outcome) in pending.iter().zip(retry_outcomes) {
                attempts[i] += 1;
                match interpret_outcome(outcome)? {
                    Ok(ok) => {
                        fitted[i] = Some(ok);
                        causes[i] = None;
                    }
                    Err(cause) => causes[i] = Some(cause),
                }
            }
        }

        // Cache counters are copied after the retry loop so retried
        // models' hits/misses reconcile exactly with the observer trace.
        let mut ann_fallbacks = 0u64;
        if let Some(cache) = &cache {
            let stats = cache.stats();
            report.cache_hits = stats.hits;
            report.cache_misses = stats.misses;
            report.cache_build_time = stats.build_time;
            ann_fallbacks = stats.ann_fallbacks;
        }

        // --- Straggler flagging from the BPS cost forecast. -----------------
        // A model is a straggler when its measured fit time exceeds
        // `straggler_factor` times its forecast-implied share of the total
        // (and is non-trivial in absolute terms). Wall-clock-dependent by
        // nature, so deliberately excluded from determinism guarantees.
        let mut straggler_flags = vec![false; m];
        if report.task_times.len() == m {
            let descriptors: Vec<_> = self
                .config
                .base_estimators
                .iter()
                .zip(cached_flags.iter().zip(&approx_flags))
                .map(|(s, (&cached, &approx))| {
                    s.task_descriptor()
                        .with_cached_neighbors(cached)
                        .with_approx_neighbors(approx)
                })
                .collect();
            let predicted = self.config.cost_model.predict_costs(&descriptors, &meta);
            let total_pred: f64 = predicted.iter().sum();
            let total_measured: f64 = report.task_times.iter().map(Duration::as_secs_f64).sum();
            if total_pred > 0.0 && total_measured > 0.0 {
                for i in 0..m {
                    let expected = predicted[i] / total_pred * total_measured;
                    let measured = report.task_times[i].as_secs_f64();
                    straggler_flags[i] =
                        measured > self.config.straggler_factor * expected && measured > 0.05;
                }
            }
            report.stragglers = straggler_flags
                .iter()
                .enumerate()
                .filter_map(|(i, &flag)| flag.then_some(i))
                .collect();
        }

        // --- Quarantine bookkeeping + degradation floor. --------------------
        let health = ModelHealth::new(
            (0..m)
                .map(|i| ModelReport {
                    index: i,
                    name: self.config.base_estimators[i].name(),
                    status: if fitted[i].is_some() {
                        ModelStatus::Healthy
                    } else {
                        ModelStatus::Quarantined
                    },
                    cause: causes[i].clone(),
                    attempts: attempts[i],
                    straggler: straggler_flags[i],
                })
                .collect(),
        );
        if health.quarantined() > 0 {
            obs.counter(Counter::Quarantine, health.quarantined() as u64);
        }
        if !report.stragglers.is_empty() {
            obs.counter(Counter::Straggler, report.stragglers.len() as u64);
        }

        // One diagnostics row per configured model, joining the health and
        // execution views with the module decisions. `approximated` is
        // back-filled after PSA below (no approximator exists yet).
        let models_diag: Vec<ModelDiagnostics> = (0..m)
            .map(|i| ModelDiagnostics {
                index: i,
                name: self.config.base_estimators[i].name(),
                status: if fitted[i].is_some() {
                    ModelStatus::Healthy
                } else {
                    ModelStatus::Quarantined
                },
                attempts: attempts[i],
                straggler: straggler_flags[i],
                fit_time: fitted[i].as_ref().map(|&(_, _, t)| t),
                projected: projectors[i].is_some(),
                approximated: false,
            })
            .collect();

        let n_healthy = health.healthy();
        let required =
            (((self.config.min_healthy_fraction * m as f64) - 1e-9).ceil() as usize).max(1);
        self.diagnostics = Some(FitDiagnostics::new(
            report,
            health,
            models_diag,
            CpuFeatures::detect(self.config.kernel.precision, self.config.kernel.neighbor),
            ann_fallbacks,
        ));
        if n_healthy < required {
            let cause = causes
                .iter()
                .flatten()
                .next()
                .cloned()
                .expect("a degraded pool records at least one failure cause");
            self.state = None;
            return Err(Error::PoolDegraded {
                healthy: n_healthy,
                total: m,
                required,
                cause,
            });
        }

        // --- Assemble the surviving ensemble. -------------------------------
        // Survivors keep their original pool indices (`model_indices`) so
        // their feature spaces and derived seeds are unchanged by the
        // quarantine of other models.
        let mut models: Vec<FittedModel> = Vec::with_capacity(n_healthy);
        let mut model_indices: Vec<usize> = Vec::with_capacity(n_healthy);
        for i in 0..m {
            if let Some((detector, train_scores, fit_time)) = fitted[i].take() {
                models.push(FittedModel {
                    spec: self.config.base_estimators[i],
                    pool_index: i,
                    detector,
                    projector: projectors[i].take(),
                    approximator: None,
                    train_scores,
                    fit_time,
                });
                model_indices.push(i);
            }
        }

        // --- PSA: distill costly models. ------------------------------------
        if self.config.approx_enabled {
            for (model, &i) in models.iter_mut().zip(&model_indices) {
                if model.spec.is_costly() {
                    let _span =
                        suod_observe::span(obs.as_ref(), Stage::PsaDistill, SpanAttrs::model(i));
                    let approx = fit_approximator(
                        &self.config.approx_spec,
                        &spaces[i],
                        &model.train_scores,
                        self.model_seed(i) ^ 0xA55A,
                    )?;
                    model.approximator = Some(approx);
                }
            }
        }
        if let Some(diag) = self.diagnostics.as_mut() {
            for (model, &i) in models.iter().zip(&model_indices) {
                if let Some(row) = diag.models_mut().get_mut(i) {
                    row.approximated = model.approximator.is_some();
                }
            }
        }

        // --- Standardization reference + contamination threshold. -----------
        // Test-time scores must be z-scored against the TRAINING
        // distribution (the PyOD convention): per-batch statistics would
        // zero out single-sample queries and drift with batch composition.
        let (score_means, score_stds, threshold) = {
            let _span = suod_observe::span(obs.as_ref(), Stage::Threshold, SpanAttrs::none());
            let score_means: Vec<f64> = models
                .iter()
                .map(|m| suod_linalg::stats::mean(&m.train_scores))
                .collect();
            let score_stds: Vec<f64> = models
                .iter()
                .map(|m| suod_linalg::stats::std_dev(&m.train_scores).max(1e-12))
                .collect();
            let train_matrix = scores_to_matrix(
                models.iter().map(|m| m.train_scores.clone()).collect(),
                x.nrows(),
            )?;
            let combined = combine_standardized(&train_matrix, &score_means, &score_stds, None);
            let n_out = ((x.nrows() as f64) * self.config.contamination).round() as usize;
            let n_out = n_out.clamp(1, x.nrows());
            let threshold = suod_linalg::rank::kth_largest(&combined, n_out)
                .expect("n_out within bounds by construction");
            (score_means, score_stds, threshold)
        };

        self.state = Some(Arc::new(FittedState {
            models: models.into_iter().map(Arc::new).collect(),
            threshold,
            n_features: d,
            score_means,
            score_stds,
        }));
        // Retain the neighbour cache + data identity so a warm_refit on
        // the same matrix can reuse proximity graphs and survivor models.
        self.warm = Some(WarmContext {
            cache: cache.clone(),
            train_fingerprint: DataFingerprint::of(x),
        });
        Ok(self)
    }

    /// Refits the pool **warm** on the same training matrix: models whose
    /// spec is unchanged at the same pool index are carried over from the
    /// fitted state (zero re-training, the `Arc` is shared), and only
    /// changed or added specs are fitted — reusing the neighbour cache
    /// retained from the previous fit, so proximity graphs over the
    /// original feature space are cache hits. A refit that changes `c` of
    /// `m` models therefore costs `O(c)` model fits instead of `O(m)`.
    ///
    /// Scores after a warm refit are **bitwise-identical** to a cold
    /// [`fit`](Self::fit) of a pool configured with `specs`: per-model
    /// seeds derive from the pool index alone, so reused and refitted
    /// models alike land in exactly the state a full fit would produce.
    ///
    /// # Errors
    ///
    /// Returns [`Error::NotFitted`] before a successful fit,
    /// [`Error::InvalidConfig`] when `specs` is empty or `x` is not the
    /// training matrix of the previous fit (warm refit never silently
    /// retrains on new data — call [`fit`](Self::fit) for that), and the
    /// same fit-time failures as a cold fit for the changed subset,
    /// including [`Error::PoolDegraded`] against the **new** pool size.
    pub fn warm_refit(&mut self, x: &Matrix, specs: Vec<ModelSpec>) -> Result<&mut Self> {
        let prev = Arc::clone(self.state.as_ref().ok_or(Error::NotFitted)?);
        let fp_prev = self
            .warm
            .as_ref()
            .ok_or(Error::NotFitted)?
            .train_fingerprint;
        if specs.is_empty() {
            return Err(Error::InvalidConfig(
                "base_estimators must not be empty".into(),
            ));
        }
        let fp = DataFingerprint::of(x);
        if fp != fp_prev {
            return Err(Error::InvalidConfig(
                "warm_refit requires the training matrix of the previous fit (data \
                 fingerprint differs); call fit() to train on new data"
                    .into(),
            ));
        }
        let obs = Arc::clone(&self.config.observer);
        let _fit_span = suod_observe::span(obs.as_ref(), Stage::Fit, SpanAttrs::none());
        let d = x.ncols();
        let old_specs = std::mem::replace(&mut self.config.base_estimators, specs);
        let m = self.config.base_estimators.len();
        let shared_x = Arc::new(x.clone());

        // Reuse decision: same spec at the same pool index, and the model
        // survived the previous fit. Everything else is refitted.
        let reused: Vec<Option<Arc<FittedModel>>> = (0..m)
            .map(|i| {
                (i < old_specs.len() && old_specs[i] == self.config.base_estimators[i])
                    .then(|| prev.models.iter().find(|mm| mm.pool_index == i).cloned())
                    .flatten()
            })
            .collect();
        let changed: Vec<usize> = (0..m).filter(|&i| reused[i].is_none()).collect();

        // Feature spaces + projectors for the changed subset only
        // (deterministic per model seed, identical to a cold fit).
        let mut projectors: Vec<Option<JlProjector>> = (0..m).map(|_| None).collect();
        let mut spaces: Vec<Arc<Matrix>> = (0..m).map(|_| Arc::clone(&shared_x)).collect();
        for &i in &changed {
            let spec = self.config.base_estimators[i];
            if self.should_project(&spec, d) {
                let _span =
                    suod_observe::span(obs.as_ref(), Stage::Projection, SpanAttrs::model(i));
                let k = self.target_dim(d);
                let mut proj = JlProjector::new(self.config.rp_variant, k, self.model_seed(i))?;
                proj.fit(x)?;
                spaces[i] = Arc::new(proj.transform(x)?);
                projectors[i] = Some(proj);
            }
        }

        // Reuse the retained neighbour cache (graphs over the original
        // space are hits); fall back to a fresh one after a snapshot load.
        let cache: Option<Arc<NeighborCache>> = self.config.neighbor_cache_enabled.then(|| {
            self.warm
                .as_ref()
                .and_then(|wc| wc.cache.clone())
                .unwrap_or_else(|| {
                    Arc::new(NeighborCache::with_config(
                        self.config.kernel,
                        Arc::clone(&obs),
                    ))
                })
        });
        let mut fingerprints: Vec<Option<DataFingerprint>> = vec![None; m];
        if let Some(cache) = &cache {
            let mut fp_by_space: HashMap<usize, DataFingerprint> = HashMap::new();
            for &i in &changed {
                if let Some((metric, k)) = self.config.base_estimators[i].neighbor_requirement() {
                    let ptr = Arc::as_ptr(&spaces[i]) as usize;
                    let sp_fp = *fp_by_space
                        .entry(ptr)
                        .or_insert_with(|| DataFingerprint::of(&spaces[i]));
                    cache.register(sp_fp, metric, k);
                    fingerprints[i] = Some(sp_fp);
                }
            }
        }

        // Fit the changed subset with the same fault isolation and
        // bounded retries as a cold fit. A generic schedule suffices: the
        // subset is small, and per-model results are independent of task
        // placement.
        let executor = self.executor_for_run()?;
        let fit_threads = (self.config.n_workers / changed.len().max(1)).max(1);
        let make_task =
            |i: usize, attempt: usize| -> Box<dyn FnOnce() -> Result<FitOutput> + Send> {
                let spec = self.config.base_estimators[i];
                let seed = salted_seed(self.model_seed(i), attempt);
                let psi = Arc::clone(&spaces[i]);
                let ctx = match &cache {
                    Some(c) if fingerprints[i].is_some() => {
                        FitContext::cached(Arc::clone(c), fingerprints[i], fit_threads)
                    }
                    _ => FitContext::standalone(fit_threads),
                }
                .with_kernel_config(self.config.kernel);
                let task_obs = Arc::clone(&obs);
                let stage = if attempt == 0 {
                    Stage::ModelFit
                } else {
                    Stage::ModelRetry
                };
                Box::new(move || {
                    let _span = suod_observe::span(task_obs.as_ref(), stage, SpanAttrs::model(i));
                    let mut det = spec.build(seed)?;
                    let start = Instant::now();
                    match det.fit_with_context(&psi, &ctx) {
                        Ok(()) => {
                            let elapsed = start.elapsed();
                            let scores = det.training_scores()?;
                            Ok(Ok((det, scores, elapsed)))
                        }
                        Err(e) => Ok(Err(e)),
                    }
                })
            };

        let mut fitted: Vec<Option<FitSuccess>> = (0..m).map(|_| None).collect();
        let mut causes: Vec<Option<suod_detectors::Error>> = vec![None; m];
        let mut attempts = vec![0usize; m];
        let mut report = ExecutionReport::default();
        if !changed.is_empty() {
            let tasks: Vec<_> = changed.iter().map(|&i| make_task(i, 0)).collect();
            let assignment =
                generic_schedule(changed.len(), self.config.n_workers.min(changed.len()))?;
            let (outcomes, first_report) =
                executor.run_with_report_isolated_observed(tasks, &assignment, Arc::clone(&obs))?;
            report = first_report;
            for (&i, outcome) in changed.iter().zip(outcomes) {
                attempts[i] = 1;
                match interpret_outcome(outcome)? {
                    Ok(ok) => fitted[i] = Some(ok),
                    Err(cause) => causes[i] = Some(cause),
                }
            }
            for attempt in 1..=self.config.max_model_retries {
                let pending: Vec<usize> = changed
                    .iter()
                    .copied()
                    .filter(|&i| causes[i].is_some())
                    .collect();
                if pending.is_empty() {
                    break;
                }
                let retry_tasks: Vec<_> = pending.iter().map(|&i| make_task(i, attempt)).collect();
                let retry_assignment =
                    generic_schedule(pending.len(), self.config.n_workers.min(pending.len()))?;
                let (retry_outcomes, retry_report) = executor.run_with_report_isolated_observed(
                    retry_tasks,
                    &retry_assignment,
                    Arc::clone(&obs),
                )?;
                obs.counter(Counter::Retry, pending.len() as u64);
                report.retries += pending.len();
                report.failures += retry_report.failures;
                report.steals += retry_report.steals;
                for (&i, outcome) in pending.iter().zip(retry_outcomes) {
                    attempts[i] += 1;
                    match interpret_outcome(outcome)? {
                        Ok(ok) => {
                            fitted[i] = Some(ok);
                            causes[i] = None;
                        }
                        Err(cause) => causes[i] = Some(cause),
                    }
                }
            }
        }
        if let Some(cache) = &cache {
            let stats = cache.stats();
            report.cache_hits = stats.hits;
            report.cache_misses = stats.misses;
            report.cache_build_time = stats.build_time;
        }

        // Health + degradation floor over the NEW pool. Reused models are
        // healthy with zero attempts this round; stragglers are a
        // wall-clock property of a full fit and stay unset here.
        let health = ModelHealth::new(
            (0..m)
                .map(|i| ModelReport {
                    index: i,
                    name: self.config.base_estimators[i].name(),
                    status: if reused[i].is_some() || fitted[i].is_some() {
                        ModelStatus::Healthy
                    } else {
                        ModelStatus::Quarantined
                    },
                    cause: causes[i].clone(),
                    attempts: attempts[i],
                    straggler: false,
                })
                .collect(),
        );
        if health.quarantined() > 0 {
            obs.counter(Counter::Quarantine, health.quarantined() as u64);
        }
        let models_diag: Vec<ModelDiagnostics> = (0..m)
            .map(|i| ModelDiagnostics {
                index: i,
                name: self.config.base_estimators[i].name(),
                status: if reused[i].is_some() || fitted[i].is_some() {
                    ModelStatus::Healthy
                } else {
                    ModelStatus::Quarantined
                },
                attempts: attempts[i],
                straggler: false,
                fit_time: reused[i]
                    .as_ref()
                    .map(|mm| mm.fit_time)
                    .or_else(|| fitted[i].as_ref().map(|&(_, _, t)| t)),
                projected: reused[i]
                    .as_ref()
                    .map(|mm| mm.projector.is_some())
                    .unwrap_or_else(|| projectors[i].is_some()),
                approximated: false,
            })
            .collect();
        let n_healthy = health.healthy();
        let required =
            (((self.config.min_healthy_fraction * m as f64) - 1e-9).ceil() as usize).max(1);
        let ann_fallbacks = cache.as_ref().map_or(0, |c| c.stats().ann_fallbacks);
        self.diagnostics = Some(FitDiagnostics::new(
            report,
            health,
            models_diag,
            CpuFeatures::detect(self.config.kernel.precision, self.config.kernel.neighbor),
            ann_fallbacks,
        ));
        if n_healthy < required {
            let cause = causes
                .iter()
                .flatten()
                .next()
                .cloned()
                .expect("a degraded pool records at least one failure cause");
            self.state = None;
            self.warm = None;
            return Err(Error::PoolDegraded {
                healthy: n_healthy,
                total: m,
                required,
                cause,
            });
        }

        // Assemble: PSA for changed costly models, then merge reused and
        // fresh models in pool order.
        let mut new_fitted: Vec<Option<FittedModel>> = (0..m).map(|_| None).collect();
        for &i in &changed {
            if let Some((detector, train_scores, fit_time)) = fitted[i].take() {
                new_fitted[i] = Some(FittedModel {
                    spec: self.config.base_estimators[i],
                    pool_index: i,
                    detector,
                    projector: projectors[i].take(),
                    approximator: None,
                    train_scores,
                    fit_time,
                });
            }
        }
        if self.config.approx_enabled {
            for &i in &changed {
                if let Some(model) = new_fitted[i].as_mut() {
                    if model.spec.is_costly() {
                        let _span = suod_observe::span(
                            obs.as_ref(),
                            Stage::PsaDistill,
                            SpanAttrs::model(i),
                        );
                        model.approximator = Some(fit_approximator(
                            &self.config.approx_spec,
                            &spaces[i],
                            &model.train_scores,
                            self.model_seed(i) ^ 0xA55A,
                        )?);
                    }
                }
            }
        }
        let mut models: Vec<Arc<FittedModel>> = Vec::with_capacity(n_healthy);
        for i in 0..m {
            if let Some(mm) = &reused[i] {
                models.push(Arc::clone(mm));
            } else if let Some(model) = new_fitted[i].take() {
                models.push(Arc::new(model));
            }
        }
        if let Some(diag) = self.diagnostics.as_mut() {
            for model in &models {
                if let Some(row) = diag.models_mut().get_mut(model.pool_index) {
                    row.approximated = model.approximator.is_some();
                }
            }
        }

        // Standardization reference + threshold over the FULL new
        // ensemble (identical formulas to a cold fit).
        let (score_means, score_stds, threshold) = {
            let _span = suod_observe::span(obs.as_ref(), Stage::Threshold, SpanAttrs::none());
            let score_means: Vec<f64> = models
                .iter()
                .map(|m| suod_linalg::stats::mean(&m.train_scores))
                .collect();
            let score_stds: Vec<f64> = models
                .iter()
                .map(|m| suod_linalg::stats::std_dev(&m.train_scores).max(1e-12))
                .collect();
            let train_matrix = scores_to_matrix(
                models.iter().map(|m| m.train_scores.clone()).collect(),
                x.nrows(),
            )?;
            let combined = combine_standardized(&train_matrix, &score_means, &score_stds, None);
            let n_out = ((x.nrows() as f64) * self.config.contamination).round() as usize;
            let n_out = n_out.clamp(1, x.nrows());
            let threshold = suod_linalg::rank::kth_largest(&combined, n_out)
                .expect("n_out within bounds by construction");
            (score_means, score_stds, threshold)
        };

        self.state = Some(Arc::new(FittedState {
            models,
            threshold,
            n_features: d,
            score_means,
            score_stds,
        }));
        self.warm = Some(WarmContext {
            cache: cache.clone(),
            train_fingerprint: fp,
        });
        Ok(self)
    }

    fn state(&self) -> Result<&Arc<FittedState>> {
        self.state.as_ref().ok_or(Error::NotFitted)
    }

    /// Returns the persistent pool, creating it on first use (or when the
    /// configured worker count changed since it was built).
    fn executor_for_run(&mut self) -> Result<Arc<WorkStealingExecutor>> {
        match &self.executor {
            Some(e) if e.n_workers() == self.config.n_workers => Ok(Arc::clone(e)),
            _ => {
                let e = Arc::new(WorkStealingExecutor::new(self.config.n_workers)?);
                self.executor = Some(Arc::clone(&e));
                Ok(e)
            }
        }
    }

    /// Unified diagnostics from the most recent [`fit`](Self::fit):
    /// execution telemetry ([`FitDiagnostics::execution`]), per-model
    /// health ([`FitDiagnostics::health`]), and per-model rows joining
    /// fit time with the projection/approximation decisions
    /// ([`FitDiagnostics::models`]). Available even when `fit` failed
    /// with [`Error::PoolDegraded`]; `None` before the first fit reaches
    /// the execution stage.
    pub fn diagnostics(&self) -> Option<&FitDiagnostics> {
        self.diagnostics.as_ref()
    }

    /// Per-model prediction cost forecast (the cost model's unitless
    /// scale) for the models at the given surviving-ensemble positions:
    /// nominal 1.0 for approximated models (cheap forest lookups),
    /// analytic forecast otherwise.
    fn predict_model_costs(&self, state: &FittedState, positions: &[usize]) -> Vec<f64> {
        let meta = DatasetMeta::from_shape(state.models[0].train_scores.len(), state.n_features);
        positions
            .iter()
            .map(|&p| {
                let model = &state.models[p];
                if model.approximator.is_some() {
                    1.0
                } else {
                    self.config
                        .cost_model
                        .predict_cost(&model.spec.task_descriptor(), &meta)
                }
            })
            .collect()
    }

    /// BPS applies to "both training and prediction stage" (paper §3.5).
    /// Prediction work is split into (model x row-chunk) tasks, ordered
    /// model-major; each task's cost is the model's forecast (nominal 1.0
    /// for approximated models, which answer through cheap forest
    /// lookups) scaled by the chunk's share of the query rows.
    fn prediction_schedule(
        &self,
        model_costs: &[f64],
        chunks: &[std::ops::Range<usize>],
    ) -> Result<Assignment> {
        let n_tasks = model_costs.len() * chunks.len();
        let t = self.config.n_workers;
        if t <= 1 || !self.config.bps_enabled {
            return Ok(generic_schedule(n_tasks, t.max(1))?);
        }
        let chunk_lens: Vec<usize> = chunks.iter().map(|c| c.len()).collect();
        let costs = suod_scheduler::predict_chunk_costs(model_costs, &chunk_lens);
        Ok(bps_schedule(&costs, t, self.config.bps_alpha)?)
    }

    /// Per-model outlyingness scores for new samples: an `n x m` matrix
    /// with one column per surviving base estimator. Costly models answer
    /// through their PSA approximators when approximation is enabled.
    ///
    /// Scoring is **fault-isolated per model**: a model that panics,
    /// returns a typed error, or emits non-finite query scores
    /// contributes an all-NaN column (the quarantined-column convention
    /// the [`suod_metrics`] combiners skip) instead of failing the whole
    /// call. Use [`decision_function_observed`](Self::decision_function_observed)
    /// to recover the per-model failure causes.
    ///
    /// # Errors
    ///
    /// Returns [`Error::NotFitted`] before `fit`, plus query validation
    /// failures (dimension mismatch, non-finite input).
    pub fn decision_function(&self, x: &Matrix) -> Result<Matrix> {
        let obs = Arc::clone(&self.config.observer);
        self.predict_isolated(x, None, &obs).map(|(out, _)| out)
    }

    /// Like [`decision_function`](Self::decision_function) but also
    /// returns a [`PredictReport`]: per-model scoring durations (the true
    /// prediction cost vector consumed by the scheduling-simulation
    /// harnesses — Table 4 / IQVIA reproductions), the predict-phase
    /// executor telemetry ([`ExecutionReport`] failure/steal/straggler
    /// counters), and one [`PredictFailure`] per model whose column was
    /// replaced by NaN.
    ///
    /// Span attribution ([`Stage::PredictChunk`]) uses the model's
    /// position in the **surviving** ensemble (quarantined models never
    /// predict). Observation does not change any computed value.
    ///
    /// # Errors
    ///
    /// Same conditions as [`decision_function`](Self::decision_function).
    pub fn decision_function_observed(
        &self,
        x: &Matrix,
        observer: &Arc<dyn Observer>,
    ) -> Result<(Matrix, PredictReport)> {
        self.predict_isolated(x, None, observer)
    }

    /// Like [`decision_function_observed`](Self::decision_function_observed)
    /// but scores only the models whose `active` flag is set (indexed by
    /// position in the surviving ensemble). Masked-out models get all-NaN
    /// columns, zero model time, and **no scheduled work** — the
    /// mechanism a serving layer uses to keep predict-quarantined models
    /// out of the hot path.
    ///
    /// # Errors
    ///
    /// Same conditions as [`decision_function`](Self::decision_function),
    /// plus [`Error::InvalidConfig`] when `active.len()` differs from the
    /// surviving-model count.
    pub fn decision_function_masked(
        &self,
        x: &Matrix,
        active: &[bool],
        observer: &Arc<dyn Observer>,
    ) -> Result<(Matrix, PredictReport)> {
        self.predict_isolated(x, Some(active), observer)
    }

    /// The fault-isolated prediction engine shared by
    /// [`decision_function`](Self::decision_function) and its observed /
    /// masked variants: runs the (model x row-chunk) task grid on the
    /// persistent executor with per-task panic isolation, turns every
    /// per-model failure into an all-NaN column, and assembles the
    /// telemetry.
    fn predict_isolated(
        &self,
        x: &Matrix,
        active: Option<&[bool]>,
        observer: &Arc<dyn Observer>,
    ) -> Result<(Matrix, PredictReport)> {
        let state = Arc::clone(self.state()?);
        if x.ncols() != state.n_features {
            return Err(Error::InvalidConfig(format!(
                "expected {} features, got {}",
                state.n_features,
                x.ncols()
            )));
        }
        validate_finite(x, "decision_function").map_err(Error::Detector)?;
        let m = state.models.len();
        if let Some(mask) = active {
            if mask.len() != m {
                return Err(Error::InvalidConfig(format!(
                    "active mask covers {} models, surviving ensemble has {m}",
                    mask.len()
                )));
            }
        }
        let executor = self.executor.as_ref().ok_or(Error::NotFitted)?;
        let wall_start = Instant::now();
        let _predict_span =
            suod_observe::span(observer.as_ref(), Stage::Predict, SpanAttrs::none());
        let n = x.nrows();
        let positions: Vec<usize> = (0..m).filter(|&i| active.is_none_or(|a| a[i])).collect();
        let skipped: Vec<usize> = (0..m).filter(|&i| !active.is_none_or(|a| a[i])).collect();

        // Columns default to NaN; only chunks that score successfully
        // overwrite them. NaN is a constant, so failed/masked columns are
        // as bit-reproducible as healthy ones.
        let mut out = Matrix::zeros(n, m);
        for r in 0..n {
            for c in 0..m {
                out.set(r, c, f64::NAN);
            }
        }
        if positions.is_empty() {
            let report = PredictReport {
                model_times: vec![Duration::ZERO; m],
                wall_time: wall_start.elapsed(),
                n_rows: n,
                execution: ExecutionReport::default(),
                failures: Vec::new(),
                skipped,
            };
            return Ok((out, report));
        }

        let chunks = predict_chunks(n);
        let n_chunks = chunks.len();
        let model_costs = self.predict_model_costs(&state, &positions);
        let assignment = self.prediction_schedule(&model_costs, &chunks)?;

        // (model x row-chunk) tasks, model-major over the active subset.
        // Every detector scores rows independently and standardization
        // uses training statistics, so chunk boundaries cannot change any
        // value — scores are bit-identical to a sequential whole-matrix
        // pass at any worker count.
        let query = Arc::new(x.clone());
        type ChunkScores = std::result::Result<Vec<f64>, suod_detectors::Error>;
        let mut tasks: Vec<Box<dyn FnOnce() -> ChunkScores + Send>> =
            Vec::with_capacity(positions.len() * n_chunks);
        for (pi, &mi) in positions.iter().enumerate() {
            for (ci, chunk) in chunks.iter().enumerate() {
                let state = Arc::clone(&state);
                let query = Arc::clone(&query);
                let chunk = chunk.clone();
                let task_obs = Arc::clone(observer);
                let task_index = pi * n_chunks + ci;
                tasks.push(Box::new(move || {
                    let _span = suod_observe::span(
                        task_obs.as_ref(),
                        Stage::PredictChunk,
                        SpanAttrs::model(mi).with_task(task_index),
                    );
                    let model = &state.models[mi];
                    let slab = row_slab(&query, &chunk);
                    let projected;
                    let z: &Matrix = match &model.projector {
                        Some(p) => match p.transform(&slab) {
                            Ok(t) => {
                                projected = t;
                                &projected
                            }
                            Err(e) => {
                                return Err(suod_detectors::Error::DegenerateData(format!(
                                    "projection failed at predict: {e}"
                                )))
                            }
                        },
                        None => &slab,
                    };
                    match &model.approximator {
                        Some(r) => r.predict(z).map_err(|e| {
                            suod_detectors::Error::DegenerateData(format!(
                                "approximator prediction failed: {e}"
                            ))
                        }),
                        None => model.detector.decision_function(z),
                    }
                }));
            }
        }

        let (outcomes, mut execution) =
            executor.run_with_report_isolated_observed(tasks, &assignment, Arc::clone(observer))?;

        // Per-model reassembly: the first failed chunk quarantines the
        // whole column (partial columns would silently shift the
        // combiner's average), but the model's measured time still counts
        // every chunk — the work was performed.
        let mut model_times = vec![Duration::ZERO; m];
        let mut failures: Vec<PredictFailure> = Vec::new();
        let mut outcomes = outcomes.into_iter();
        for (pi, &mi) in positions.iter().enumerate() {
            let mut parts: Vec<(usize, Vec<f64>)> = Vec::with_capacity(n_chunks);
            let mut cause: Option<suod_detectors::Error> = None;
            for (ci, chunk) in chunks.iter().enumerate() {
                let outcome = outcomes.next().expect("one outcome per task");
                if cause.is_some() {
                    continue;
                }
                match outcome {
                    Err(panic) => {
                        cause = Some(suod_detectors::Error::Panicked(panic.message));
                    }
                    Ok(Err(e)) => cause = Some(e),
                    Ok(Ok(part)) => {
                        if part.len() != chunk.len() {
                            cause = Some(suod_detectors::Error::DegenerateData(format!(
                                "model produced {} scores for {} samples",
                                part.len(),
                                chunk.len()
                            )));
                        } else if part.iter().any(|v| !v.is_finite()) {
                            cause = Some(suod_detectors::Error::DegenerateData(
                                "model produced non-finite prediction scores".into(),
                            ));
                        } else {
                            parts.push((ci, part));
                        }
                    }
                }
            }
            model_times[mi] = (0..n_chunks)
                .map(|ci| {
                    execution
                        .task_times
                        .get(pi * n_chunks + ci)
                        .copied()
                        .unwrap_or(Duration::ZERO)
                })
                .sum();
            match cause {
                Some(cause) => failures.push(PredictFailure {
                    index: state.models[mi].pool_index,
                    name: state.models[mi].spec.name(),
                    cause,
                }),
                None => {
                    for (ci, part) in parts {
                        let chunk = &chunks[ci];
                        for (offset, &v) in part.iter().enumerate() {
                            out.set(chunk.start + offset, mi, v);
                        }
                    }
                }
            }
        }

        // Straggler flagging mirrors fit: measured model time far past
        // its forecast-implied share of the pass (and non-trivial in
        // absolute terms). Wall-clock-dependent, excluded from
        // determinism guarantees.
        let total_pred: f64 = model_costs.iter().sum();
        let total_measured: f64 = positions
            .iter()
            .map(|&mi| model_times[mi].as_secs_f64())
            .sum();
        let mut stragglers = Vec::new();
        if total_pred > 0.0 && total_measured > 0.0 {
            for (pi, &mi) in positions.iter().enumerate() {
                let expected = model_costs[pi] / total_pred * total_measured;
                let measured = model_times[mi].as_secs_f64();
                if measured > self.config.straggler_factor * expected && measured > 0.05 {
                    stragglers.push(mi);
                }
            }
        }
        execution.stragglers = stragglers;
        if !execution.stragglers.is_empty() {
            observer.counter(Counter::Straggler, execution.stragglers.len() as u64);
        }

        let report = PredictReport {
            model_times,
            wall_time: wall_start.elapsed(),
            n_rows: n,
            execution,
            failures,
            skipped,
        };
        Ok((out, report))
    }

    /// The same `min_healthy_fraction` floor [`fit`](Self::fit) enforces,
    /// applied to a prediction pass: models that failed to score (or were
    /// masked out) count against the floor, computed over the
    /// **configured** pool size so fit-time and predict-time quarantines
    /// draw from one shared budget.
    fn enforce_predict_floor(&self, report: &PredictReport) -> Result<()> {
        let total = self.config.base_estimators.len();
        let required =
            (((self.config.min_healthy_fraction * total as f64) - 1e-9).ceil() as usize).max(1);
        let healthy = report.healthy_models();
        if healthy < required {
            let cause = report.failures.first().map(|f| f.cause.clone()).unwrap_or(
                suod_detectors::Error::DegenerateData(
                    "all remaining models were masked out at predict time".into(),
                ),
            );
            return Err(Error::PoolDegraded {
                healthy,
                total,
                required,
                cause,
            });
        }
        Ok(())
    }

    /// Ensemble score per sample: the average of the base-model columns
    /// after z-scoring each against its **training** score distribution
    /// (the paper's `Avg_` combiner; training-statistics standardization
    /// keeps single-sample queries meaningful). Models that fail at
    /// predict time are skipped from the average (survivor-only
    /// combination), subject to the `min_healthy_fraction` floor.
    ///
    /// # Errors
    ///
    /// Same conditions as [`decision_function`](Self::decision_function),
    /// plus [`Error::PoolDegraded`] when predict-time failures push the
    /// healthy count below the `min_healthy_fraction` floor.
    pub fn combined_scores(&self, x: &Matrix) -> Result<Vec<f64>> {
        let state = Arc::clone(self.state()?);
        let obs = Arc::clone(&self.config.observer);
        let (scores, report) = self.predict_isolated(x, None, &obs)?;
        self.enforce_predict_floor(&report)?;
        Ok(combine_standardized(
            &scores,
            &state.score_means,
            &state.score_stds,
            None,
        ))
    }

    /// Maximum-of-average combination with `n_buckets` buckets (the
    /// paper's `MOA_` combiner from Table 4), standardized against the
    /// training score distribution.
    ///
    /// # Errors
    ///
    /// Same conditions as [`combined_scores`](Self::combined_scores),
    /// plus [`Error::InvalidConfig`] when `n_buckets == 0`.
    pub fn combined_scores_moa(&self, x: &Matrix, n_buckets: usize) -> Result<Vec<f64>> {
        if n_buckets == 0 {
            return Err(Error::InvalidConfig("n_buckets must be >= 1".into()));
        }
        let state = Arc::clone(self.state()?);
        let obs = Arc::clone(&self.config.observer);
        let (scores, report) = self.predict_isolated(x, None, &obs)?;
        self.enforce_predict_floor(&report)?;
        Ok(combine_standardized(
            &scores,
            &state.score_means,
            &state.score_stds,
            Some(n_buckets),
        ))
    }

    /// Binary outlier labels for new samples, thresholding the combined
    /// score at the contamination quantile learned on the training set.
    ///
    /// # Errors
    ///
    /// Same conditions as [`decision_function`](Self::decision_function).
    pub fn predict(&self, x: &Matrix) -> Result<Vec<i32>> {
        let state = self.state()?;
        let combined = self.combined_scores(x)?;
        Ok(combined
            .iter()
            .map(|&s| i32::from(s >= state.threshold))
            .collect())
    }

    /// Outlier probability estimates in `[0, 1]`: the combined score
    /// min-max scaled by the training set's combined-score range (PyOD's
    /// `predict_proba` with linear scaling). Scores beyond the training
    /// range clamp to 0/1.
    ///
    /// # Errors
    ///
    /// Same conditions as [`decision_function`](Self::decision_function).
    pub fn predict_proba(&self, x: &Matrix) -> Result<Vec<f64>> {
        let train = self.training_combined_scores()?;
        let lo = suod_linalg::stats::min(&train);
        let hi = suod_linalg::stats::max(&train);
        let span = (hi - lo).max(1e-12);
        let combined = self.combined_scores(x)?;
        Ok(combined
            .iter()
            .map(|&s| ((s - lo) / span).clamp(0.0, 1.0))
            .collect())
    }

    /// Combined (averaged, train-standardized) scores of the training
    /// rows themselves — PyOD's `decision_scores_` for the ensemble.
    ///
    /// # Errors
    ///
    /// Returns [`Error::NotFitted`] before `fit`.
    pub fn training_combined_scores(&self) -> Result<Vec<f64>> {
        let state = self.state()?;
        let train_matrix = scores_to_matrix(
            state
                .models
                .iter()
                .map(|m| m.train_scores.clone())
                .collect(),
            state.models[0].train_scores.len(),
        )?;
        Ok(combine_standardized(
            &train_matrix,
            &state.score_means,
            &state.score_stds,
            None,
        ))
    }

    /// The decision threshold learned at fit time.
    ///
    /// # Errors
    ///
    /// Returns [`Error::NotFitted`] before `fit`.
    pub fn threshold(&self) -> Result<f64> {
        Ok(self.state()?.threshold)
    }

    /// Number of features the estimator was fitted on.
    ///
    /// # Errors
    ///
    /// Returns [`Error::NotFitted`] before `fit`.
    pub fn n_features(&self) -> Result<usize> {
        Ok(self.state()?.n_features)
    }

    /// Number of training rows — the reference scale for prediction-cost
    /// forecasts (see [`suod_scheduler::predict_batch_forecast`]).
    ///
    /// # Errors
    ///
    /// Returns [`Error::NotFitted`] before `fit`.
    pub fn train_rows(&self) -> Result<usize> {
        Ok(self.state()?.models[0].train_scores.len())
    }

    /// `(pool index, algorithm name)` of each surviving model, in
    /// surviving-ensemble order — the column order of
    /// [`decision_function`](Self::decision_function) and the index space
    /// of per-model masks. Pool indices are stable across fit-time
    /// quarantines and match [`ModelReport`] indices.
    ///
    /// # Errors
    ///
    /// Returns [`Error::NotFitted`] before `fit`.
    pub fn surviving_models(&self) -> Result<Vec<(usize, &'static str)>> {
        let state = self.state()?;
        Ok(state
            .models
            .iter()
            .map(|m| (m.pool_index, m.spec.name()))
            .collect())
    }

    /// Per-surviving-model prediction cost forecast in the cost model's
    /// unitless scale (nominal 1.0 for approximated models, which answer
    /// through cheap forest lookups). Combine with
    /// [`train_rows`](Self::train_rows) and
    /// [`suod_scheduler::predict_batch_forecast`] to size serving
    /// micro-batches.
    ///
    /// # Errors
    ///
    /// Returns [`Error::NotFitted`] before `fit`.
    pub fn predict_unit_costs(&self) -> Result<Vec<f64>> {
        let state = self.state()?;
        let all: Vec<usize> = (0..state.models.len()).collect();
        Ok(self.predict_model_costs(state, &all))
    }

    /// Combines an already-computed `n x m` per-model score matrix (as
    /// returned by [`decision_function`](Self::decision_function) or
    /// [`decision_function_masked`](Self::decision_function_masked)) with
    /// the training-statistics average combiner. Non-finite columns are
    /// skipped per row, so a serving layer can score once and combine
    /// survivor-only without a second prediction pass.
    ///
    /// # Errors
    ///
    /// Returns [`Error::NotFitted`] before `fit` and
    /// [`Error::InvalidConfig`] on a column-count mismatch.
    pub fn combine_score_matrix(&self, scores: &Matrix) -> Result<Vec<f64>> {
        let state = self.state()?;
        if scores.ncols() != state.models.len() {
            return Err(Error::InvalidConfig(format!(
                "score matrix has {} columns, surviving ensemble has {}",
                scores.ncols(),
                state.models.len()
            )));
        }
        Ok(combine_standardized(
            scores,
            &state.score_means,
            &state.score_stds,
            None,
        ))
    }

    /// Per-model training scores (`m` columns), the pseudo ground truth.
    ///
    /// # Errors
    ///
    /// Returns [`Error::NotFitted`] before `fit`.
    pub fn training_scores(&self) -> Result<Matrix> {
        let state = self.state()?;
        scores_to_matrix(
            state
                .models
                .iter()
                .map(|m| m.train_scores.clone())
                .collect(),
            state.models[0].train_scores.len(),
        )
    }

    /// Aggregated per-feature importances from the PSA approximators — the
    /// interpretability dividend of pseudo-supervised approximation (§3.4,
    /// Remark 1). Importances are averaged over approximators that were
    /// trained **in the original feature space** (projected models mix
    /// features through `W`, so their importances are not attributable to
    /// input columns) and normalized to sum to 1.
    ///
    /// # Errors
    ///
    /// Returns [`Error::NotFitted`] before `fit` and
    /// [`Error::InvalidConfig`] when no unprojected approximator exists
    /// (enable approximation, or disable projection for at least one
    /// costly model).
    pub fn feature_importances(&self) -> Result<Vec<f64>> {
        let state = self.state()?;
        let mut acc = vec![0.0; state.n_features];
        let mut count = 0usize;
        for model in &state.models {
            if model.projector.is_some() {
                continue;
            }
            if let Some(imp) = model
                .approximator
                .as_ref()
                .and_then(|a| a.feature_importances())
            {
                for (a, v) in acc.iter_mut().zip(imp) {
                    *a += v;
                }
                count += 1;
            }
        }
        if count == 0 {
            return Err(Error::InvalidConfig(
                "no unprojected approximator provides feature importances".into(),
            ));
        }
        let total: f64 = acc.iter().sum();
        if total > 0.0 {
            for a in &mut acc {
                *a /= total;
            }
        }
        Ok(acc)
    }

    /// Simulates the fit makespan of this pool's **measured** costs under
    /// an arbitrary worker count, for both generic and BPS scheduling.
    /// Returns `(generic, bps)` simulation results. Used by the Table 3/4
    /// reproduction harnesses (see DESIGN.md §4 on the single-core host).
    ///
    /// # Errors
    ///
    /// Returns [`Error::NotFitted`] before `fit` and propagates scheduler
    /// failures.
    pub fn simulate_fit_schedules(&self, t: usize) -> Result<(SimulationResult, SimulationResult)> {
        let state = self.state()?;
        let costs: Vec<f64> = state
            .models
            .iter()
            .map(|m| m.fit_time.as_secs_f64())
            .collect();
        let generic = simulate_makespan(&costs, &generic_schedule(costs.len(), t)?)?;
        // BPS schedules on *forecasted* costs, evaluated against true ones.
        let tasks: Vec<_> = state
            .models
            .iter()
            .map(|m| m.spec.task_descriptor())
            .collect();
        let meta = DatasetMeta::from_shape(state.models[0].train_scores.len(), state.n_features);
        let predicted = self.config.cost_model.predict_costs(&tasks, &meta);
        let bps = simulate_makespan(&costs, &bps_schedule(&predicted, t, self.config.bps_alpha)?)?;
        Ok((generic, bps))
    }
}

/// Combines an `n x m` score matrix after z-scoring each column against
/// the given training means/stds: plain row average when `buckets` is
/// `None`, maximum-of-average over `b` contiguous buckets otherwise.
///
/// Non-finite entries — the all-NaN columns of models quarantined or
/// masked out at predict time — are **skipped**: each row averages over
/// its finite entries only, so survivor combination is unchanged by how
/// many columns dropped out. A row with no finite entries yields NaN
/// (callers enforce the healthy-model floor before trusting the output).
/// When every entry is finite the result is bit-identical to the
/// unconditional average.
fn combine_standardized(
    scores: &Matrix,
    means: &[f64],
    stds: &[f64],
    buckets: Option<usize>,
) -> Vec<f64> {
    let m = scores.ncols();
    let row_score = |row: &[f64]| -> Vec<f64> {
        row.iter()
            .zip(means)
            .zip(stds)
            .map(|((&v, &mu), &sd)| (v - mu) / sd)
            .collect()
    };
    let finite_mean = |z: &[f64]| -> f64 {
        let mut sum = 0.0;
        let mut count = 0usize;
        for &v in z {
            if v.is_finite() {
                sum += v;
                count += 1;
            }
        }
        if count == 0 {
            f64::NAN
        } else {
            sum / count as f64
        }
    };
    match buckets {
        None => scores
            .rows_iter()
            .map(|row| finite_mean(&row_score(row)))
            .collect(),
        Some(b) => {
            let b = b.clamp(1, m.max(1));
            let base = m / b;
            let extra = m % b;
            let mut ranges = Vec::with_capacity(b);
            let mut start = 0;
            for i in 0..b {
                let len = base + usize::from(i < extra);
                ranges.push((start, start + len));
                start += len;
            }
            scores
                .rows_iter()
                .map(|row| {
                    let z = row_score(row);
                    let best = ranges
                        .iter()
                        .map(|&(s, e)| finite_mean(&z[s..e]))
                        .filter(|v| v.is_finite())
                        .fold(f64::NEG_INFINITY, f64::max);
                    if best.is_finite() {
                        best
                    } else {
                        f64::NAN
                    }
                })
                .collect()
        }
    }
}

/// Hashable identity of a [`DistanceMetric`] for grouping cache entries
/// (the enum itself carries an `f64` exponent, so it is not `Eq`/`Hash`).
fn metric_key(m: DistanceMetric) -> (u8, u64) {
    match m {
        DistanceMetric::Euclidean => (0, 0),
        DistanceMetric::Manhattan => (1, 0),
        DistanceMetric::Minkowski(p) => (2, p.to_bits()),
    }
}

/// Splits `0..n` into fixed-width row chunks for prediction tasks. An
/// empty query keeps one empty chunk so the output matrix still gets its
/// `m` columns.
fn predict_chunks(n: usize) -> Vec<std::ops::Range<usize>> {
    if n == 0 {
        #[allow(clippy::single_range_in_vec_init)]
        return vec![0..0];
    }
    (0..n)
        .step_by(PREDICT_ROW_CHUNK)
        .map(|start| start..(start + PREDICT_ROW_CHUNK).min(n))
        .collect()
}

/// Copies a contiguous row range of `x` into its own matrix.
fn row_slab(x: &Matrix, range: &std::ops::Range<usize>) -> Matrix {
    let cols = x.ncols();
    let data = x.as_slice()[range.start * cols..range.end * cols].to_vec();
    Matrix::from_vec(range.len(), cols, data).expect("slab dimensions are consistent")
}

/// Assembles per-model score columns into an `n x m` matrix.
fn scores_to_matrix(columns: Vec<Vec<f64>>, n: usize) -> Result<Matrix> {
    let m = columns.len();
    let mut out = Matrix::zeros(n, m);
    for (c, col) in columns.iter().enumerate() {
        if col.len() != n {
            return Err(Error::InvalidConfig(format!(
                "model {c} produced {} scores for {n} samples",
                col.len()
            )));
        }
        for (r, &v) in col.iter().enumerate() {
            out.set(r, c, v);
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use suod_detectors::KnnMethod;
    use suod_linalg::DistanceMetric;

    fn small_pool() -> Vec<ModelSpec> {
        vec![
            ModelSpec::Knn {
                n_neighbors: 5,
                method: KnnMethod::Largest,
            },
            ModelSpec::Lof {
                n_neighbors: 5,
                metric: DistanceMetric::Euclidean,
            },
            ModelSpec::Hbos {
                n_bins: 10,
                tolerance: 0.3,
            },
            ModelSpec::IForest {
                n_estimators: 20,
                max_features: 0.8,
            },
        ]
    }

    fn data() -> Matrix {
        let mut rows: Vec<Vec<f64>> = (0..60)
            .map(|i| {
                vec![
                    (i % 10) as f64 * 0.2,
                    (i / 10) as f64 * 0.2,
                    ((i * 3) % 7) as f64 * 0.1,
                    ((i * 5) % 11) as f64 * 0.1,
                ]
            })
            .collect();
        rows.push(vec![8.0, 8.0, 8.0, 8.0]);
        rows.push(vec![-8.0, 9.0, -8.0, 9.0]);
        Matrix::from_rows(&rows).unwrap()
    }

    fn fitted(builder: SuodBuilder) -> Suod {
        let mut clf = builder
            .base_estimators(small_pool())
            .seed(3)
            .build()
            .unwrap();
        clf.fit(&data()).unwrap();
        clf
    }

    #[test]
    fn fit_predict_end_to_end() {
        let clf = fitted(Suod::builder().contamination(0.05));
        let x = data();
        let scores = clf.decision_function(&x).unwrap();
        assert_eq!(scores.shape(), (62, 4));
        let combined = clf.combined_scores(&x).unwrap();
        // The two planted outliers top the combined ranking.
        let order = suod_linalg::rank::argsort_desc(&combined);
        assert!(order[..2].contains(&60) || order[..3].contains(&60));
        assert!(order[..3].contains(&61));
        let labels = clf.predict(&x).unwrap();
        assert_eq!(labels.len(), 62);
        assert!(labels.iter().sum::<i32>() >= 1);
    }

    #[test]
    fn module_flags_respected() {
        let clf = fitted(
            Suod::builder()
                .with_projection(true)
                .with_approximation(true),
        );
        let diag = clf.diagnostics().unwrap();
        // kNN and LOF are projection-friendly and costly; HBOS/iForest not.
        assert_eq!(diag.projected(), vec![true, true, false, false]);
        assert_eq!(diag.approximated(), vec![true, true, false, false]);

        let off = fitted(
            Suod::builder()
                .with_projection(false)
                .with_approximation(false),
        );
        let off_diag = off.diagnostics().unwrap();
        assert!(off_diag.projected().iter().all(|&b| !b));
        assert!(off_diag.approximated().iter().all(|&b| !b));
    }

    #[test]
    fn multi_worker_matches_single_worker_scores() {
        // Scheduling must not change results, only timing.
        let seq = fitted(Suod::builder().n_workers(1));
        let par = fitted(Suod::builder().n_workers(3).with_bps(true));
        let x = data();
        let a = seq.decision_function(&x).unwrap();
        let b = par.decision_function(&x).unwrap();
        for (u, v) in a.as_slice().iter().zip(b.as_slice()) {
            assert!((u - v).abs() < 1e-9, "{u} vs {v}");
        }
    }

    #[test]
    fn approximation_off_means_exact_detector_scores() {
        let clf = fitted(
            Suod::builder()
                .with_projection(false)
                .with_approximation(false),
        );
        let x = data();
        let scores = clf.decision_function(&x).unwrap();
        // Column 2 is HBOS; must equal a standalone HBOS fit.
        let mut hbos = ModelSpec::Hbos {
            n_bins: 10,
            tolerance: 0.3,
        }
        .build(0)
        .unwrap();
        hbos.fit(&x).unwrap();
        let expected = hbos.decision_function(&x).unwrap();
        for (r, &e) in expected.iter().enumerate() {
            assert!((scores.get(r, 2) - e).abs() < 1e-9);
        }
    }

    #[test]
    fn not_fitted_errors() {
        let clf = Suod::builder()
            .base_estimators(small_pool())
            .build()
            .unwrap();
        assert!(matches!(
            clf.decision_function(&data()).unwrap_err(),
            Error::NotFitted
        ));
        assert!(clf.predict(&data()).is_err());
        assert!(clf.threshold().is_err());
        assert!(clf.diagnostics().is_none());
    }

    #[test]
    fn builder_validation() {
        assert!(Suod::builder().build().is_err()); // empty pool
        assert!(Suod::builder()
            .base_estimators(small_pool())
            .projection_fraction(0.0)
            .build()
            .is_err());
        assert!(Suod::builder()
            .base_estimators(small_pool())
            .n_workers(0)
            .build()
            .is_err());
        assert!(Suod::builder()
            .base_estimators(small_pool())
            .contamination(0.9)
            .build()
            .is_err());
        assert!(Suod::builder()
            .base_estimators(small_pool())
            .bps_alpha(-1.0)
            .build()
            .is_err());
    }

    #[test]
    fn dimension_mismatch_rejected() {
        let clf = fitted(Suod::builder());
        assert!(clf.decision_function(&Matrix::zeros(3, 2)).is_err());
    }

    #[test]
    fn deterministic_per_seed() {
        let x = data();
        let run = |seed: u64| {
            let mut clf = Suod::builder()
                .base_estimators(small_pool())
                .seed(seed)
                .build()
                .unwrap();
            clf.fit(&x).unwrap();
            clf.combined_scores(&x).unwrap()
        };
        assert_eq!(run(5), run(5));
        assert_ne!(run(5), run(6));
    }

    #[test]
    fn simulated_schedules_report_sane_makespans() {
        let clf = fitted(Suod::builder());
        let (generic, bps) = clf.simulate_fit_schedules(2).unwrap();
        assert!(generic.makespan > 0.0);
        assert!(bps.makespan > 0.0);
        assert!(generic.makespan <= generic.sequential_time + 1e-12);
        assert!(bps.makespan <= bps.sequential_time + 1e-12);
    }

    #[test]
    fn moa_combiner_available() {
        let clf = fitted(Suod::builder());
        let x = data();
        let m = clf.combined_scores_moa(&x, 2).unwrap();
        assert_eq!(m.len(), x.nrows());
    }

    #[test]
    fn fit_times_recorded() {
        let clf = fitted(Suod::builder());
        let diag = clf.diagnostics().unwrap();
        assert_eq!(diag.fit_times().len(), 4);
        assert_eq!(diag.models().len(), 4);
        assert!(diag.models().iter().all(|m| m.fit_time.is_some()));
        assert!(diag.models().iter().all(|m| m.attempts == 1));
    }

    #[test]
    fn feature_importances_highlight_outlier_axes() {
        // Outliers deviate along every axis equally here; importances must
        // exist, be normalized, and be finite.
        let mut clf = Suod::builder()
            .base_estimators(small_pool())
            .with_projection(false) // keep approximators in the original space
            .with_approximation(true)
            .seed(2)
            .build()
            .unwrap();
        clf.fit(&data()).unwrap();
        let imp = clf.feature_importances().unwrap();
        assert_eq!(imp.len(), 4);
        assert!((imp.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        assert!(imp.iter().all(|&v| v >= 0.0));
    }

    #[test]
    fn feature_importances_unavailable_when_all_projected_or_unapproximated() {
        let mut clf = Suod::builder()
            .base_estimators(small_pool())
            .with_approximation(false)
            .seed(2)
            .build()
            .unwrap();
        clf.fit(&data()).unwrap();
        assert!(matches!(
            clf.feature_importances().unwrap_err(),
            Error::InvalidConfig(_)
        ));
    }

    #[test]
    fn predict_proba_bounded_and_ordered() {
        let clf = fitted(Suod::builder());
        let x = data();
        let p = clf.predict_proba(&x).unwrap();
        assert!(p.iter().all(|&v| (0.0..=1.0).contains(&v)));
        // Probabilities preserve the combined-score ordering.
        let c = clf.combined_scores(&x).unwrap();
        let order_p = suod_linalg::rank::argsort_desc(&p);
        let order_c = suod_linalg::rank::argsort_desc(&c);
        assert_eq!(order_p[0], order_c[0]);
        // Planted outliers sit near probability 1.
        assert!(p[60] > 0.8 || p[61] > 0.8, "{} {}", p[60], p[61]);
    }

    #[test]
    fn training_combined_scores_match_threshold() {
        let clf = fitted(Suod::builder().contamination(0.1));
        let train = clf.training_combined_scores().unwrap();
        let threshold = clf.threshold().unwrap();
        let flagged = train.iter().filter(|&&s| s >= threshold).count();
        // Threshold was chosen so ~10% of training rows flag.
        let expected = (train.len() as f64 * 0.1).round() as usize;
        assert!(flagged.abs_diff(expected) <= 2, "{flagged} vs {expected}");
    }

    #[test]
    fn neighbor_cache_bit_identical_and_counted() {
        // Three Euclidean proximity models on the unprojected space share
        // one neighbour graph: one miss (the k=7 builder) + two hits.
        let pool = vec![
            ModelSpec::Knn {
                n_neighbors: 5,
                method: KnnMethod::Largest,
            },
            ModelSpec::Lof {
                n_neighbors: 7,
                metric: DistanceMetric::Euclidean,
            },
            ModelSpec::Abod { n_neighbors: 4 },
        ];
        let x = data();
        let run = |cache_on: bool| {
            let mut clf = Suod::builder()
                .base_estimators(pool.clone())
                .with_projection(false)
                .with_approximation(false)
                .with_neighbor_cache(cache_on)
                .seed(1)
                .build()
                .unwrap();
            clf.fit(&x).unwrap();
            let exec = clf.diagnostics().unwrap().execution();
            let counters = (exec.cache_hits, exec.cache_misses);
            (
                clf.training_scores().unwrap(),
                clf.decision_function(&x).unwrap(),
                counters,
            )
        };
        let (ts_on, df_on, (hits, misses)) = run(true);
        let (ts_off, df_off, (hits_off, misses_off)) = run(false);
        assert_eq!(ts_on.as_slice(), ts_off.as_slice());
        assert_eq!(df_on.as_slice(), df_off.as_slice());
        assert_eq!((hits, misses), (2, 1));
        assert_eq!((hits_off, misses_off), (0, 0));
    }

    #[test]
    fn empty_data_rejected() {
        let mut clf = Suod::builder()
            .base_estimators(small_pool())
            .build()
            .unwrap();
        assert!(clf.fit(&Matrix::zeros(0, 3)).is_err());
    }

    #[test]
    fn non_finite_training_data_rejected_typed() {
        let mut x = data();
        x.set(5, 2, f64::NAN);
        let mut clf = Suod::builder()
            .base_estimators(small_pool())
            .build()
            .unwrap();
        assert!(matches!(
            clf.fit(&x).unwrap_err(),
            Error::Detector(suod_detectors::Error::NonFiniteInput("fit"))
        ));
    }

    #[test]
    fn non_finite_query_rejected_typed() {
        let clf = fitted(Suod::builder());
        let mut q = Matrix::zeros(2, 4);
        q.set(1, 3, f64::INFINITY);
        assert!(matches!(
            clf.decision_function(&q).unwrap_err(),
            Error::Detector(suod_detectors::Error::NonFiniteInput(_))
        ));
    }

    #[test]
    fn panicking_model_quarantined_survivors_serve() {
        use suod_detectors::ChaosMode;
        let mut pool = small_pool();
        pool.push(ModelSpec::Chaos {
            mode: ChaosMode::PanicOnFit,
            n_neighbors: 5,
        });
        let mut clf = Suod::builder()
            .base_estimators(pool)
            .min_healthy_fraction(0.5)
            .seed(3)
            .build()
            .unwrap();
        clf.fit(&data()).unwrap();
        let diag = clf.diagnostics().unwrap();
        let health = diag.health();
        assert_eq!(health.quarantined_indices(), vec![4]);
        let report = health.report(4).unwrap();
        assert!(matches!(
            report.cause,
            Some(suod_detectors::Error::Panicked(_))
        ));
        // One retry (the default) before quarantine.
        assert_eq!(report.attempts, 2);
        assert_eq!(diag.execution().retries, 1);
        // The joined per-model row agrees with the health report.
        let row = diag.model(4).unwrap();
        assert_eq!(row.status, ModelStatus::Quarantined);
        assert_eq!(row.attempts, 2);
        assert!(row.fit_time.is_none());
        // Survivors carry prediction: the score matrix has 4 columns.
        let x = data();
        assert_eq!(clf.decision_function(&x).unwrap().shape(), (62, 4));
        assert_eq!(clf.predict(&x).unwrap().len(), 62);
    }

    #[test]
    fn nan_scoring_model_quarantined_with_degenerate_cause() {
        use suod_detectors::ChaosMode;
        let mut pool = small_pool();
        pool.push(ModelSpec::Chaos {
            mode: ChaosMode::NanScores,
            n_neighbors: 5,
        });
        let mut clf = Suod::builder()
            .base_estimators(pool)
            .min_healthy_fraction(0.5)
            .seed(3)
            .build()
            .unwrap();
        clf.fit(&data()).unwrap();
        let health = clf.diagnostics().unwrap().health();
        assert_eq!(health.quarantined_indices(), vec![4]);
        assert!(matches!(
            health.report(4).unwrap().cause,
            Some(suod_detectors::Error::DegenerateData(_))
        ));
    }

    #[test]
    fn degraded_pool_returns_typed_error_with_health() {
        use suod_detectors::ChaosMode;
        // Default min_healthy_fraction = 1.0: one permanent failure fails
        // the fit, but the health report survives.
        let pool = vec![
            ModelSpec::Chaos {
                mode: ChaosMode::PanicOnFit,
                n_neighbors: 5,
            },
            ModelSpec::Hbos {
                n_bins: 10,
                tolerance: 0.3,
            },
        ];
        let mut clf = Suod::builder().base_estimators(pool).build().unwrap();
        let err = clf.fit(&data()).unwrap_err();
        assert!(matches!(
            err,
            Error::PoolDegraded {
                healthy: 1,
                total: 2,
                required: 2,
                ..
            }
        ));
        assert!(!clf.is_fitted());
        let diag = clf.diagnostics().unwrap();
        assert_eq!(diag.health().healthy(), 1);
        assert_eq!(diag.health().quarantined_indices(), vec![0]);
        assert_eq!(diag.model(0).unwrap().status, ModelStatus::Quarantined);
    }

    #[test]
    fn quarantine_does_not_change_survivor_scores() {
        use suod_detectors::ChaosMode;
        // Projection and approximation off: survivor columns must be
        // bit-identical with and without the chaos member, because
        // survivors keep their original pool indices and seeds.
        let x = data();
        let mut clean = Suod::builder()
            .base_estimators(small_pool())
            .with_projection(false)
            .with_approximation(false)
            .seed(9)
            .build()
            .unwrap();
        clean.fit(&x).unwrap();
        let mut pool = small_pool();
        pool.push(ModelSpec::Chaos {
            mode: ChaosMode::PanicOnFit,
            n_neighbors: 5,
        });
        let mut chaotic = Suod::builder()
            .base_estimators(pool)
            .with_projection(false)
            .with_approximation(false)
            .min_healthy_fraction(0.5)
            .seed(9)
            .build()
            .unwrap();
        chaotic.fit(&x).unwrap();
        let a = clean.decision_function(&x).unwrap();
        let b = chaotic.decision_function(&x).unwrap();
        assert_eq!(a.as_slice(), b.as_slice());
    }

    #[test]
    fn fault_tolerance_builder_validation() {
        assert!(Suod::builder()
            .base_estimators(small_pool())
            .min_healthy_fraction(0.0)
            .build()
            .is_err());
        assert!(Suod::builder()
            .base_estimators(small_pool())
            .min_healthy_fraction(1.5)
            .build()
            .is_err());
        assert!(Suod::builder()
            .base_estimators(small_pool())
            .straggler_factor(0.5)
            .build()
            .is_err());
        assert!(Suod::builder()
            .base_estimators(small_pool())
            .straggler_factor(f64::NAN)
            .build()
            .is_err());
    }

    #[test]
    fn observed_fit_trace_reconciles_with_diagnostics() {
        use suod_observe::RecordingObserver;
        let recorder = Arc::new(RecordingObserver::new());
        let mut clf = Suod::builder()
            .base_estimators(small_pool())
            .n_workers(2)
            .observer(recorder.clone())
            .seed(3)
            .build()
            .unwrap();
        let x = data();
        clf.fit(&x).unwrap();
        clf.decision_function(&x).unwrap();
        let trace = recorder.trace();
        assert_eq!(trace.spans_of(Stage::Fit).count(), 1);
        assert_eq!(trace.spans_of(Stage::ModelFit).count(), 4);
        assert_eq!(trace.spans_of(Stage::NeighborPlan).count(), 1);
        assert_eq!(trace.spans_of(Stage::BpsPlan).count(), 1);
        assert_eq!(trace.spans_of(Stage::Threshold).count(), 1);
        assert_eq!(trace.spans_of(Stage::Predict).count(), 1);
        assert!(trace.spans_of(Stage::PredictChunk).count() > 0);
        // Fit tasks and predict tasks both run through the executor.
        assert!(trace.spans_of(Stage::ExecutorTask).count() >= 4);
        let exec = clf.diagnostics().unwrap().execution();
        assert_eq!(trace.counter(Counter::CacheHit), exec.cache_hits);
        assert_eq!(trace.counter(Counter::CacheMiss), exec.cache_misses);
        assert_eq!(trace.counter(Counter::Retry), exec.retries as u64);
        assert_eq!(trace.counter(Counter::Quarantine), 0);
    }

    #[test]
    fn observed_fit_scores_bit_identical_to_unobserved() {
        use suod_observe::RecordingObserver;
        let x = data();
        let run = |observed: bool| {
            let mut builder = Suod::builder()
                .base_estimators(small_pool())
                .n_workers(2)
                .seed(11);
            if observed {
                builder = builder.observer(Arc::new(RecordingObserver::new()));
            }
            let mut clf = builder.build().unwrap();
            clf.fit(&x).unwrap();
            (
                clf.training_scores().unwrap(),
                clf.decision_function(&x).unwrap(),
            )
        };
        let (ts_on, df_on) = run(true);
        let (ts_off, df_off) = run(false);
        assert_eq!(ts_on.as_slice(), ts_off.as_slice());
        assert_eq!(df_on.as_slice(), df_off.as_slice());
    }

    #[test]
    fn observed_prediction_reports_per_model_times() {
        use suod_observe::RecordingObserver;
        let clf = fitted(Suod::builder());
        let x = data();
        let recorder = Arc::new(RecordingObserver::new());
        let observer: Arc<dyn Observer> = recorder.clone();
        let (scores, report) = clf.decision_function_observed(&x, &observer).unwrap();
        assert_eq!(scores.shape(), (62, 4));
        assert_eq!(report.model_times.len(), 4);
        assert_eq!(report.n_rows, 62);
        assert!(report.fully_healthy());
        assert_eq!(report.healthy_models(), 4);
        assert!(report.failures.is_empty());
        assert!(report.skipped.is_empty());
        // 62 rows fit in one chunk, so one predict task per model.
        assert_eq!(report.execution.task_times.len(), 4);
        assert_eq!(report.execution.failures, 0);
        let trace = recorder.trace();
        assert_eq!(trace.spans_of(Stage::Predict).count(), 1);
        assert_eq!(trace.spans_of(Stage::PredictChunk).count(), 4);
        // The observed path and the plain path share one engine; scores
        // match bit for bit.
        let parallel = clf.decision_function(&x).unwrap();
        assert_eq!(scores.as_slice(), parallel.as_slice());
    }

    #[test]
    fn degraded_fit_records_quarantine_counter() {
        use suod_detectors::ChaosMode;
        use suod_observe::RecordingObserver;
        let recorder = Arc::new(RecordingObserver::new());
        let pool = vec![
            ModelSpec::Chaos {
                mode: ChaosMode::PanicOnFit,
                n_neighbors: 5,
            },
            ModelSpec::Hbos {
                n_bins: 10,
                tolerance: 0.3,
            },
        ];
        let mut clf = Suod::builder()
            .base_estimators(pool)
            .observer(recorder.clone())
            .build()
            .unwrap();
        assert!(clf.fit(&data()).is_err());
        let trace = recorder.trace();
        assert_eq!(trace.counter(Counter::Quarantine), 1);
        // Initial attempt + one retry, both closed despite the panics.
        assert_eq!(trace.spans_of(Stage::ModelFit).count(), 2);
        assert_eq!(trace.spans_of(Stage::ModelRetry).count(), 1);
        assert_eq!(
            trace.counter(Counter::TaskFailure),
            clf.diagnostics().unwrap().execution().failures as u64
        );
    }

    #[test]
    fn salted_seed_identity_on_first_attempt() {
        assert_eq!(salted_seed(42, 0), 42);
        assert_ne!(salted_seed(42, 1), 42);
        // The odd salt flips the low bit, so parity-sensitive transient
        // failures (ChaosMode::FlakyPanic) resolve on retry.
        assert_ne!(salted_seed(42, 1) % 2, 42 % 2);
    }

    /// Pool with one model that fits cleanly but faults at predict time.
    fn chaotic_pool(mode: suod_detectors::ChaosMode) -> Vec<ModelSpec> {
        let mut pool = small_pool();
        pool.push(ModelSpec::Chaos {
            mode,
            n_neighbors: 5,
        });
        pool
    }

    #[test]
    fn predict_panic_becomes_nan_column_not_error() {
        use suod_detectors::ChaosMode;
        let mut clf = Suod::builder()
            .base_estimators(chaotic_pool(ChaosMode::PanicOnPredict))
            .seed(3)
            .build()
            .unwrap();
        clf.fit(&data()).unwrap();
        let x = data();
        // Satellite fix: the call survives; the chaotic column is NaN.
        let scores = clf.decision_function(&x).unwrap();
        assert_eq!(scores.shape(), (62, 5));
        for r in 0..62 {
            assert!(scores.get(r, 4).is_nan());
            for c in 0..4 {
                assert!(scores.get(r, c).is_finite());
            }
        }
        let observer: Arc<dyn Observer> = suod_observe::noop();
        let (_, report) = clf.decision_function_observed(&x, &observer).unwrap();
        assert_eq!(report.failures.len(), 1);
        assert_eq!(report.failures[0].index, 4);
        assert_eq!(report.failures[0].name, "chaos");
        assert!(matches!(
            report.failures[0].cause,
            suod_detectors::Error::Panicked(_)
        ));
        assert_eq!(report.healthy_models(), 4);
        assert!(!report.fully_healthy());
        // The executor's fault-isolation counter reaches the report.
        assert!(report.execution.failures >= 1);
    }

    #[test]
    fn predict_nan_column_skipped_by_combiner_under_relaxed_floor() {
        use suod_detectors::ChaosMode;
        let x = data();
        let mut chaotic = Suod::builder()
            .base_estimators(chaotic_pool(ChaosMode::NanOnPredict))
            .min_healthy_fraction(0.5)
            .seed(3)
            .build()
            .unwrap();
        chaotic.fit(&x).unwrap();
        let combined = chaotic.combined_scores(&x).unwrap();
        // Survivor-only combination: identical to a pool that never
        // contained the chaotic model.
        let healthy = fitted(Suod::builder());
        let expected = healthy.combined_scores(&x).unwrap();
        assert_eq!(combined, expected);
    }

    #[test]
    fn predict_failures_enforce_min_healthy_floor() {
        use suod_detectors::ChaosMode;
        let mut clf = Suod::builder()
            .base_estimators(chaotic_pool(ChaosMode::PanicOnPredict))
            .seed(3)
            .build()
            .unwrap();
        clf.fit(&data()).unwrap();
        // Default min_healthy_fraction = 1.0: one predict failure is one
        // too many for the combined score to be trusted.
        match clf.combined_scores(&data()) {
            Err(Error::PoolDegraded {
                healthy,
                total,
                required,
                ..
            }) => {
                assert_eq!(healthy, 4);
                assert_eq!(total, 5);
                assert_eq!(required, 5);
            }
            other => panic!("expected PoolDegraded, got {other:?}"),
        }
        // The raw score matrix stays available for forensics.
        assert!(clf.decision_function(&data()).is_ok());
    }

    #[test]
    fn masked_models_get_nan_columns_and_no_work() {
        let clf = fitted(Suod::builder());
        let x = data();
        let observer: Arc<dyn Observer> = suod_observe::noop();
        let (scores, report) = clf
            .decision_function_masked(&x, &[true, false, true, true], &observer)
            .unwrap();
        assert_eq!(report.skipped, vec![1]);
        assert!(report.failures.is_empty());
        assert_eq!(report.healthy_models(), 3);
        assert_eq!(report.model_times[1], Duration::ZERO);
        // 3 active models x 1 chunk: the masked model never ran.
        assert_eq!(report.execution.task_times.len(), 3);
        for r in 0..62 {
            assert!(scores.get(r, 1).is_nan());
        }
        // Active columns match the unmasked pass bit for bit.
        let full = clf.decision_function(&x).unwrap();
        for r in 0..62 {
            for c in [0usize, 2, 3] {
                assert_eq!(scores.get(r, c).to_bits(), full.get(r, c).to_bits());
            }
        }
        // Mask length must match the surviving ensemble.
        assert!(clf
            .decision_function_masked(&x, &[true, false], &observer)
            .is_err());
    }

    #[test]
    fn serve_accessors_describe_fitted_state() {
        let clf = fitted(Suod::builder());
        assert_eq!(clf.n_features().unwrap(), 4);
        assert_eq!(clf.train_rows().unwrap(), 62);
        let models = clf.surviving_models().unwrap();
        assert_eq!(models.len(), 4);
        assert_eq!(models[0], (0, "knn"));
        assert_eq!(models[2], (2, "hbos"));
        let costs = clf.predict_unit_costs().unwrap();
        assert_eq!(costs.len(), 4);
        assert!(costs.iter().all(|&c| c > 0.0));
        // Approximated models (kNN, LOF) carry the nominal cost 1.0.
        assert_eq!(costs[0], 1.0);
        assert_eq!(costs[1], 1.0);
        // combine_score_matrix reproduces combined_scores from the raw
        // matrix without a second prediction pass.
        let x = data();
        let scores = clf.decision_function(&x).unwrap();
        assert_eq!(
            clf.combine_score_matrix(&scores).unwrap(),
            clf.combined_scores(&x).unwrap()
        );
        assert!(clf.combine_score_matrix(&Matrix::zeros(3, 2)).is_err());
    }
}
