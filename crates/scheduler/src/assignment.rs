//! Task-to-worker assignment strategies.
//!
//! * [`generic_schedule`] — the joblib/scikit-learn baseline: split the
//!   model list into `t` contiguous, equally sized chunks **in the given
//!   order**. With grouped heterogeneous pools (e.g. all kNNs first) one
//!   chunk becomes the straggler.
//! * [`shuffled_schedule`] — the heuristic the paper mentions and
//!   dismisses: randomize order first, then chunk.
//! * [`bps_schedule`] — SUOD's Balanced Parallel Scheduling: convert
//!   predicted costs to discounted ranks `1 + alpha * rank / m`, then
//!   assign greedily (largest first, to the currently lightest worker) so
//!   per-worker rank sums approach the ideal `(m^2 + m) / (2 t * m) *
//!   alpha`-discounted average — the greedy LPT solution to Eq. 2.

use crate::{Error, Result};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use suod_linalg::rank::ordinal_ranks;

/// A task-to-worker assignment: `groups[w]` lists the task indices run by
/// worker `w`, in execution order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Assignment {
    groups: Vec<Vec<usize>>,
}

impl Assignment {
    /// Creates an assignment from explicit groups.
    ///
    /// # Errors
    ///
    /// Returns [`Error::BadAssignment`] when groups repeat or skip task
    /// indices (they must partition `0..total`).
    pub fn new(groups: Vec<Vec<usize>>) -> Result<Self> {
        let total: usize = groups.iter().map(|g| g.len()).sum();
        let mut seen = vec![false; total];
        for g in &groups {
            for &i in g {
                if i >= total || seen[i] {
                    return Err(Error::BadAssignment(format!(
                        "task index {i} repeated or out of range (total {total})"
                    )));
                }
                seen[i] = true;
            }
        }
        Ok(Self { groups })
    }

    /// Worker groups.
    pub fn groups(&self) -> &[Vec<usize>] {
        &self.groups
    }

    /// Number of workers.
    pub fn n_workers(&self) -> usize {
        self.groups.len()
    }

    /// Total number of tasks.
    pub fn n_tasks(&self) -> usize {
        self.groups.iter().map(|g| g.len()).sum()
    }

    /// Per-worker cost sums under a given cost vector.
    ///
    /// # Errors
    ///
    /// Returns [`Error::BadAssignment`] when `costs` is shorter than the
    /// largest task index.
    pub fn worker_loads(&self, costs: &[f64]) -> Result<Vec<f64>> {
        if costs.len() != self.n_tasks() {
            return Err(Error::BadAssignment(format!(
                "cost vector has {} entries for {} tasks",
                costs.len(),
                self.n_tasks()
            )));
        }
        Ok(self
            .groups
            .iter()
            .map(|g| g.iter().map(|&i| costs[i]).sum())
            .collect())
    }

    /// The paper's Eq. 2 objective: sum of absolute deviations of worker
    /// loads from the mean load.
    ///
    /// # Errors
    ///
    /// Same as [`worker_loads`](Self::worker_loads).
    pub fn imbalance(&self, costs: &[f64]) -> Result<f64> {
        let loads = self.worker_loads(costs)?;
        let mean = suod_linalg::stats::mean(&loads);
        Ok(loads.iter().map(|l| (l - mean).abs()).sum())
    }
}

fn check_workers(m: usize, t: usize) -> Result<()> {
    if t == 0 {
        return Err(Error::InvalidParameter("need at least 1 worker".into()));
    }
    if m == 0 {
        return Err(Error::InvalidParameter("need at least 1 task".into()));
    }
    Ok(())
}

/// Contiguous equal-count chunking in list order (the generic baseline).
///
/// # Errors
///
/// Returns [`Error::InvalidParameter`] when `m == 0` or `t == 0`.
pub fn generic_schedule(m: usize, t: usize) -> Result<Assignment> {
    check_workers(m, t)?;
    let t = t.min(m);
    let base = m / t;
    let extra = m % t;
    let mut groups = Vec::with_capacity(t);
    let mut start = 0;
    for w in 0..t {
        let len = base + usize::from(w < extra);
        groups.push((start..start + len).collect());
        start += len;
    }
    Assignment::new(groups)
}

/// Random-order chunking: shuffle task indices, then chunk contiguously.
///
/// # Errors
///
/// Returns [`Error::InvalidParameter`] when `m == 0` or `t == 0`.
pub fn shuffled_schedule(m: usize, t: usize, seed: u64) -> Result<Assignment> {
    check_workers(m, t)?;
    let t = t.min(m);
    let mut order: Vec<usize> = (0..m).collect();
    let mut rng = StdRng::seed_from_u64(seed);
    for i in (1..m).rev() {
        let j = rng.random_range(0..=i);
        order.swap(i, j);
    }
    let base = m / t;
    let extra = m % t;
    let mut groups = Vec::with_capacity(t);
    let mut start = 0;
    for w in 0..t {
        let len = base + usize::from(w < extra);
        groups.push(order[start..start + len].to_vec());
        start += len;
    }
    Assignment::new(groups)
}

/// Balanced Parallel Scheduling over forecasted costs (paper §3.5).
///
/// `alpha` is the rank-discount strength (paper default 1): rank `f` of
/// `m` becomes weight `1 + alpha * f / m`, so the heaviest model weighs at
/// most `(1 + alpha) / 1` times the lightest — preventing the raw rank sum
/// from over-penalizing high ranks whose true costs are not `f` times
/// larger.
///
/// # Errors
///
/// Returns [`Error::InvalidParameter`] when inputs are empty, `t == 0`,
/// `alpha < 0`, or costs contain non-finite values.
pub fn bps_schedule(costs: &[f64], t: usize, alpha: f64) -> Result<Assignment> {
    check_workers(costs.len(), t)?;
    if alpha.is_nan() || alpha < 0.0 {
        return Err(Error::InvalidParameter(format!(
            "alpha must be >= 0, got {alpha}"
        )));
    }
    if costs.iter().any(|c| !c.is_finite()) {
        return Err(Error::InvalidParameter(
            "costs must be finite for ranking".into(),
        ));
    }
    let m = costs.len();
    let t = t.min(m);
    let ranks = ordinal_ranks(costs);
    let weights: Vec<f64> = ranks
        .iter()
        .map(|&r| 1.0 + alpha * r as f64 / m as f64)
        .collect();

    // Greedy LPT on discounted ranks: heaviest first onto the lightest
    // worker; ties broken by worker index for determinism.
    let mut order: Vec<usize> = (0..m).collect();
    order.sort_by(|&a, &b| {
        weights[b]
            .partial_cmp(&weights[a])
            .expect("finite weights")
            .then(a.cmp(&b))
    });
    let mut groups: Vec<Vec<usize>> = vec![Vec::new(); t];
    let mut loads = vec![0.0f64; t];
    for &task in &order {
        let w = (0..t)
            .min_by(|&a, &b| {
                loads[a]
                    .partial_cmp(&loads[b])
                    .expect("finite")
                    .then(a.cmp(&b))
            })
            .expect("t >= 1");
        groups[w].push(task);
        loads[w] += weights[task];
    }
    Assignment::new(groups)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generic_chunks_in_order() {
        let a = generic_schedule(10, 3).unwrap();
        assert_eq!(a.groups()[0], vec![0, 1, 2, 3]);
        assert_eq!(a.groups()[1], vec![4, 5, 6]);
        assert_eq!(a.groups()[2], vec![7, 8, 9]);
    }

    #[test]
    fn generic_more_workers_than_tasks() {
        let a = generic_schedule(2, 8).unwrap();
        assert_eq!(a.n_workers(), 2);
        assert_eq!(a.n_tasks(), 2);
    }

    #[test]
    fn shuffled_partitions_all_tasks() {
        let a = shuffled_schedule(20, 4, 7).unwrap();
        assert_eq!(a.n_tasks(), 20);
        let mut all: Vec<usize> = a.groups().iter().flatten().copied().collect();
        all.sort_unstable();
        assert_eq!(all, (0..20).collect::<Vec<_>>());
        // Deterministic per seed.
        assert_eq!(a, shuffled_schedule(20, 4, 7).unwrap());
        assert_ne!(a, shuffled_schedule(20, 4, 8).unwrap());
    }

    #[test]
    fn bps_beats_generic_on_grouped_costs() {
        // The paper's motivating example: heavy models listed first.
        let costs: Vec<f64> = (0..8).map(|i| if i < 4 { 10.0 } else { 1.0 }).collect();
        let generic = generic_schedule(8, 2).unwrap();
        let bps = bps_schedule(&costs, 2, 1.0).unwrap();
        assert!(bps.imbalance(&costs).unwrap() < generic.imbalance(&costs).unwrap());
        let bps_loads = bps.worker_loads(&costs).unwrap();
        assert!((bps_loads[0] - bps_loads[1]).abs() <= 2.0, "{bps_loads:?}");
    }

    #[test]
    fn bps_balances_rank_sums() {
        // Distinct costs 1..=12, 3 workers: discounted-rank sums should be
        // near equal.
        let costs: Vec<f64> = (1..=12).map(|i| i as f64).collect();
        let a = bps_schedule(&costs, 3, 1.0).unwrap();
        let ranks = ordinal_ranks(&costs);
        let weights: Vec<f64> = ranks.iter().map(|&r| 1.0 + r as f64 / 12.0).collect();
        let loads = a.worker_loads(&weights).unwrap();
        let spread = suod_linalg::stats::max(&loads) - suod_linalg::stats::min(&loads);
        assert!(spread < 0.6, "loads {loads:?}");
    }

    #[test]
    fn bps_deterministic() {
        let costs = [3.0, 1.0, 4.0, 1.5, 9.0, 2.0];
        assert_eq!(
            bps_schedule(&costs, 2, 1.0).unwrap(),
            bps_schedule(&costs, 2, 1.0).unwrap()
        );
    }

    #[test]
    fn alpha_zero_means_count_balancing() {
        // With alpha = 0 all weights are 1: groups sizes differ by <= 1.
        let costs = [5.0, 4.0, 3.0, 2.0, 1.0];
        let a = bps_schedule(&costs, 2, 0.0).unwrap();
        let sizes: Vec<usize> = a.groups().iter().map(|g| g.len()).collect();
        assert!(sizes.iter().max().unwrap() - sizes.iter().min().unwrap() <= 1);
    }

    #[test]
    fn assignment_validation() {
        assert!(Assignment::new(vec![vec![0, 0]]).is_err());
        assert!(Assignment::new(vec![vec![0], vec![2]]).is_err());
        assert!(Assignment::new(vec![vec![1], vec![0]]).is_ok());
        let a = Assignment::new(vec![vec![0], vec![1]]).unwrap();
        assert!(a.worker_loads(&[1.0]).is_err());
    }

    #[test]
    fn parameter_validation() {
        assert!(generic_schedule(0, 2).is_err());
        assert!(generic_schedule(5, 0).is_err());
        assert!(bps_schedule(&[], 2, 1.0).is_err());
        assert!(bps_schedule(&[1.0], 0, 1.0).is_err());
        assert!(bps_schedule(&[1.0], 1, -1.0).is_err());
        assert!(bps_schedule(&[f64::NAN], 1, 1.0).is_err());
    }

    #[test]
    fn imbalance_zero_when_perfectly_split() {
        let a = Assignment::new(vec![vec![0, 3], vec![1, 2]]).unwrap();
        let costs = [4.0, 3.0, 1.0, 0.0];
        assert_eq!(a.imbalance(&costs).unwrap(), 0.0);
    }
}
