//! Random feature selection — the paper's `RS` baseline.
//!
//! Selects `k` of the original `d` features uniformly at random, the
//! subspace rule used by Feature Bagging (Lazarevic & Kumar 2005) and
//! LSCP. Unlike JL projections, RS discards the information in the
//! unselected coordinates entirely, which is why Table 1 shows it losing
//! accuracy on datasets whose signal is spread across features.

use crate::{check_target_dim, Error, Projector, Result};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use suod_linalg::Matrix;

/// Random feature-subset projector.
///
/// # Example
///
/// ```
/// use suod_linalg::Matrix;
/// use suod_projection::{Projector, RandomSelectProjector};
///
/// # fn main() -> Result<(), suod_projection::Error> {
/// let x = Matrix::from_rows(&[vec![1.0, 2.0, 3.0, 4.0]]).unwrap();
/// let mut rs = RandomSelectProjector::new(2, 7)?;
/// rs.fit(&x)?;
/// let z = rs.transform(&x)?;
/// assert_eq!(z.shape(), (1, 2));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct RandomSelectProjector {
    k: usize,
    seed: u64,
    selected: Option<Vec<usize>>,
    input_dim: usize,
}

impl RandomSelectProjector {
    /// Creates a projector selecting `k` random features.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidParameter`] when `k == 0`.
    pub fn new(k: usize, seed: u64) -> Result<Self> {
        if k == 0 {
            return Err(Error::InvalidParameter(
                "target dimension must be >= 1".into(),
            ));
        }
        Ok(Self {
            k,
            seed,
            selected: None,
            input_dim: 0,
        })
    }

    /// The selected feature indices (sorted), after `fit`.
    ///
    /// # Errors
    ///
    /// Returns [`Error::NotFitted`] before `fit`.
    pub fn selected_features(&self) -> Result<&[usize]> {
        self.selected
            .as_deref()
            .ok_or(Error::NotFitted("RandomSelectProjector"))
    }
}

impl Projector for RandomSelectProjector {
    fn fit(&mut self, x: &Matrix) -> Result<()> {
        let d = x.ncols();
        check_target_dim(self.k, d)?;
        let mut rng = StdRng::seed_from_u64(self.seed);
        let mut pool: Vec<usize> = (0..d).collect();
        for i in 0..self.k {
            let j = rng.random_range(i..d);
            pool.swap(i, j);
        }
        pool.truncate(self.k);
        pool.sort_unstable();
        self.selected = Some(pool);
        self.input_dim = d;
        Ok(())
    }

    fn transform(&self, x: &Matrix) -> Result<Matrix> {
        let selected = self
            .selected
            .as_ref()
            .ok_or(Error::NotFitted("RandomSelectProjector"))?;
        if x.ncols() != self.input_dim {
            return Err(Error::DimensionMismatch {
                expected: self.input_dim,
                actual: x.ncols(),
            });
        }
        Ok(x.select_cols(selected))
    }

    fn output_dim(&self) -> usize {
        self.k
    }

    fn name(&self) -> &'static str {
        "rs"
    }

    fn snapshot_write(&self, w: &mut suod_linalg::SnapshotWriter) -> Result<()> {
        w.write_usize(self.k);
        w.write_u64(self.seed);
        match &self.selected {
            Some(s) => {
                w.write_bool(true);
                w.write_usizes(s);
            }
            None => w.write_bool(false),
        }
        w.write_usize(self.input_dim);
        Ok(())
    }
}

impl RandomSelectProjector {
    /// Reads a projector written by [`Projector::snapshot_write`].
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidParameter`] on truncated or malformed state.
    pub fn snapshot_read(r: &mut suod_linalg::SnapshotReader<'_>) -> Result<Self> {
        let k = r.read_usize()?;
        let seed = r.read_u64()?;
        let selected = if r.read_bool()? {
            Some(r.read_usizes()?)
        } else {
            None
        };
        Ok(Self {
            k,
            seed,
            selected,
            input_dim: r.read_usize()?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn data() -> Matrix {
        Matrix::from_rows(&[vec![1.0, 2.0, 3.0, 4.0], vec![5.0, 6.0, 7.0, 8.0]]).unwrap()
    }

    #[test]
    fn selects_k_distinct_sorted_features() {
        let mut rs = RandomSelectProjector::new(3, 0).unwrap();
        rs.fit(&data()).unwrap();
        let sel = rs.selected_features().unwrap();
        assert_eq!(sel.len(), 3);
        assert!(sel.windows(2).all(|w| w[0] < w[1]));
        assert!(sel.iter().all(|&i| i < 4));
    }

    #[test]
    fn transform_extracts_columns() {
        let mut rs = RandomSelectProjector::new(2, 1).unwrap();
        rs.fit(&data()).unwrap();
        let sel = rs.selected_features().unwrap().to_vec();
        let z = rs.transform(&data()).unwrap();
        for (out_c, &in_c) in sel.iter().enumerate() {
            assert_eq!(z.col(out_c), data().col(in_c));
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let mut a = RandomSelectProjector::new(2, 5).unwrap();
        let mut b = RandomSelectProjector::new(2, 5).unwrap();
        a.fit(&data()).unwrap();
        b.fit(&data()).unwrap();
        assert_eq!(
            a.selected_features().unwrap(),
            b.selected_features().unwrap()
        );
    }

    #[test]
    fn k_equals_d_keeps_everything() {
        let mut rs = RandomSelectProjector::new(4, 0).unwrap();
        rs.fit(&data()).unwrap();
        assert_eq!(rs.transform(&data()).unwrap(), data());
    }

    #[test]
    fn validates_inputs() {
        assert!(RandomSelectProjector::new(0, 0).is_err());
        let mut rs = RandomSelectProjector::new(5, 0).unwrap();
        assert!(rs.fit(&data()).is_err()); // k > d
        let rs2 = RandomSelectProjector::new(2, 0).unwrap();
        assert!(rs2.transform(&data()).is_err()); // not fitted
        let mut rs3 = RandomSelectProjector::new(2, 0).unwrap();
        rs3.fit(&data()).unwrap();
        assert!(rs3.transform(&Matrix::zeros(1, 3)).is_err());
    }
}
