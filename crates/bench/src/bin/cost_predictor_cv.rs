//! §3.5 reproduction: cost-predictor cross-validation.
//!
//! The paper trains the model-cost predictor `C_cost` on measured timings
//! across algorithm families and datasets and reports Spearman rank
//! correlation consistently above 0.9 under 10-fold CV. This binary:
//!
//! 1. measures real fit timings of the family grid over a sweep of
//!    dataset shapes (a timing corpus);
//! 2. runs k-fold CV of the random-forest cost predictor on that corpus;
//! 3. reports per-fold Spearman correlation between predicted and true
//!    costs, plus the analytic model's correlation as a baseline.
//!
//! Flags: `--quick`, `--paper-scale`.

use std::time::Instant;
use suod::prelude::*;
use suod_bench::{mean, CsvSink, Scale};
use suod_datasets::synthetic::{generate, SyntheticConfig};
use suod_metrics::spearman;
use suod_scheduler::cost::CostSample;
use suod_scheduler::{AnalyticCostModel, CostModel, DatasetMeta, ForestCostPredictor};

fn family_grid() -> Vec<ModelSpec> {
    vec![
        ModelSpec::Knn {
            n_neighbors: 10,
            method: KnnMethod::Largest,
        },
        ModelSpec::Knn {
            n_neighbors: 40,
            method: KnnMethod::Mean,
        },
        ModelSpec::Lof {
            n_neighbors: 10,
            metric: Metric::Euclidean,
        },
        ModelSpec::Lof {
            n_neighbors: 40,
            metric: Metric::Manhattan,
        },
        ModelSpec::Abod { n_neighbors: 10 },
        ModelSpec::Abod { n_neighbors: 30 },
        ModelSpec::Hbos {
            n_bins: 10,
            tolerance: 0.3,
        },
        ModelSpec::Hbos {
            n_bins: 50,
            tolerance: 0.3,
        },
        ModelSpec::IForest {
            n_estimators: 30,
            max_features: 0.8,
        },
        ModelSpec::IForest {
            n_estimators: 100,
            max_features: 0.5,
        },
        ModelSpec::Cblof { n_clusters: 4 },
        ModelSpec::Cblof { n_clusters: 12 },
        ModelSpec::FeatureBagging { n_estimators: 5 },
        ModelSpec::Loop { n_neighbors: 15 },
        ModelSpec::Ocsvm {
            nu: 0.3,
            kernel: Kernel::Rbf { gamma: 0.0 },
        },
    ]
}

fn main() {
    let scale = Scale::from_args();
    let sizes: Vec<(usize, usize)> = scale.pick(
        vec![(200, 8), (400, 8)],
        vec![
            (200, 8),
            (400, 16),
            (600, 24),
            (800, 8),
            (800, 32),
            (1200, 12),
            (1600, 16),
        ],
        vec![
            (500, 8),
            (1000, 16),
            (2000, 8),
            (2000, 32),
            (4000, 16),
            (4000, 64),
            (8000, 32),
        ],
    );
    let n_folds = scale.pick(3usize, 5, 10);
    // The paper's C_cost targets are the *sum over 10 trials* — repeated
    // measurement averages out sub-millisecond timer noise.
    let timing_trials = scale.pick(1usize, 3, 10);
    let mut csv = CsvSink::create(
        "cost_predictor_cv",
        "fold,spearman_forest,spearman_analytic",
    );

    // 1. Timing corpus over shape x family.
    println!(
        "building timing corpus ({} shapes x {} specs)...",
        sizes.len(),
        family_grid().len()
    );
    let mut samples: Vec<CostSample> = Vec::new();
    for (si, &(n, d)) in sizes.iter().enumerate() {
        let ds = generate(&SyntheticConfig {
            n_samples: n,
            n_features: d,
            contamination: 0.1,
            seed: 100 + si as u64,
            ..Default::default()
        })
        .expect("valid synthetic config");
        let meta = DatasetMeta::extract(&ds.x);
        for (mi, spec) in family_grid().iter().enumerate() {
            let mut seconds = 0.0;
            for trial in 0..timing_trials {
                let mut det = spec
                    .build(mi as u64 + 1000 * trial as u64)
                    .expect("valid spec");
                let start = Instant::now();
                det.fit(&ds.x).expect("detector fit");
                seconds += start.elapsed().as_secs_f64();
            }
            samples.push(CostSample {
                task: spec.task_descriptor(),
                meta,
                seconds: seconds.max(1e-7),
            });
        }
    }
    println!("corpus: {} timing samples", samples.len());

    // 2. k-fold CV (round-robin folds keep shape/family mix balanced).
    let analytic = AnalyticCostModel::new();
    let mut forest_rhos = Vec::new();
    let mut analytic_rhos = Vec::new();
    println!(
        "\n{:<6} {:>16} {:>18}",
        "fold", "Spearman forest", "Spearman analytic"
    );
    for fold in 0..n_folds {
        let train: Vec<CostSample> = samples
            .iter()
            .enumerate()
            .filter(|(i, _)| i % n_folds != fold)
            .map(|(_, s)| *s)
            .collect();
        let test: Vec<CostSample> = samples
            .iter()
            .enumerate()
            .filter(|(i, _)| i % n_folds == fold)
            .map(|(_, s)| *s)
            .collect();

        let mut predictor = ForestCostPredictor::new(60, fold as u64);
        predictor.fit(&train).expect("non-empty corpus");

        let truth: Vec<f64> = test.iter().map(|s| s.seconds).collect();
        let pred_forest: Vec<f64> = test
            .iter()
            .map(|s| predictor.predict_cost(&s.task, &s.meta))
            .collect();
        let pred_analytic: Vec<f64> = test
            .iter()
            .map(|s| analytic.predict_cost(&s.task, &s.meta))
            .collect();

        let rho_f = spearman(&truth, &pred_forest).unwrap_or(0.0);
        let rho_a = spearman(&truth, &pred_analytic).unwrap_or(0.0);
        println!("{fold:<6} {rho_f:>16.3} {rho_a:>18.3}");
        csv.row(&format!("{fold},{rho_f:.4},{rho_a:.4}"));
        forest_rhos.push(rho_f);
        analytic_rhos.push(rho_a);
    }
    println!(
        "\nmean Spearman: forest {:.3}, analytic {:.3}",
        mean(&forest_rhos),
        mean(&analytic_rhos)
    );
    println!("wrote {}", csv.path().display());
    println!("(the paper reports r_s > 0.9 in all folds for the learned predictor)");
}
