//! The serving network front end: threaded accept, keep-alive
//! connections, and the `suod-wire/1` + text protocols over TCP.
//!
//! PR 8/9 built a deterministic [`ScoreService`]; the network edge in
//! front of it was still a single-threaded accept loop speaking a
//! one-request-per-connection text protocol — one slow client
//! head-of-line-blocked every other client, an idle client stalled the
//! server forever, and a transient accept error took the listener down.
//! This module replaces that edge:
//!
//! * **Threaded accept** — [`serve_front`] runs a bounded pool of
//!   connection workers fed by the accept loop through a bounded
//!   hand-off queue. A full queue rejects the connection instead of
//!   growing without bound; a transient accept failure (ECONNABORTED,
//!   EMFILE, ...) is logged, counted, backed off, and survived.
//! * **Keep-alive + pipelining** — a binary-protocol client sends many
//!   framed requests over one socket; the worker drains whatever frames
//!   are already buffered (up to [`FrontConfig::max_pipeline`]), admits
//!   them **in arrival order**, then writes responses back in the same
//!   order. Scores cross as raw little-endian `f64` bits.
//! * **Timeouts everywhere** — an idle socket is closed after
//!   [`FrontConfig::idle_timeout`]; mid-frame reads and all writes get
//!   their own shorter budgets.
//! * **Admission lanes** — before `submit`, every request passes the
//!   per-client quota and priority-lane gates of
//!   [`AdmissionLanes`]; rejections are
//!   answered `busy(quota)` / `busy(lane)` without touching the service
//!   queue.
//! * **Protocol auto-detection** — the first bytes of a connection pick
//!   the path: the `b"SWIR"` magic enters the binary keep-alive loop,
//!   anything else is served one text CSV request (the debug path,
//!   same grammar the CLI spoke before this module existed).
//!
//! The front end is policy *around* the service, never inside it: batch
//! composition, shedding, and quarantine remain pure functions of the
//! arrival trace at the `ScoreService` boundary, so the chaos
//! determinism suites hold unchanged behind this edge.

use std::collections::VecDeque;
use std::io::{self, BufRead, BufReader, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Duration;

use suod_observe::{span, Counter, Observer, SpanAttrs, Stage};

use crate::lanes::{AdmissionLanes, LaneConfig, QuotaGuard};
use crate::service::{lock_ignore_poison, ScoreOutcome, ScoreService, SubmitError, Ticket};
use crate::wire::{
    read_request, write_response, BusyReason, Lane, WireError, WireResponse, WIRE_MAGIC,
};
use crate::{Error, Result};

/// Knobs for the network front end.
#[derive(Debug, Clone)]
pub struct FrontConfig {
    /// Connection workers. Each owns one connection at a time, so this
    /// bounds concurrently-served sockets.
    pub worker_threads: usize,
    /// Accepted connections that may wait for a free worker. Beyond
    /// this the acceptor closes the socket immediately (`conn_rejected`)
    /// rather than queueing without bound.
    pub max_pending_conns: usize,
    /// How long a keep-alive connection may sit idle between requests
    /// (or a fresh connection may wait before its first byte) before
    /// the server closes it.
    pub idle_timeout: Duration,
    /// Budget for reads *inside* a frame or text request — a client
    /// that stalls mid-payload is cut off long before `idle_timeout`.
    pub read_timeout: Duration,
    /// Budget for writing any response.
    pub write_timeout: Duration,
    /// Most requests one connection may have in flight at once; frames
    /// beyond this wait buffered in the socket until responses drain.
    pub max_pipeline: usize,
    /// Pre-`submit` admission gates (per-client quotas, priority
    /// lanes).
    pub lanes: LaneConfig,
    /// Pause after a failed `accept` before retrying, so an EMFILE
    /// storm spins the CPU at a bounded rate.
    pub accept_backoff: Duration,
    /// Consecutive accept failures tolerated before the front end gives
    /// up and reports the listener dead.
    pub max_accept_failures: usize,
    /// Stop after this many accepted connections (`0` = serve until the
    /// listener dies). Existing CLI semantics, load-bearing for tests.
    pub max_conns: usize,
}

impl Default for FrontConfig {
    fn default() -> Self {
        FrontConfig {
            worker_threads: 4,
            max_pending_conns: 64,
            idle_timeout: Duration::from_secs(30),
            read_timeout: Duration::from_secs(5),
            write_timeout: Duration::from_secs(5),
            max_pipeline: 32,
            lanes: LaneConfig::default(),
            accept_backoff: Duration::from_millis(20),
            max_accept_failures: 64,
            max_conns: 0,
        }
    }
}

impl FrontConfig {
    fn validate(&self) -> Result<()> {
        if self.worker_threads == 0 {
            return Err(Error::Config("worker_threads must be >= 1".into()));
        }
        if self.max_pending_conns == 0 {
            return Err(Error::Config("max_pending_conns must be >= 1".into()));
        }
        if self.max_pipeline == 0 {
            return Err(Error::Config("max_pipeline must be >= 1".into()));
        }
        if self.idle_timeout.is_zero() || self.read_timeout.is_zero() {
            return Err(Error::Config("timeouts must be non-zero".into()));
        }
        self.lanes.validate().map_err(Error::Config)?;
        Ok(())
    }
}

/// What the front end did over one [`serve_front`] run.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FrontReport {
    /// TCP connections accepted (including later-rejected ones).
    pub conns_accepted: u64,
    /// Connections closed unserved because the hand-off queue was full.
    pub conns_rejected: u64,
    /// Connections closed by the idle timeout.
    pub conns_idle_closed: u64,
    /// Accept-loop failures survived via log + backoff.
    pub accept_retries: u64,
    /// Binary `suod-wire/1` requests decoded.
    pub wire_requests: u64,
    /// Text-protocol (debug path) requests served.
    pub text_requests: u64,
    /// Responses answered with scores.
    pub responses_ok: u64,
    /// Responses answered `busy` because the service queue was full.
    pub busy_queue: u64,
    /// Responses answered `busy` by the per-client quota gate.
    pub busy_quota: u64,
    /// Responses answered `busy` by the priority-lane gate.
    pub busy_lane: u64,
    /// Responses answered `shed` (deadline expired at assembly).
    pub responses_shed: u64,
    /// Responses answered `error`.
    pub responses_error: u64,
}

impl std::fmt::Display for FrontReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "front: {} connections ({} rejected, {} idle-closed, {} accept retries), \
             {} wire + {} text requests ({} ok, {} busy [queue {} / quota {} / lane {}], \
             {} shed, {} error)",
            self.conns_accepted,
            self.conns_rejected,
            self.conns_idle_closed,
            self.accept_retries,
            self.wire_requests,
            self.text_requests,
            self.responses_ok,
            self.busy_queue + self.busy_quota + self.busy_lane,
            self.busy_queue,
            self.busy_quota,
            self.busy_lane,
            self.responses_shed,
            self.responses_error,
        )
    }
}

/// Shared lock-free tallies the workers update as they serve.
#[derive(Default)]
struct FrontStats {
    conns_accepted: AtomicU64,
    conns_rejected: AtomicU64,
    conns_idle_closed: AtomicU64,
    accept_retries: AtomicU64,
    wire_requests: AtomicU64,
    text_requests: AtomicU64,
    responses_ok: AtomicU64,
    busy_queue: AtomicU64,
    busy_quota: AtomicU64,
    busy_lane: AtomicU64,
    responses_shed: AtomicU64,
    responses_error: AtomicU64,
}

impl FrontStats {
    fn snapshot(&self) -> FrontReport {
        let get = |a: &AtomicU64| a.load(Ordering::Relaxed);
        FrontReport {
            conns_accepted: get(&self.conns_accepted),
            conns_rejected: get(&self.conns_rejected),
            conns_idle_closed: get(&self.conns_idle_closed),
            accept_retries: get(&self.accept_retries),
            wire_requests: get(&self.wire_requests),
            text_requests: get(&self.text_requests),
            responses_ok: get(&self.responses_ok),
            busy_queue: get(&self.busy_queue),
            busy_quota: get(&self.busy_quota),
            busy_lane: get(&self.busy_lane),
            responses_shed: get(&self.responses_shed),
            responses_error: get(&self.responses_error),
        }
    }
}

/// Bounded accept→worker hand-off queue.
struct Handoff {
    queue: Mutex<HandoffState>,
    ready: Condvar,
}

struct HandoffState {
    conns: VecDeque<TcpStream>,
    closed: bool,
}

impl Handoff {
    fn new() -> Self {
        Handoff {
            queue: Mutex::new(HandoffState {
                conns: VecDeque::new(),
                closed: false,
            }),
            ready: Condvar::new(),
        }
    }

    /// `false` when the queue is at capacity (caller rejects the
    /// connection).
    fn push(&self, stream: TcpStream, cap: usize) -> bool {
        let mut state = lock_ignore_poison(&self.queue);
        if state.conns.len() >= cap {
            return false;
        }
        state.conns.push_back(stream);
        drop(state);
        self.ready.notify_one();
        true
    }

    /// Blocks for the next connection; `None` once closed and drained.
    fn pop(&self) -> Option<TcpStream> {
        let mut state = lock_ignore_poison(&self.queue);
        loop {
            if let Some(stream) = state.conns.pop_front() {
                return Some(stream);
            }
            if state.closed {
                return None;
            }
            state = self
                .ready
                .wait(state)
                .unwrap_or_else(|poison| poison.into_inner());
        }
    }

    fn close(&self) {
        lock_ignore_poison(&self.queue).closed = true;
        self.ready.notify_all();
    }
}

/// Runs the front end on `listener` until [`FrontConfig::max_conns`]
/// connections have been accepted (or forever when `0`), serving every
/// connection through `service`. Blocks the calling thread; worker
/// threads are scoped inside the call.
///
/// # Errors
///
/// [`Error::Config`] for invalid knobs; [`Error::Front`] only when
/// `accept` fails [`FrontConfig::max_accept_failures`] times in a row —
/// transient failures are logged, counted (`accept_retry`), backed off,
/// and survived.
pub fn serve_front(
    listener: &TcpListener,
    service: &ScoreService,
    config: &FrontConfig,
    observer: &Arc<dyn Observer>,
) -> Result<FrontReport> {
    config.validate()?;
    let lanes = AdmissionLanes::new(config.lanes.clone()).map_err(Error::Config)?;
    let stats = FrontStats::default();
    let handoff = Handoff::new();

    let mut accept_error: Option<String> = None;
    std::thread::scope(|scope| {
        for worker in 0..config.worker_threads {
            let handoff = &handoff;
            let stats = &stats;
            let lanes = &lanes;
            std::thread::Builder::new()
                .name(format!("suod-front-{worker}"))
                .spawn_scoped(scope, move || {
                    while let Some(stream) = handoff.pop() {
                        let _conn_span = span(&**observer, Stage::Connection, SpanAttrs::none());
                        // Per-connection I/O failures mean the client
                        // went away; they never take a worker down.
                        let _ = serve_connection(stream, service, config, lanes, observer, stats);
                    }
                })
                .expect("spawn front worker");
        }

        let mut accepted = 0usize;
        let mut consecutive_failures = 0usize;
        for conn in listener.incoming() {
            match conn {
                Ok(stream) => {
                    consecutive_failures = 0;
                    accepted += 1;
                    stats.conns_accepted.fetch_add(1, Ordering::Relaxed);
                    observer.counter(Counter::ConnAccepted, 1);
                    if !handoff.push(stream, config.max_pending_conns) {
                        // Dropping the stream closes it; the client sees
                        // a reset instead of an unbounded queue.
                        stats.conns_rejected.fetch_add(1, Ordering::Relaxed);
                        observer.counter(Counter::ConnRejected, 1);
                    }
                    if config.max_conns > 0 && accepted >= config.max_conns {
                        break;
                    }
                }
                Err(e) => {
                    // Transient accept failures (ECONNABORTED from a
                    // client racing its own connect, EMFILE under fd
                    // pressure) must not kill the listener: log, count,
                    // back off, keep accepting.
                    consecutive_failures += 1;
                    stats.accept_retries.fetch_add(1, Ordering::Relaxed);
                    observer.counter(Counter::AcceptRetry, 1);
                    eprintln!(
                        "suod-serve: accept failed ({e}); retry {consecutive_failures}/{}",
                        config.max_accept_failures
                    );
                    if consecutive_failures >= config.max_accept_failures {
                        accept_error = Some(format!(
                            "accept failed {consecutive_failures} times in a row, last: {e}"
                        ));
                        break;
                    }
                    std::thread::sleep(config.accept_backoff);
                }
            }
        }
        handoff.close();
    });

    match accept_error {
        Some(msg) => Err(Error::Front(msg)),
        None => Ok(stats.snapshot()),
    }
}

/// One admitted-or-refused request awaiting its in-order response.
enum PendingReply<'a> {
    /// Admitted into the service; the quota slot is held until the
    /// response is on the wire.
    Waiting {
        id: u64,
        ticket: Ticket,
        _quota: QuotaGuard,
        _span: suod_observe::SpanGuard<'a>,
    },
    /// Decided at admission (busy/error); nothing in flight.
    Ready(WireResponse),
}

fn serve_connection(
    stream: TcpStream,
    service: &ScoreService,
    config: &FrontConfig,
    lanes: &AdmissionLanes,
    observer: &Arc<dyn Observer>,
    stats: &FrontStats,
) -> io::Result<()> {
    // Keep-alive request/response turnaround must not sit in Nagle's
    // buffer waiting for a delayed ACK.
    let _ = stream.set_nodelay(true);
    stream.set_write_timeout(Some(config.write_timeout))?;
    let client = stream
        .peer_addr()
        .map(|a| a.ip().to_string())
        .unwrap_or_else(|_| "unknown".to_string());
    let mut reader = BufReader::new(stream.try_clone()?);
    let mut writer = stream;

    // Protocol sniff: the first bytes of the connection pick the path.
    // The read runs under the idle timeout, so a client that connects
    // and sends nothing is closed instead of pinning this worker
    // forever.
    writer.set_read_timeout(Some(config.idle_timeout))?;
    let mut prefix = Vec::with_capacity(WIRE_MAGIC.len());
    let mut byte = [0u8; 1];
    while prefix.len() < WIRE_MAGIC.len() {
        match reader.read(&mut byte) {
            Ok(0) => break,
            Ok(_) => prefix.push(byte[0]),
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) if is_timeout(&e) => {
                stats.conns_idle_closed.fetch_add(1, Ordering::Relaxed);
                observer.counter(Counter::ConnIdleClosed, 1);
                return Ok(());
            }
            Err(e) => return Err(e),
        }
    }
    if prefix.is_empty() {
        return Ok(()); // connected and left; clean close
    }
    if prefix == WIRE_MAGIC {
        serve_binary(
            &mut reader,
            &mut writer,
            &client,
            service,
            config,
            lanes,
            observer,
            stats,
        )
    } else {
        serve_text_once(prefix, reader, &mut writer, service, stats)
    }
}

/// The binary keep-alive loop: batches of pipelined frames in, in-order
/// responses out, until the client hangs up or times out idle.
#[allow(clippy::too_many_arguments)]
fn serve_binary(
    reader: &mut BufReader<TcpStream>,
    writer: &mut TcpStream,
    client: &str,
    service: &ScoreService,
    config: &FrontConfig,
    lanes: &AdmissionLanes,
    observer: &Arc<dyn Observer>,
    stats: &FrontStats,
) -> io::Result<()> {
    // The sniff consumed the first frame's magic; replay it in front of
    // the stream for the first decode only.
    let mut replay: &[u8] = WIRE_MAGIC;
    let mut first = true;

    loop {
        // --- Read one batch of pipelined requests -------------------
        // First frame of the batch: block under the idle timeout.
        writer.set_read_timeout(Some(config.idle_timeout))?;
        let head = if first {
            first = false;
            read_request(&mut Read::chain(&mut replay, &mut *reader))
        } else {
            read_request(reader)
        };
        let head = match head {
            Ok(Some(request)) => request,
            Ok(None) => return Ok(()), // clean keep-alive close
            Err(e) if e.is_timeout() => {
                stats.conns_idle_closed.fetch_add(1, Ordering::Relaxed);
                observer.counter(Counter::ConnIdleClosed, 1);
                return Ok(());
            }
            Err(e) => return close_malformed(writer, stats, e),
        };

        // Further frames already sitting in the buffer are decoded now,
        // before any response is written, so a client that pipelines
        // K frames in one write gets deterministic in-order admission.
        // A frame split mid-buffer finishes under the (short) read
        // timeout rather than the idle one.
        writer.set_read_timeout(Some(config.read_timeout))?;
        let mut batch = vec![head];
        while batch.len() < config.max_pipeline && !reader.buffer().is_empty() {
            match read_request(reader) {
                Ok(Some(request)) => batch.push(request),
                Ok(None) => break,
                Err(e) => return close_malformed(writer, stats, e),
            }
        }

        // --- Admit in arrival order ---------------------------------
        let mut pending: Vec<PendingReply<'_>> = Vec::with_capacity(batch.len());
        for request in batch {
            stats.wire_requests.fetch_add(1, Ordering::Relaxed);
            observer.counter(Counter::WireRequests, 1);
            let request_span = span(&**observer, Stage::WireRequest, SpanAttrs::none());
            let gate = lanes.admit(
                client,
                request.lane,
                service.queue_depth(),
                service.queue_capacity(),
            );
            let quota = match gate {
                Ok(guard) => guard,
                Err(reason) => {
                    observer.counter(
                        match reason {
                            BusyReason::Quota => Counter::QuotaRejected,
                            _ => Counter::LaneRejected,
                        },
                        1,
                    );
                    pending.push(PendingReply::Ready(WireResponse::Busy {
                        id: request.id,
                        capacity: service.queue_capacity() as u32,
                        reason,
                    }));
                    continue;
                }
            };
            let submitted = match request.deadline_ms {
                Some(deadline) => service.submit_with_deadline(request.rows, Some(deadline)),
                None => service.submit(request.rows),
            };
            match submitted {
                Ok(ticket) => pending.push(PendingReply::Waiting {
                    id: request.id,
                    ticket,
                    _quota: quota,
                    _span: request_span,
                }),
                Err(SubmitError::Busy { capacity }) => {
                    pending.push(PendingReply::Ready(WireResponse::Busy {
                        id: request.id,
                        capacity: capacity as u32,
                        reason: BusyReason::Queue,
                    }))
                }
                Err(e) => pending.push(PendingReply::Ready(WireResponse::Error {
                    id: request.id,
                    message: e.to_string(),
                })),
            }
        }

        // --- Respond in the same order ------------------------------
        for reply in pending {
            let response = match reply {
                PendingReply::Ready(response) => response,
                PendingReply::Waiting { id, ticket, .. } => match ticket.wait() {
                    ScoreOutcome::Scored(batch) => WireResponse::Ok {
                        id,
                        scores: batch.combined,
                        healthy_models: batch.healthy_models as u32,
                        total_models: batch.total_models as u32,
                        latency_ms: batch.latency_ms,
                    },
                    ScoreOutcome::Shed {
                        waited_ms,
                        deadline_ms,
                    } => WireResponse::Shed {
                        id,
                        waited_ms,
                        deadline_ms,
                    },
                    ScoreOutcome::Failed(message) => WireResponse::Error { id, message },
                },
            };
            count_response(stats, &response);
            write_response(writer, &response)?;
        }
        writer.flush()?;
    }
}

/// Answers a malformed binary stream: best-effort error frame (id 0 —
/// the framing fault means no request id can be trusted), then close.
fn close_malformed(writer: &mut TcpStream, stats: &FrontStats, e: WireError) -> io::Result<()> {
    stats.responses_error.fetch_add(1, Ordering::Relaxed);
    let _ = write_response(
        writer,
        &WireResponse::Error {
            id: 0,
            message: e.to_string(),
        },
    );
    Ok(())
}

fn count_response(stats: &FrontStats, response: &WireResponse) {
    match response {
        WireResponse::Ok { .. } => stats.responses_ok.fetch_add(1, Ordering::Relaxed),
        WireResponse::Busy { reason, .. } => match reason {
            BusyReason::Queue => stats.busy_queue.fetch_add(1, Ordering::Relaxed),
            BusyReason::Quota => stats.busy_quota.fetch_add(1, Ordering::Relaxed),
            BusyReason::Lane => stats.busy_lane.fetch_add(1, Ordering::Relaxed),
        },
        WireResponse::Shed { .. } => stats.responses_shed.fetch_add(1, Ordering::Relaxed),
        WireResponse::Error { .. } => stats.responses_error.fetch_add(1, Ordering::Relaxed),
    };
}

/// The text CSV protocol, unchanged from the original CLI edge and kept
/// as the human-debuggable path: comma-separated f64 rows, blank line
/// (or EOF) to finish, one request per connection. `prefix` holds the
/// bytes the protocol sniff consumed.
///
/// `f64` `Display` round-trips, so even this path is bit-exact — it
/// just pays formatting, parsing, and a TCP handshake per request,
/// which is exactly what `BENCH_wire.json` quantifies against the
/// binary protocol.
fn serve_text_once(
    prefix: Vec<u8>,
    reader: BufReader<TcpStream>,
    writer: &mut TcpStream,
    service: &ScoreService,
    stats: &FrontStats,
) -> io::Result<()> {
    stats.text_requests.fetch_add(1, Ordering::Relaxed);
    let mut reader = BufReader::new(Read::chain(io::Cursor::new(prefix), reader));
    let mut rows: Vec<Vec<f64>> = Vec::new();
    let mut line = String::new();
    loop {
        line.clear();
        match reader.read_line(&mut line) {
            Ok(0) => break,
            Ok(_) if line.trim().is_empty() => break,
            Ok(_) => {}
            Err(e) if is_timeout(&e) => {
                stats.conns_idle_closed.fetch_add(1, Ordering::Relaxed);
                return Ok(());
            }
            Err(e) => return Err(e),
        }
        let parsed: std::result::Result<Vec<f64>, _> = line
            .trim()
            .split(',')
            .map(|cell| cell.trim().parse::<f64>())
            .collect();
        match parsed {
            Ok(row) => rows.push(row),
            Err(e) => {
                stats.responses_error.fetch_add(1, Ordering::Relaxed);
                writeln!(writer, "error cannot parse row {}: {e}", rows.len())?;
                return Ok(());
            }
        }
    }
    let query = match suod_linalg::Matrix::from_rows(&rows) {
        Ok(m) => m,
        Err(e) => {
            stats.responses_error.fetch_add(1, Ordering::Relaxed);
            writeln!(writer, "error {e}")?;
            return Ok(());
        }
    };
    let ticket = match service.submit(query) {
        Ok(t) => t,
        Err(SubmitError::Busy { .. }) => {
            stats.busy_queue.fetch_add(1, Ordering::Relaxed);
            writeln!(writer, "busy")?;
            return Ok(());
        }
        Err(e) => {
            stats.responses_error.fetch_add(1, Ordering::Relaxed);
            writeln!(writer, "error {e}")?;
            return Ok(());
        }
    };
    match ticket.wait() {
        ScoreOutcome::Scored(batch) => {
            stats.responses_ok.fetch_add(1, Ordering::Relaxed);
            writeln!(writer, "ok {}", batch.combined.len())?;
            for s in &batch.combined {
                // f64 Display round-trips, so scores cross the wire
                // bit-identically (just slowly).
                writeln!(writer, "{s}")?;
            }
        }
        ScoreOutcome::Shed {
            waited_ms,
            deadline_ms,
        } => {
            stats.responses_shed.fetch_add(1, Ordering::Relaxed);
            writeln!(
                writer,
                "shed waited_ms={waited_ms} deadline_ms={deadline_ms}"
            )?;
        }
        ScoreOutcome::Failed(msg) => {
            stats.responses_error.fetch_add(1, Ordering::Relaxed);
            writeln!(writer, "error {msg}")?;
        }
    }
    writer.flush()
}

fn is_timeout(e: &io::Error) -> bool {
    matches!(
        e.kind(),
        io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
    )
}

// ---------------------------------------------------------------------
// Clients
// ---------------------------------------------------------------------

/// A keep-alive `suod-wire/1` client: one socket, many requests.
///
/// [`score`](Self::score) is the simple call-response form;
/// [`submit`](Self::submit) + [`read_response`](Self::read_response)
/// pipeline several frames before draining replies.
pub struct WireClient {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
    next_id: u64,
}

impl WireClient {
    /// Connects to a `serve --listen` front end.
    ///
    /// # Errors
    ///
    /// Propagates connect/clone failures.
    pub fn connect(addr: &str) -> io::Result<Self> {
        let stream = TcpStream::connect(addr)?;
        let _ = stream.set_nodelay(true);
        Ok(WireClient {
            reader: BufReader::new(stream.try_clone()?),
            writer: stream,
            next_id: 1,
        })
    }

    /// Sets the client-side read timeout (how long to wait for a
    /// response before giving up).
    ///
    /// # Errors
    ///
    /// Propagates the socket-option failure.
    pub fn set_read_timeout(&self, timeout: Option<Duration>) -> io::Result<()> {
        self.writer.set_read_timeout(timeout)
    }

    /// Writes one request frame without waiting for the reply; returns
    /// the request id to match against [`read_response`](Self::read_response).
    ///
    /// # Errors
    ///
    /// Propagates stream write failures.
    pub fn submit(
        &mut self,
        rows: &suod_linalg::Matrix,
        lane: Lane,
        deadline_ms: Option<u64>,
    ) -> io::Result<u64> {
        let id = self.next_id;
        self.next_id += 1;
        crate::wire::write_request(
            &mut self.writer,
            &crate::wire::WireRequest {
                id,
                lane,
                deadline_ms,
                rows: rows.clone(),
            },
        )?;
        self.writer.flush()?;
        Ok(id)
    }

    /// Reads the next response frame. `Ok(None)` when the server closed
    /// the connection cleanly.
    ///
    /// # Errors
    ///
    /// See [`read_request`] for the conditions.
    pub fn read_response(&mut self) -> std::result::Result<Option<WireResponse>, WireError> {
        crate::wire::read_response(&mut self.reader)
    }

    /// One request, one response (still over the keep-alive socket).
    ///
    /// # Errors
    ///
    /// [`WireError::Io`] / [`WireError::Malformed`] as in
    /// [`read_request`], plus `Malformed` if the server answered a
    /// different request id or hung up mid-exchange.
    pub fn score(
        &mut self,
        rows: &suod_linalg::Matrix,
        lane: Lane,
        deadline_ms: Option<u64>,
    ) -> std::result::Result<WireResponse, WireError> {
        let id = self.submit(rows, lane, deadline_ms)?;
        let response = self
            .read_response()?
            .ok_or_else(|| WireError::Malformed("server closed before responding".into()))?;
        if response.id() != id {
            return Err(WireError::Malformed(format!(
                "response id {} does not match request id {id}",
                response.id()
            )));
        }
        Ok(response)
    }
}

impl std::fmt::Debug for WireClient {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WireClient")
            .field("next_id", &self.next_id)
            .finish_non_exhaustive()
    }
}

/// Client side of the one-shot text protocol (debug path): sends `rows`
/// as CSV lines over a fresh connection and parses the reply.
///
/// # Errors
///
/// Returns a message on connection failure, a `busy` / `shed` /
/// `error` response, or a malformed reply.
pub fn score_rows_text(addr: &str, rows: &[Vec<f64>]) -> std::result::Result<Vec<f64>, String> {
    let stream = TcpStream::connect(addr).map_err(|e| format!("cannot connect to {addr}: {e}"))?;
    let _ = stream.set_nodelay(true);
    let mut writer = stream
        .try_clone()
        .map_err(|e| format!("cannot clone stream: {e}"))?;
    let mut body = String::new();
    for row in rows {
        let cells: Vec<String> = row.iter().map(f64::to_string).collect();
        body.push_str(&cells.join(","));
        body.push('\n');
    }
    body.push('\n'); // blank-line terminator
    writer
        .write_all(body.as_bytes())
        .and_then(|()| writer.flush())
        .map_err(|e| format!("cannot send request: {e}"))?;

    let mut reader = BufReader::new(stream);
    let mut header = String::new();
    reader
        .read_line(&mut header)
        .map_err(|e| format!("cannot read response: {e}"))?;
    let header = header.trim();
    let n: usize = match header.strip_prefix("ok ") {
        Some(count) => count
            .parse()
            .map_err(|_| format!("malformed response header `{header}`"))?,
        None => return Err(format!("server refused request: {header}")),
    };
    let mut scores = Vec::with_capacity(n);
    let mut line = String::new();
    for i in 0..n {
        line.clear();
        reader
            .read_line(&mut line)
            .map_err(|e| format!("cannot read score {i}: {e}"))?;
        scores.push(
            line.trim()
                .parse::<f64>()
                .map_err(|_| format!("malformed score line `{}`", line.trim()))?,
        );
    }
    Ok(scores)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn config_rejects_bad_knobs() {
        for config in [
            FrontConfig {
                worker_threads: 0,
                ..FrontConfig::default()
            },
            FrontConfig {
                max_pending_conns: 0,
                ..FrontConfig::default()
            },
            FrontConfig {
                max_pipeline: 0,
                ..FrontConfig::default()
            },
            FrontConfig {
                idle_timeout: Duration::ZERO,
                ..FrontConfig::default()
            },
            FrontConfig {
                lanes: LaneConfig {
                    per_client_inflight: 0,
                    normal_lane_headroom: 2.0,
                },
                ..FrontConfig::default()
            },
        ] {
            assert!(config.validate().is_err(), "{config:?} should be rejected");
        }
        FrontConfig::default().validate().unwrap();
    }

    #[test]
    fn report_display_summarizes_everything() {
        let report = FrontReport {
            conns_accepted: 5,
            conns_rejected: 1,
            conns_idle_closed: 1,
            accept_retries: 2,
            wire_requests: 10,
            text_requests: 1,
            responses_ok: 8,
            busy_queue: 1,
            busy_quota: 1,
            busy_lane: 1,
            responses_shed: 0,
            responses_error: 0,
        };
        let line = report.to_string();
        assert!(line.contains("5 connections"), "{line}");
        assert!(line.contains("10 wire + 1 text requests"), "{line}");
        assert!(line.contains("busy [queue 1 / quota 1 / lane 1]"), "{line}");
    }

    #[test]
    fn handoff_bounds_and_drains() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let handoff = Handoff::new();
        let a = TcpStream::connect(addr).unwrap();
        let b = TcpStream::connect(addr).unwrap();
        assert!(handoff.push(a, 1));
        assert!(!handoff.push(b, 1), "second push exceeds the bound");
        assert!(handoff.pop().is_some());
        handoff.close();
        assert!(handoff.pop().is_none(), "closed + drained returns None");
    }
}
