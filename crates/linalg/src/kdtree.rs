//! KD-tree for exact k-nearest-neighbour search.
//!
//! Brute-force kNN costs `O(n d)` per query; for the low-dimensional
//! datasets in the paper's benchmark suite (Annthyroid d=6, Shuttle d=9,
//! PageBlock d=10, ...) a KD-tree answers the same queries in roughly
//! `O(log n)` expected time. [`KnnIndex`](crate::distance::KnnIndex)
//! selects this backend automatically when the dimensionality is at or
//! below the configurable crossover
//! ([`KernelConfig::kdtree_crossover_dim`](crate::KernelConfig), default
//! [`DEFAULT_KDTREE_CROSSOVER_DIM`](crate::DEFAULT_KDTREE_CROSSOVER_DIM),
//! tuned from the committed `BENCH_kernels.json` sweep); results are
//! exact and identical to brute force for every supported metric
//! (per-axis distance lower-bounds every Lp distance, so
//! branch-and-bound pruning is safe).

use crate::distance::{DistanceMetric, Neighbor};
use crate::{Error, Matrix, Result};

const LEAF_SIZE: usize = 16;

#[derive(Debug, Clone)]
enum Node {
    Leaf {
        /// Range into `order` holding this leaf's point ids.
        start: usize,
        end: usize,
    },
    Split {
        axis: usize,
        value: f64,
        left: usize,
        right: usize,
    },
}

/// Exact KD-tree over the rows of a matrix.
///
/// # Example
///
/// ```
/// use suod_linalg::kdtree::KdTree;
/// use suod_linalg::{DistanceMetric, Matrix};
///
/// # fn main() -> Result<(), suod_linalg::Error> {
/// let pts = Matrix::from_rows(&[vec![0.0, 0.0], vec![1.0, 0.0], vec![5.0, 5.0]])?;
/// let tree = KdTree::build(&pts, DistanceMetric::Euclidean)?;
/// let nn = tree.query(&[0.9, 0.1], 1);
/// assert_eq!(nn[0].index, 1);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct KdTree {
    points: Matrix,
    metric: DistanceMetric,
    nodes: Vec<Node>,
    /// Point ids, permuted so each leaf owns a contiguous range.
    order: Vec<usize>,
}

impl KdTree {
    /// Builds a tree over the rows of `points`.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Empty`] when `points` has no rows.
    pub fn build(points: &Matrix, metric: DistanceMetric) -> Result<Self> {
        let n = points.nrows();
        if n == 0 {
            return Err(Error::Empty("KdTree::build"));
        }
        let mut tree = Self {
            points: points.clone(),
            metric,
            nodes: Vec::with_capacity(2 * n / LEAF_SIZE + 2),
            order: (0..n).collect(),
        };
        let mut order = std::mem::take(&mut tree.order);
        tree.build_node(&mut order, 0);
        tree.order = order;
        Ok(tree)
    }

    /// Number of indexed points.
    pub fn len(&self) -> usize {
        self.points.nrows()
    }

    /// Always `false` (construction rejects empty inputs).
    pub fn is_empty(&self) -> bool {
        self.points.nrows() == 0
    }

    /// Recursively splits `order[start..]`; returns the node id.
    fn build_node(&mut self, order: &mut [usize], offset: usize) -> usize {
        if order.len() <= LEAF_SIZE {
            let id = self.nodes.len();
            self.nodes.push(Node::Leaf {
                start: offset,
                end: offset + order.len(),
            });
            return id;
        }
        // Split on the widest axis at the median.
        let axis = self.widest_axis(order);
        let mid = order.len() / 2;
        order.select_nth_unstable_by(mid, |&a, &b| {
            self.points
                .get(a, axis)
                .partial_cmp(&self.points.get(b, axis))
                .expect("finite coordinates")
        });
        let value = self.points.get(order[mid], axis);

        let id = self.nodes.len();
        self.nodes.push(Node::Leaf { start: 0, end: 0 }); // placeholder
        let (lo, hi) = order.split_at_mut(mid);
        let left = self.build_node(lo, offset);
        let right = self.build_node(hi, offset + mid);
        self.nodes[id] = Node::Split {
            axis,
            value,
            left,
            right,
        };
        id
    }

    fn widest_axis(&self, order: &[usize]) -> usize {
        let d = self.points.ncols();
        let mut best_axis = 0;
        let mut best_spread = f64::NEG_INFINITY;
        for axis in 0..d {
            let mut lo = f64::INFINITY;
            let mut hi = f64::NEG_INFINITY;
            for &i in order {
                let v = self.points.get(i, axis);
                lo = lo.min(v);
                hi = hi.max(v);
            }
            if hi - lo > best_spread {
                best_spread = hi - lo;
                best_axis = axis;
            }
        }
        best_axis
    }

    /// The `k` nearest neighbours of `query`, sorted by ascending distance
    /// with ties broken by index — bit-identical to brute-force search.
    ///
    /// # Panics
    ///
    /// Panics when `query.len()` differs from the indexed dimensionality.
    pub fn query(&self, query: &[f64], k: usize) -> Vec<Neighbor> {
        assert_eq!(
            query.len(),
            self.points.ncols(),
            "query dimensionality must match the index"
        );
        let k = k.min(self.len());
        if k == 0 {
            return Vec::new();
        }
        let mut best: Vec<Neighbor> = Vec::with_capacity(k + 1);
        self.search(0, query, k, &mut best);
        best
    }

    fn search(&self, node_id: usize, query: &[f64], k: usize, best: &mut Vec<Neighbor>) {
        match self.nodes[node_id] {
            Node::Leaf { start, end } => {
                for &i in &self.order[start..end] {
                    let distance = self.metric.distance(query, self.points.row(i));
                    let candidate = Neighbor { index: i, distance };
                    // Insert in sorted order (distance, then index).
                    let pos = best
                        .binary_search_by(|probe| {
                            probe
                                .distance
                                .partial_cmp(&candidate.distance)
                                .expect("finite distances")
                                .then(probe.index.cmp(&candidate.index))
                        })
                        .unwrap_or_else(|p| p);
                    if pos < k {
                        best.insert(pos, candidate);
                        best.truncate(k);
                    }
                }
            }
            Node::Split {
                axis,
                value,
                left,
                right,
            } => {
                let (near, far) = if query[axis] <= value {
                    (left, right)
                } else {
                    (right, left)
                };
                self.search(near, query, k, best);
                // The per-axis gap lower-bounds every Lp distance, so the
                // far side can only matter when the gap beats our worst.
                let gap = (query[axis] - value).abs();
                let worst = best.last().map_or(f64::INFINITY, |n| n.distance);
                if best.len() < k || gap <= worst {
                    self.search(far, query, k, best);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::distance::KnnIndex;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_points(n: usize, d: usize, seed: u64) -> Matrix {
        let mut rng = StdRng::seed_from_u64(seed);
        let data: Vec<f64> = (0..n * d).map(|_| rng.random_range(-10.0..10.0)).collect();
        Matrix::from_vec(n, d, data).unwrap()
    }

    #[test]
    fn matches_brute_force_exactly() {
        for (n, d) in [(50usize, 2usize), (300, 3), (500, 8)] {
            let pts = random_points(n, d, 42 + n as u64);
            let tree = KdTree::build(&pts, DistanceMetric::Euclidean).unwrap();
            let brute = KnnIndex::build_brute_force(&pts, DistanceMetric::Euclidean).unwrap();
            let queries = random_points(20, d, 7);
            for q in 0..queries.nrows() {
                let a = tree.query(queries.row(q), 5);
                let b = brute.query(queries.row(q), 5);
                assert_eq!(a, b, "n={n} d={d} q={q}");
            }
        }
    }

    #[test]
    fn matches_brute_force_for_all_metrics() {
        let pts = random_points(200, 4, 3);
        let queries = random_points(10, 4, 9);
        for metric in [
            DistanceMetric::Euclidean,
            DistanceMetric::Manhattan,
            DistanceMetric::Minkowski(3.0),
        ] {
            let tree = KdTree::build(&pts, metric).unwrap();
            let brute = KnnIndex::build_brute_force(&pts, metric).unwrap();
            for q in 0..queries.nrows() {
                assert_eq!(
                    tree.query(queries.row(q), 7),
                    brute.query(queries.row(q), 7),
                    "{metric:?}"
                );
            }
        }
    }

    #[test]
    fn k_clamps_and_zero_k() {
        let pts = random_points(10, 2, 0);
        let tree = KdTree::build(&pts, DistanceMetric::Euclidean).unwrap();
        assert_eq!(tree.query(&[0.0, 0.0], 50).len(), 10);
        assert!(tree.query(&[0.0, 0.0], 0).is_empty());
    }

    #[test]
    fn duplicate_points_handled() {
        let mut rows = vec![vec![1.0, 1.0]; 40];
        rows.push(vec![2.0, 2.0]);
        let pts = Matrix::from_rows(&rows).unwrap();
        let tree = KdTree::build(&pts, DistanceMetric::Euclidean).unwrap();
        let nn = tree.query(&[1.0, 1.0], 3);
        assert_eq!(nn.len(), 3);
        assert!(nn.iter().all(|n| n.distance == 0.0));
        // Tie-break by index: the smallest three ids.
        assert_eq!(
            nn.iter().map(|n| n.index).collect::<Vec<_>>(),
            vec![0, 1, 2]
        );
    }

    #[test]
    fn empty_rejected() {
        assert!(KdTree::build(&Matrix::zeros(0, 2), DistanceMetric::Euclidean).is_err());
    }

    #[test]
    fn single_point_tree() {
        let pts = Matrix::from_rows(&[vec![3.0, 4.0]]).unwrap();
        let tree = KdTree::build(&pts, DistanceMetric::Euclidean).unwrap();
        let nn = tree.query(&[0.0, 0.0], 1);
        assert_eq!(nn[0].index, 0);
        assert!((nn[0].distance - 5.0).abs() < 1e-12);
    }
}
