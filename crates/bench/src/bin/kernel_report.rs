//! Distance-kernel backend report: naive vs blocked vs GEMM.
//!
//! Sweeps the pairwise-distance kernels over `(n, d)` in
//! `{2k, 20k} x {8, 32, 128}` for every [`DistanceBackend`], times the
//! batched brute-force kNN fast path, and sweeps the KD-tree-vs-brute
//! crossover dimension that justifies
//! [`suod_linalg::DEFAULT_KDTREE_CROSSOVER_DIM`]. Results go to
//! `BENCH_kernels.json` in the working directory so the perf trajectory
//! is tracked across PRs.
//!
//! Every timing is the minimum of [`REPS`] runs (minimum, not mean — the
//! quantity of interest is achievable speed, not scheduler noise). All
//! timings are single-thread: backend wins here are algorithmic
//! (packing, cache tiling, the norm trick), not parallelism.
//!
//! Flags: `--quick` shrinks problem sizes for smoke runs; `--smoke`
//! times only the 20k x 32 pairwise cell and exits non-zero unless the
//! blocked backend beats naive (the CI regression gate for the tiled
//! kernels).

use std::fmt::Write as _;
use std::time::Instant;
use suod_bench::Scale;
use suod_linalg::{
    pairwise_distances_backend, DistanceBackend, DistanceMetric, KernelConfig, KnnIndex, Matrix,
    DEFAULT_KDTREE_CROSSOVER_DIM,
};

const REPS: usize = 2;
const BACKENDS: &[DistanceBackend] = &[
    DistanceBackend::Naive,
    DistanceBackend::Blocked,
    DistanceBackend::Gemm,
];

fn min_time(mut f: impl FnMut()) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..REPS {
        let start = Instant::now();
        f();
        best = best.min(start.elapsed().as_secs_f64());
    }
    best
}

fn random_matrix(rows: usize, cols: usize, seed: u64) -> Matrix {
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    let mut rng = StdRng::seed_from_u64(seed);
    Matrix::from_vec(
        rows,
        cols,
        (0..rows * cols)
            .map(|_| rng.random_range(-2.0..2.0))
            .collect(),
    )
    .expect("shape consistent")
}

/// Times one pairwise cell for every backend; returns seconds in
/// [`BACKENDS`] order.
fn pairwise_cell(n: usize, d: usize) -> Vec<f64> {
    let a = random_matrix(n, d, n as u64 ^ d as u64);
    BACKENDS
        .iter()
        .map(|&backend| {
            min_time(|| {
                let _ =
                    pairwise_distances_backend(&a, &a, DistanceMetric::Euclidean, backend, 1, None)
                        .expect("shapes agree");
            })
        })
        .collect()
}

fn backend_json(secs: &[f64]) -> String {
    let mut s = String::from("{");
    for (i, (backend, t)) in BACKENDS.iter().zip(secs).enumerate() {
        if i > 0 {
            s.push_str(", ");
        }
        let _ = write!(s, "\"{backend}_s\": {t:.6}");
    }
    let _ = write!(
        s,
        ", \"blocked_speedup\": {:.4}, \"gemm_speedup\": {:.4}}}",
        secs[0] / secs[1],
        secs[0] / secs[2]
    );
    s
}

fn brute_config(backend: DistanceBackend) -> KernelConfig {
    KernelConfig {
        backend,
        kdtree_crossover_dim: 0,
        ..KernelConfig::default()
    }
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let scale = Scale::from_args();
    let host_cores = std::thread::available_parallelism().map_or(1, |p| p.get());

    if args.iter().any(|a| a == "--smoke") {
        // CI gate: the tiled blocked kernel must beat the naive scan on
        // the acceptance cell (20k x 32).
        let (n, d) = (20_000, 32);
        println!("kernel smoke: pairwise {n}x{d}, blocked vs naive");
        let secs = pairwise_cell(n, d);
        let (naive_s, blocked_s, gemm_s) = (secs[0], secs[1], secs[2]);
        println!(
            "naive {naive_s:.3}s  blocked {blocked_s:.3}s ({:.2}x)  gemm {gemm_s:.3}s ({:.2}x)",
            naive_s / blocked_s,
            naive_s / gemm_s
        );
        if blocked_s >= naive_s {
            eprintln!("FAIL: blocked backend no faster than naive");
            std::process::exit(1);
        }
        println!("OK");
        return;
    }

    println!("Distance-kernel backend report (host cores: {host_cores}, single-thread timings)");

    // --- Pairwise sweep. ---------------------------------------------------
    let sizes: &[usize] = &scale.pick(vec![500, 2_000], vec![2_000, 20_000], vec![2_000, 20_000]);
    let dims: &[usize] = &[8, 32, 128];
    let mut pairwise_rows: Vec<String> = Vec::new();
    for &n in sizes {
        for &d in dims {
            let secs = pairwise_cell(n, d);
            println!(
                "pairwise {n:>6}x{d:<4} naive {:>8.3}s  blocked {:>8.3}s ({:>4.2}x)  \
                 gemm {:>8.3}s ({:>4.2}x)",
                secs[0],
                secs[1],
                secs[0] / secs[1],
                secs[2],
                secs[0] / secs[2]
            );
            pairwise_rows.push(format!("\"n{n}_d{d}\": {}", backend_json(&secs)));
        }
    }

    // --- Batched brute-force kNN fast path. --------------------------------
    let (knn_n, knn_q, knn_d, knn_k) = scale.pick(
        (2_000, 200, 32, 10),
        (20_000, 2_000, 32, 10),
        (20_000, 2_000, 32, 10),
    );
    let train = random_matrix(knn_n, knn_d, 21);
    let queries = random_matrix(knn_q, knn_d, 22);
    let knn_secs: Vec<f64> = BACKENDS
        .iter()
        .map(|&backend| {
            let index =
                KnnIndex::build_with(&train, DistanceMetric::Euclidean, brute_config(backend))
                    .expect("non-empty");
            min_time(|| {
                let _ = index
                    .query_batch_parallel(&queries, knn_k, 1)
                    .expect("shapes agree");
            })
        })
        .collect();
    println!(
        "knn_batch {knn_n}tr/{knn_q}q d{knn_d} k{knn_k}  naive {:>8.3}s  blocked {:>8.3}s \
         ({:>4.2}x)  gemm {:>8.3}s ({:>4.2}x)",
        knn_secs[0],
        knn_secs[1],
        knn_secs[0] / knn_secs[1],
        knn_secs[2],
        knn_secs[0] / knn_secs[2]
    );

    // --- KD-tree crossover sweep. ------------------------------------------
    // Tree build + query vs brute-force blocked batch, per dimension: the
    // crossover default is the largest d where the tree still wins.
    let (cx_n, cx_q, cx_k) = scale.pick((2_000, 200, 10), (10_000, 1_000, 10), (10_000, 1_000, 10));
    let mut crossover_rows: Vec<String> = Vec::new();
    for &d in &[4usize, 6, 8, 10, 12, 14, 16] {
        let train = random_matrix(cx_n, d, 31 + d as u64);
        let queries = random_matrix(cx_q, d, 32 + d as u64);
        let tree_cfg = KernelConfig {
            kdtree_crossover_dim: usize::MAX,
            ..KernelConfig::default()
        };
        let tree =
            KnnIndex::build_with(&train, DistanceMetric::Euclidean, tree_cfg).expect("non-empty");
        assert!(tree.uses_kdtree(), "crossover sweep needs a real tree");
        let brute = KnnIndex::build_with(
            &train,
            DistanceMetric::Euclidean,
            brute_config(DistanceBackend::Blocked),
        )
        .expect("non-empty");
        let tree_s = min_time(|| {
            let _ = tree
                .query_batch_parallel(&queries, cx_k, 1)
                .expect("shapes");
        });
        let brute_s = min_time(|| {
            let _ = brute
                .query_batch_parallel(&queries, cx_k, 1)
                .expect("shapes");
        });
        println!(
            "crossover d={d:<3} tree {tree_s:>8.4}s  brute(blocked) {brute_s:>8.4}s  \
             tree_wins={}",
            tree_s < brute_s
        );
        crossover_rows.push(format!(
            "\"{d}\": {{\"tree_s\": {tree_s:.6}, \"brute_s\": {brute_s:.6}}}"
        ));
    }

    // --- Report. -----------------------------------------------------------
    let json = format!(
        "{{\n  \"host_cores\": {host_cores},\n  \"scale\": \"{scale:?}\",\n  \
         \"n_threads\": 1,\n  \"pairwise\": {{\n    {}\n  }},\n  \
         \"knn_batch_n{knn_n}_q{knn_q}_d{knn_d}_k{knn_k}\": {{\"naive_s\": {:.6}, \
         \"blocked_s\": {:.6}, \"gemm_s\": {:.6}}},\n  \
         \"kdtree_crossover_n{cx_n}_q{cx_q}_k{cx_k}\": {{\n    {}\n  }},\n  \
         \"crossover_default\": {DEFAULT_KDTREE_CROSSOVER_DIM}\n}}\n",
        pairwise_rows.join(",\n    "),
        knn_secs[0],
        knn_secs[1],
        knn_secs[2],
        crossover_rows.join(",\n    "),
    );
    std::fs::write("BENCH_kernels.json", &json).expect("write BENCH_kernels.json");
    println!("wrote BENCH_kernels.json");
}
