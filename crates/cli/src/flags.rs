//! Shared flag definitions and parsing for every subcommand.
//!
//! `fit`, `detect`, `trace`, and `serve` all configure the same
//! pipeline, so they share one flag set ([`DetectArgs`]) and one
//! parser; each subcommand layers its own knobs on top. Parsing is
//! hand-rolled (no CLI dependency) and pure — it never
//! touches the filesystem — which keeps every accepted and rejected
//! spelling unit-testable.

use suod::prelude::*;

/// A parsed CLI invocation.
#[derive(Debug, Clone, PartialEq)]
pub enum Command {
    /// Fit an ensemble and write a `suod-pool/1` snapshot.
    Fit(FitArgs),
    /// Fit an ensemble and emit per-sample scores.
    Detect(DetectArgs),
    /// Run an instrumented fit + predict and export the trace.
    Trace(TraceArgs),
    /// Run the fault-tolerant online scoring service (fresh fit or a
    /// `--snapshot`).
    Serve(ServeArgs),
    /// Score rows against a running `serve --listen` server, or locally
    /// against a `--snapshot`.
    Score(ScoreArgs),
    /// Print the registry's dataset table.
    ListDatasets,
    /// Print usage.
    Help,
}

/// Arguments for [`Command::Fit`]: the shared pipeline flags plus the
/// snapshot destination.
#[derive(Debug, Clone, PartialEq)]
pub struct FitArgs {
    /// Pipeline configuration (shared `detect` flags).
    pub detect: DetectArgs,
    /// Where the fitted-pool snapshot is written.
    pub snapshot: String,
}

/// Arguments for [`Command::Serve`]: the pipeline configuration plus the
/// serving knobs. Without `--listen` the command runs a self-contained
/// replay demo — concurrent clients score slices of the dataset's own
/// rows — and prints the per-request outcomes and the service report.
#[derive(Debug, Clone, PartialEq)]
pub struct ServeArgs {
    /// Pipeline configuration (shared `detect` flags).
    pub detect: DetectArgs,
    /// Serve a fitted pool loaded from this snapshot instead of fitting
    /// one from the data source.
    pub snapshot: Option<String>,
    /// Admission queue capacity (`Busy` past this).
    pub queue: usize,
    /// Micro-batch row cap.
    pub batch_rows: usize,
    /// Batch assembly window in milliseconds.
    pub window_ms: u64,
    /// Default per-request deadline budget in milliseconds.
    pub deadline_ms: Option<u64>,
    /// Consecutive predict faults before a model is quarantined.
    pub failure_budget: u32,
    /// Serving floor: minimum healthy fraction of the ensemble.
    pub min_healthy: f64,
    /// Optional saboteur appended to the pool (chaos demo).
    pub chaos: Option<ChaosMode>,
    /// Replay demo: number of concurrent client requests.
    pub requests: usize,
    /// Replay demo: rows per request.
    pub rows_per_request: usize,
    /// TCP address to listen on instead of running the replay demo.
    pub listen: Option<String>,
    /// Listen mode: exit after this many connections (0 = run forever).
    pub max_conns: usize,
    /// Listen mode: connection-worker threads on the front end.
    pub front_workers: usize,
    /// Listen mode: idle timeout in milliseconds before a silent
    /// connection is closed.
    pub idle_timeout_ms: u64,
    /// Listen mode: most pipelined frames one connection may have in
    /// flight at once.
    pub max_pipeline: usize,
    /// Listen mode: per-client in-flight request quota (0 = unlimited).
    pub client_quota: usize,
    /// Listen mode: fraction of the queue the normal lane may fill
    /// before `busy(lane)`; high-lane traffic uses the rest.
    pub lane_headroom: f64,
}

impl Default for ServeArgs {
    fn default() -> Self {
        Self {
            detect: DetectArgs::default(),
            snapshot: None,
            queue: 64,
            batch_rows: 256,
            window_ms: 2,
            deadline_ms: None,
            failure_budget: 3,
            min_healthy: 0.5,
            chaos: None,
            requests: 8,
            rows_per_request: 16,
            listen: None,
            max_conns: 0,
            front_workers: 4,
            idle_timeout_ms: 30_000,
            max_pipeline: 32,
            client_quota: 0,
            lane_headroom: 1.0,
        }
    }
}

/// Wire protocol the `score --connect` client speaks.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum WireFormat {
    /// The `suod-wire/1` binary framing (keep-alive, exact f64 bits).
    #[default]
    Binary,
    /// The line-oriented CSV protocol — debug path; one request per
    /// connection, scores formatted/parsed as text.
    Text,
}

impl WireFormat {
    fn parse(raw: &str) -> Result<Self, String> {
        match raw {
            "binary" => Ok(WireFormat::Binary),
            "text" => Ok(WireFormat::Text),
            other => Err(format!("unknown wire format `{other}` (binary|text)")),
        }
    }
}

/// Arguments for [`Command::Score`]: either the client side of
/// `serve --listen` (`--connect`) or offline scoring against a local
/// snapshot (`--snapshot`).
#[derive(Debug, Clone, PartialEq)]
pub struct ScoreArgs {
    /// Server address, e.g. `127.0.0.1:7878` (remote mode).
    pub connect: Option<String>,
    /// Fitted-pool snapshot to score with locally (offline mode).
    pub snapshot: Option<String>,
    /// CSV of feature rows to score.
    pub csv: Option<String>,
    /// Registry dataset to score (offline mode only).
    pub dataset: Option<String>,
    /// Registry subsampling factor (offline mode only).
    pub scale: f64,
    /// Registry subsampling seed (offline mode only) — pass the seed
    /// the pool was fitted with so `--scale` picks the same rows.
    pub seed: u64,
    /// Label column to strip from the CSV (enables metrics offline).
    pub label_column: Option<usize>,
    /// Optional output CSV path for the returned scores.
    pub output: Option<String>,
    /// Protocol for `--connect` (binary keep-alive vs debug text).
    pub wire: WireFormat,
}

/// Export format for [`Command::Trace`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceFormat {
    /// The stable `suod-trace/1` JSON schema.
    Json,
    /// Chrome `trace_event` format (load in `chrome://tracing` / Perfetto).
    Chrome,
}

/// Arguments for [`Command::Trace`]: the same pipeline configuration as
/// `detect`, plus an export format. `--output` names the trace file
/// instead of a score CSV.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceArgs {
    /// Pipeline configuration (same flags as `detect`).
    pub detect: DetectArgs,
    /// Trace export format.
    pub format: TraceFormat,
}

/// Arguments for [`Command::Detect`] — the pipeline flag set shared by
/// `fit`, `detect`, `trace`, and `serve`.
#[derive(Debug, Clone, PartialEq)]
pub struct DetectArgs {
    /// Registry dataset name (mutually exclusive with `csv`).
    pub dataset: Option<String>,
    /// CSV path (mutually exclusive with `dataset`).
    pub csv: Option<String>,
    /// Label column within the CSV.
    pub label_column: Option<usize>,
    /// Registry subsampling factor.
    pub scale: f64,
    /// Number of random Table B.1 models in the pool.
    pub models: usize,
    /// Module flags.
    pub rp: bool,
    /// Pseudo-supervised approximation flag.
    pub psa: bool,
    /// Balanced scheduling flag.
    pub bps: bool,
    /// Worker count.
    pub workers: usize,
    /// Contamination for the label threshold.
    pub contamination: f64,
    /// Master seed.
    pub seed: u64,
    /// Optional output CSV path for scores.
    pub output: Option<String>,
    /// Brute-force distance backend (naive | blocked | gemm).
    pub backend: DistanceBackend,
    /// Kernel numeric precision (f64 | mixed).
    pub precision: Precision,
    /// Neighbour index backend (exact | hnsw).
    pub neighbor: NeighborBackend,
    /// HNSW search beam width (recall knob); `None` keeps the default.
    pub ef_search: Option<usize>,
}

impl Default for DetectArgs {
    fn default() -> Self {
        Self {
            dataset: None,
            csv: None,
            label_column: None,
            scale: 0.25,
            models: 12,
            rp: true,
            psa: true,
            bps: true,
            workers: 1,
            contamination: 0.1,
            seed: 42,
            output: None,
            backend: KernelConfig::default().backend,
            precision: Precision::default(),
            neighbor: NeighborBackend::default(),
            ef_search: None,
        }
    }
}

impl DetectArgs {
    /// Folds the four kernel flags into the estimator's single
    /// [`KernelConfig`] knob: backend, precision, neighbour backend with
    /// the `--ef-search` override applied.
    pub fn kernel_config(&self) -> KernelConfig {
        let mut neighbor = self.neighbor;
        if let (Some(ef), NeighborBackend::Hnsw(params)) = (self.ef_search, neighbor) {
            neighbor = NeighborBackend::Hnsw(params.with_ef_search(ef));
        }
        KernelConfig::default()
            .with_backend(self.backend)
            .with_precision(self.precision)
            .with_neighbor(neighbor)
    }
}

/// Which subcommand the shared pipeline parser is serving; gates the
/// per-subcommand extras (`--format`, `--snapshot`).
#[derive(Clone, Copy, PartialEq, Eq)]
enum PipelineMode {
    Detect,
    Trace,
    Fit,
}

/// Parses raw arguments (without the program name).
///
/// # Errors
///
/// Returns a human-readable message for unknown flags, missing values,
/// unparsable numbers, or conflicting inputs.
pub fn parse_args(args: &[String]) -> Result<Command, String> {
    let mut it = args.iter().peekable();
    let sub = match it.next() {
        None => return Ok(Command::Help),
        Some(s) => s.as_str(),
    };
    match sub {
        "help" | "--help" | "-h" => Ok(Command::Help),
        "list-datasets" => Ok(Command::ListDatasets),
        "fit" => {
            let (detect, _, snapshot) = parse_pipeline_flags(&mut it, "fit", PipelineMode::Fit)?;
            Ok(Command::Fit(FitArgs {
                detect,
                snapshot: snapshot.ok_or("fit needs --snapshot <path>")?,
            }))
        }
        "detect" => {
            let (d, _, _) = parse_pipeline_flags(&mut it, "detect", PipelineMode::Detect)?;
            Ok(Command::Detect(d))
        }
        "trace" => {
            let (detect, format, _) = parse_pipeline_flags(&mut it, "trace", PipelineMode::Trace)?;
            Ok(Command::Trace(TraceArgs {
                detect,
                format: format.unwrap_or(TraceFormat::Json),
            }))
        }
        "serve" => parse_serve_flags(&mut it).map(Command::Serve),
        "score" => parse_score_flags(&mut it).map(Command::Score),
        other => Err(format!("unknown command `{other}` (see `suod-cli help`)")),
    }
}

fn parse_chaos(raw: &str) -> Result<ChaosMode, String> {
    match raw {
        "panic" => Ok(ChaosMode::PanicOnPredict),
        "nan" => Ok(ChaosMode::NanOnPredict),
        "slow" => Ok(ChaosMode::SlowPredict(25)),
        other => other
            .strip_prefix("slow:")
            .and_then(|ms| ms.parse().ok())
            .map(ChaosMode::SlowPredict)
            .ok_or_else(|| format!("unknown chaos mode `{other}` (panic|nan|slow[:ms])")),
    }
}

fn parse_serve_flags(
    it: &mut std::iter::Peekable<std::slice::Iter<'_, String>>,
) -> Result<ServeArgs, String> {
    let mut s = ServeArgs::default();
    while let Some(flag) = it.next() {
        let mut value = |name: &str| -> Result<String, String> {
            it.next()
                .cloned()
                .ok_or_else(|| format!("flag {name} needs a value"))
        };
        match flag.as_str() {
            "--dataset" => s.detect.dataset = Some(value("--dataset")?),
            "--csv" => s.detect.csv = Some(value("--csv")?),
            "--snapshot" => s.snapshot = Some(value("--snapshot")?),
            "--label-column" => {
                s.detect.label_column = Some(parse_num(&value("--label-column")?, flag)?)
            }
            "--scale" => s.detect.scale = parse_num(&value("--scale")?, flag)?,
            "--models" => s.detect.models = parse_num(&value("--models")?, flag)?,
            "--workers" => s.detect.workers = parse_num(&value("--workers")?, flag)?,
            "--seed" => s.detect.seed = parse_num(&value("--seed")?, flag)?,
            "--no-rp" => s.detect.rp = false,
            "--no-psa" => s.detect.psa = false,
            "--no-bps" => s.detect.bps = false,
            "--queue" => s.queue = parse_num(&value("--queue")?, flag)?,
            "--batch-rows" => s.batch_rows = parse_num(&value("--batch-rows")?, flag)?,
            "--window-ms" => s.window_ms = parse_num(&value("--window-ms")?, flag)?,
            "--deadline-ms" => s.deadline_ms = Some(parse_num(&value("--deadline-ms")?, flag)?),
            "--failure-budget" => s.failure_budget = parse_num(&value("--failure-budget")?, flag)?,
            "--min-healthy" => s.min_healthy = parse_num(&value("--min-healthy")?, flag)?,
            "--chaos" => s.chaos = Some(parse_chaos(&value("--chaos")?)?),
            "--requests" => s.requests = parse_num(&value("--requests")?, flag)?,
            "--rows-per-request" => {
                s.rows_per_request = parse_num(&value("--rows-per-request")?, flag)?
            }
            "--listen" => s.listen = Some(value("--listen")?),
            "--max-conns" => s.max_conns = parse_num(&value("--max-conns")?, flag)?,
            "--front-workers" => s.front_workers = parse_num(&value("--front-workers")?, flag)?,
            "--idle-timeout-ms" => {
                s.idle_timeout_ms = parse_num(&value("--idle-timeout-ms")?, flag)?
            }
            "--max-pipeline" => s.max_pipeline = parse_num(&value("--max-pipeline")?, flag)?,
            "--client-quota" => s.client_quota = parse_num(&value("--client-quota")?, flag)?,
            "--lane-headroom" => s.lane_headroom = parse_num(&value("--lane-headroom")?, flag)?,
            other => return Err(format!("unknown flag `{other}` (see `suod-cli help`)")),
        }
    }
    match (&s.detect.dataset, &s.detect.csv, &s.snapshot) {
        (None, None, None) => {
            Err("serve needs --dataset <name>, --csv <path>, or --snapshot <path>".into())
        }
        (Some(_), Some(_), _) => Err("--dataset and --csv are mutually exclusive".into()),
        // The replay demo scores the dataset's own rows, so a snapshot
        // without a data source only works in listen mode.
        (None, None, Some(_)) if s.listen.is_none() => {
            Err("serve --snapshot without a data source needs --listen \
                 (the replay demo scores dataset rows)"
                .into())
        }
        _ => Ok(s),
    }
}

fn parse_score_flags(
    it: &mut std::iter::Peekable<std::slice::Iter<'_, String>>,
) -> Result<ScoreArgs, String> {
    let mut s = ScoreArgs {
        connect: None,
        snapshot: None,
        csv: None,
        dataset: None,
        scale: 0.25,
        seed: 42,
        label_column: None,
        output: None,
        wire: WireFormat::default(),
    };
    while let Some(flag) = it.next() {
        let mut value = |name: &str| -> Result<String, String> {
            it.next()
                .cloned()
                .ok_or_else(|| format!("flag {name} needs a value"))
        };
        match flag.as_str() {
            "--connect" => s.connect = Some(value("--connect")?),
            "--wire" => s.wire = WireFormat::parse(&value("--wire")?)?,
            "--snapshot" => s.snapshot = Some(value("--snapshot")?),
            "--csv" => s.csv = Some(value("--csv")?),
            "--dataset" => s.dataset = Some(value("--dataset")?),
            "--scale" => s.scale = parse_num(&value("--scale")?, flag)?,
            "--seed" => s.seed = parse_num(&value("--seed")?, flag)?,
            "--label-column" => s.label_column = Some(parse_num(&value("--label-column")?, flag)?),
            "--output" => s.output = Some(value("--output")?),
            other => return Err(format!("unknown flag `{other}` (see `suod-cli help`)")),
        }
    }
    match (&s.connect, &s.snapshot) {
        (None, None) => return Err("score needs --connect <addr> or --snapshot <path>".into()),
        (Some(_), Some(_)) => return Err("--connect and --snapshot are mutually exclusive".into()),
        (Some(_), None) => {
            if s.csv.is_none() {
                return Err("score --connect needs --csv <path>".into());
            }
            if s.dataset.is_some() {
                return Err("--dataset only works with --snapshot (offline mode)".into());
            }
        }
        (None, Some(_)) => match (&s.dataset, &s.csv) {
            (None, None) => {
                return Err("score --snapshot needs --csv <path> or --dataset <name>".into())
            }
            (Some(_), Some(_)) => return Err("--dataset and --csv are mutually exclusive".into()),
            _ => {}
        },
    }
    Ok(s)
}

/// Parses the shared pipeline flag set. `--format` is only accepted in
/// [`PipelineMode::Trace`]; `--snapshot` only in [`PipelineMode::Fit`].
fn parse_pipeline_flags(
    it: &mut std::iter::Peekable<std::slice::Iter<'_, String>>,
    sub: &str,
    mode: PipelineMode,
) -> Result<(DetectArgs, Option<TraceFormat>, Option<String>), String> {
    let mut d = DetectArgs::default();
    let mut format = None;
    let mut snapshot = None;
    while let Some(flag) = it.next() {
        let mut value = |name: &str| -> Result<String, String> {
            it.next()
                .cloned()
                .ok_or_else(|| format!("flag {name} needs a value"))
        };
        match flag.as_str() {
            "--dataset" => d.dataset = Some(value("--dataset")?),
            "--csv" => d.csv = Some(value("--csv")?),
            "--label-column" => d.label_column = Some(parse_num(&value("--label-column")?, flag)?),
            "--scale" => d.scale = parse_num(&value("--scale")?, flag)?,
            "--models" => d.models = parse_num(&value("--models")?, flag)?,
            "--workers" => d.workers = parse_num(&value("--workers")?, flag)?,
            "--contamination" => d.contamination = parse_num(&value("--contamination")?, flag)?,
            "--seed" => d.seed = parse_num(&value("--seed")?, flag)?,
            "--output" => d.output = Some(value("--output")?),
            "--backend" => {
                d.backend =
                    DistanceBackend::parse(&value("--backend")?).map_err(|e| e.to_string())?
            }
            "--precision" => {
                d.precision = Precision::parse(&value("--precision")?).map_err(|e| e.to_string())?
            }
            "--neighbor-backend" => {
                d.neighbor = NeighborBackend::parse(&value("--neighbor-backend")?)
                    .map_err(|e| e.to_string())?
            }
            "--ef-search" => d.ef_search = Some(parse_num(&value("--ef-search")?, flag)?),
            "--no-rp" => d.rp = false,
            "--no-psa" => d.psa = false,
            "--no-bps" => d.bps = false,
            "--format" if mode == PipelineMode::Trace => {
                format = Some(match value("--format")?.as_str() {
                    "json" => TraceFormat::Json,
                    "chrome" => TraceFormat::Chrome,
                    other => return Err(format!("unknown trace format `{other}` (json|chrome)")),
                })
            }
            "--snapshot" if mode == PipelineMode::Fit => snapshot = Some(value("--snapshot")?),
            other => return Err(format!("unknown flag `{other}` (see `suod-cli help`)")),
        }
    }
    match (&d.dataset, &d.csv) {
        (None, None) => Err(format!("{sub} needs --dataset <name> or --csv <path>")),
        (Some(_), Some(_)) => Err("--dataset and --csv are mutually exclusive".into()),
        _ => Ok((d, format, snapshot)),
    }
}

fn parse_num<T: std::str::FromStr>(raw: &str, flag: &str) -> Result<T, String> {
    raw.parse()
        .map_err(|_| format!("cannot parse `{raw}` for {flag}"))
}

/// Usage text.
pub fn usage() -> &'static str {
    "suod-cli — scalable unsupervised heterogeneous outlier detection

USAGE:
  suod-cli fit --dataset <name> --snapshot <path>   fit a pool, write a snapshot
  suod-cli detect --dataset <name> [options]   score a registry analog
  suod-cli detect --csv <path> [options]       score a local CSV file
  suod-cli trace --dataset <name> [options]    export an instrumented run's trace
  suod-cli serve --dataset <name> [options]    run the online scoring service
  suod-cli serve --snapshot <path> --listen <addr>   serve a saved pool
  suod-cli score --connect <addr> --csv <path> score rows against a server
  suod-cli score --snapshot <path> --csv <path>  score rows with a saved pool
  suod-cli list-datasets                       show the benchmark registry
  suod-cli help                                this text

Snapshots use the suod-pool/1 format: versioned, integrity-checked, and
bitwise score-stable across save/load at any worker count.

FIT / DETECT / TRACE OPTIONS:
  --label-column <i>    CSV column holding 0/1 labels (enables ROC/P@N)
  --scale <f>           registry subsample factor in (0, 1]   [0.25]
  --models <m>          random Table B.1 pool size            [12]
  --workers <t>         worker threads                        [1]
  --contamination <c>   expected outlier fraction             [0.1]
  --seed <s>            RNG seed                              [42]
  --output <path>       detect: score CSV; trace: trace file
  --backend <b>         distance backend: naive|blocked|gemm  [blocked]
  --precision <p>       distance kernels: f64|mixed           [f64]
                        mixed = f32 packed storage with f64
                        accumulation (documented error bound)
  --neighbor-backend <b>  kNN index: exact|hnsw               [exact]
                        hnsw = seeded approximate graph (recall
                        >= 0.95 at defaults; small n and
                        non-Euclidean metrics fall back to exact)
  --ef-search <ef>      HNSW search beam width (recall knob)  [64]
  --no-rp | --no-psa | --no-bps   disable a SUOD module

FIT OPTIONS:
  --snapshot <path>     where the fitted-pool snapshot is written

TRACE OPTIONS:
  --format <json|chrome>  export format                       [json]
                          json   = stable suod-trace/1 schema
                          chrome = chrome://tracing / Perfetto

SERVE OPTIONS (plus the shared detect flags above):
  --snapshot <path>     serve this saved pool instead of fitting
  --queue <n>           admission queue capacity              [64]
  --batch-rows <n>      micro-batch row cap                   [256]
  --window-ms <ms>      batch assembly window                 [2]
  --deadline-ms <ms>    default per-request deadline          [none]
  --failure-budget <n>  predict faults before quarantine      [3]
  --min-healthy <f>     serving floor (healthy fraction)      [0.5]
  --chaos <mode>        append a saboteur: panic|nan|slow[:ms]
  --requests <n>        replay demo: concurrent requests      [8]
  --rows-per-request <n>  replay demo: rows per request       [16]
  --listen <addr>       serve over TCP instead of the replay demo
  --max-conns <n>       listen: exit after n connections (0 = forever)
  --front-workers <n>   listen: connection-worker threads        [4]
  --idle-timeout-ms <ms>  listen: close silent connections after  [30000]
  --max-pipeline <n>    listen: in-flight frames per connection  [32]
  --client-quota <n>    listen: per-client in-flight cap (0 = off)
  --lane-headroom <f>   listen: queue fraction open to the normal
                        lane; the rest is high-lane slack        [1.0]

The listener speaks suod-wire/1 (binary, keep-alive, exact f64 bits)
and falls back to the line-oriented text protocol per connection.

SCORE OPTIONS:
  --connect <addr>      server address (serve --listen)
  --wire <binary|text>  protocol for --connect                  [binary]
                        text = debug path, one-shot CSV lines
  --snapshot <path>     score locally with this saved pool
  --csv <path>          feature rows to score
  --dataset <name>      registry rows to score (--snapshot mode)
  --scale <f>           registry subsample factor             [0.25]
  --seed <s>            subsample seed — match the fit seed    [42]
  --label-column <i>    label column (metrics in --snapshot mode)
  --output <path>       write index,score CSV instead of printing
"
}
