//! Seeded, deterministic HNSW approximate-neighbour graph.
//!
//! The exact neighbour sweep behind every proximity detector costs
//! `O(n^2 d)` — GEMM tiles and KD-trees lower the constant, but the
//! quadratic term is the last structural cliff between this codebase and
//! the million-row pools the SUOD paper targets. This module adds the
//! standard alternative: a Hierarchical Navigable Small World graph
//! (Malkov & Yashunin, 2018) built in `O(n log n)` distance evaluations
//! and queried in `O(log n)`, selected per index via
//! [`NeighborBackend::Hnsw`] in the
//! [`KernelConfig`](crate::gemm::KernelConfig) and served through the
//! same [`KnnIndex`](crate::distance::KnnIndex) /
//! [`NeighborCache`](crate::neighbor_cache::NeighborCache) seam as the
//! exact backends — detectors never see the difference.
//!
//! # Determinism contract
//!
//! Unlike typical HNSW implementations (lock-based concurrent inserts,
//! arrival-order-dependent graphs), this one produces a **bit-identical
//! graph and bit-identical query results at every thread count** for a
//! fixed [`HnswParams::seed`]:
//!
//! * **Seeded level assignment.** Node `i`'s level is
//!   `floor(-ln(u_i) / ln(M))` with `u_i` drawn from
//!   `splitmix64(seed, i)` — a pure function of `(seed, i)`, independent
//!   of insertion timing.
//! * **Batched frozen-graph construction.** Insertion proceeds in
//!   batches; each batch's candidate searches read only the graph as it
//!   stood *before* the batch, so they are pure functions that can run
//!   on any number of threads, and edges are then applied sequentially
//!   in ascending node order.
//! * **Total-order tie-breaking.** Every candidate ordering (search
//!   heaps, selection heuristic, pruning) uses the total order
//!   `(distance, index)` — the same order the exact backends use — so
//!   equal distances never leave room for nondeterminism.
//!
//! # Kernel reuse
//!
//! Distance evaluations go through the norm trick
//! (`d^2 = ‖x‖^2 + ‖y‖^2 - 2x·y`) over cached row norms with the same
//! `dot` / `dot_mixed` kernels as the single-query GEMM path in
//! [`KnnIndex::query`](crate::distance::KnnIndex::query), so the
//! [`Precision`] contract (f32 storage rounding in mixed mode) carries
//! over unchanged.
//!
//! # Exactness fallback
//!
//! HNSW only answers Euclidean queries and only pays off past a few
//! thousand rows. An index configured with [`NeighborBackend::Hnsw`]
//! whose data is non-Euclidean or smaller than [`HnswParams::min_rows`]
//! routes to the exact path and records one
//! [`ann_fallback_hits`](crate::gemm::KernelCounters::ann_fallback_hits)
//! — mirroring how the gemm backend falls back on non-Euclidean metrics.

use crate::distance::Neighbor;
use crate::gemm::Precision;
use crate::matrix::Matrix;
use crate::{Error, Result};
use std::collections::BinaryHeap;

/// Default max degree `M` (level > 0; level 0 allows `2M`).
pub const DEFAULT_HNSW_M: usize = 12;
/// Default construction beam width (`efConstruction`).
pub const DEFAULT_EF_CONSTRUCTION: usize = 48;
/// Default query beam width (`efSearch`) — the recall knob. Sized so
/// recall@10 stays ≥ 0.95 on the clustered/uniform/duplicate-heavy
/// distributions the property suite sweeps (see DESIGN.md §2.9 for the
/// measured recall/speed curve).
pub const DEFAULT_EF_SEARCH: usize = 48;
/// Default minimum row count for HNSW to engage; below this the exact
/// sweep is already fast and the graph overhead is pure loss.
pub const DEFAULT_HNSW_MIN_ROWS: usize = 2048;
/// Hard cap on assigned levels (hit with probability ~`M^-24` ≈ never;
/// bounds the greedy descent).
const MAX_LEVEL: usize = 24;

/// Tuning for the [`NeighborBackend::Hnsw`] graph.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct HnswParams {
    /// Max links per node on levels > 0 (level 0 allows `2m`).
    pub m: usize,
    /// Beam width while inserting (`efConstruction`).
    pub ef_construction: usize,
    /// Beam width while querying (`efSearch`) — the recall knob.
    /// Queries use `max(ef_search, k)`.
    pub ef_search: usize,
    /// Seed for the level assignment (the only randomness in the graph).
    pub seed: u64,
    /// Minimum row count for HNSW to engage; smaller indexes route to
    /// the exact path with an `ann_fallback_hits` count.
    pub min_rows: usize,
}

impl Default for HnswParams {
    fn default() -> Self {
        Self {
            m: DEFAULT_HNSW_M,
            ef_construction: DEFAULT_EF_CONSTRUCTION,
            ef_search: DEFAULT_EF_SEARCH,
            seed: 0x500D_BEE5,
            min_rows: DEFAULT_HNSW_MIN_ROWS,
        }
    }
}

impl HnswParams {
    /// Params with a non-default query beam width.
    pub fn with_ef_search(mut self, ef: usize) -> Self {
        self.ef_search = ef.max(1);
        self
    }
}

/// Which neighbour index answers kNN queries: the exact backends
/// (brute-force sweeps through the configured
/// [`DistanceBackend`](crate::gemm::DistanceBackend), or the KD-tree on
/// low-dimensional data) or the approximate [`HnswGraph`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum NeighborBackend {
    /// Exact k-nearest neighbours (the default; bit-identical to naive).
    #[default]
    Exact,
    /// Approximate neighbours from a seeded deterministic HNSW graph.
    /// Euclidean only; small or non-Euclidean indexes fall back to
    /// [`Exact`](Self::Exact) with a counter.
    Hnsw(HnswParams),
}

impl NeighborBackend {
    /// Stable name (`exact` | `hnsw`) for CLI flags and bench JSON.
    pub fn name(self) -> &'static str {
        match self {
            NeighborBackend::Exact => "exact",
            NeighborBackend::Hnsw(_) => "hnsw",
        }
    }

    /// Parses [`name`](Self::name) output; `hnsw` selects default
    /// [`HnswParams`].
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidParameter`] for unknown names.
    pub fn parse(name: &str) -> Result<Self> {
        match name {
            "exact" => Ok(NeighborBackend::Exact),
            "hnsw" => Ok(NeighborBackend::Hnsw(HnswParams::default())),
            other => Err(Error::InvalidParameter(format!(
                "unknown neighbor backend `{other}` (expected exact|hnsw)"
            ))),
        }
    }

    /// `true` when queries may return approximate neighbours.
    pub fn is_approximate(self) -> bool {
        matches!(self, NeighborBackend::Hnsw(_))
    }
}

impl std::fmt::Display for NeighborBackend {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            NeighborBackend::Exact => f.write_str("exact"),
            NeighborBackend::Hnsw(p) => write!(f, "hnsw(ef_search={})", p.ef_search),
        }
    }
}

/// splitmix64 step — the same generator the workspace uses for
/// fingerprints and model seeds.
fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Uniform draw in `(0, 1]` from `(seed, i)` — pure, so node `i`'s level
/// never depends on insertion timing.
fn unit_open(seed: u64, i: u64) -> f64 {
    let bits = splitmix64(seed ^ splitmix64(i));
    1.0 - (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// A candidate in the search/selection heaps, ordered by the total order
/// `(distance, index)` — the same order [`Neighbor`] lists use.
#[derive(Debug, Clone, Copy, PartialEq)]
struct Cand {
    dist: f64,
    idx: u32,
}

impl Eq for Cand {}

impl Ord for Cand {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.dist
            .partial_cmp(&other.dist)
            .expect("distances are finite")
            .then(self.idx.cmp(&other.idx))
    }
}

impl PartialOrd for Cand {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// Borrowed distance context: the training matrix plus its cached row
/// norms, evaluated through the norm trick with the precision-matched
/// dot kernel (the exact same code path as single-query GEMM lookups).
pub(crate) struct DistCtx<'a> {
    train: &'a Matrix,
    norms: &'a [f64],
    mixed: bool,
}

impl<'a> DistCtx<'a> {
    pub(crate) fn new(train: &'a Matrix, norms: &'a [f64], precision: Precision) -> Self {
        Self {
            train,
            norms,
            mixed: precision == Precision::Mixed,
        }
    }

    #[inline]
    fn dot(&self, a: &[f64], b: &[f64]) -> f64 {
        if self.mixed {
            crate::gemm::dot_mixed(a, b)
        } else {
            crate::matrix::dot(a, b)
        }
    }

    /// Distance between training rows `i` and `j`.
    #[inline]
    fn dist(&self, i: u32, j: u32) -> f64 {
        let g = self.dot(self.train.row(i as usize), self.train.row(j as usize));
        crate::gemm::dist_from_gram(self.norms[i as usize], self.norms[j as usize], g)
    }

    /// Distance from an external query (with precomputed squared norm
    /// `nq`) to training row `j`.
    #[inline]
    fn dist_q(&self, q: &[f64], nq: f64, j: u32) -> f64 {
        let g = self.dot(q, self.train.row(j as usize));
        crate::gemm::dist_from_gram(nq, self.norms[j as usize], g)
    }

    /// Squared norm of an external query under the context's precision.
    pub(crate) fn query_norm(&self, q: &[f64]) -> f64 {
        if self.mixed {
            crate::gemm::norm_sq_mixed(q)
        } else {
            crate::matrix::norm_sq(q)
        }
    }
}

thread_local! {
    /// Per-thread query scratch shared across graphs (see
    /// [`Scratch::ensure`]).
    static SEARCH_SCRATCH: std::cell::RefCell<Scratch> =
        std::cell::RefCell::new(Scratch::new(0));
}

/// Reusable per-thread search scratch: a visited epoch-array (no
/// clearing between searches) and the two beam heaps.
struct Scratch {
    visited: Vec<u32>,
    epoch: u32,
    cand: BinaryHeap<std::cmp::Reverse<Cand>>,
    found: BinaryHeap<Cand>,
}

impl Scratch {
    fn new(n: usize) -> Self {
        Self {
            visited: vec![0; n],
            epoch: 0,
            cand: BinaryHeap::new(),
            found: BinaryHeap::new(),
        }
    }

    /// Grows the visited array to cover `n` nodes. Stale entries from
    /// other graphs are harmless: they belong to past epochs.
    fn ensure(&mut self, n: usize) {
        if self.visited.len() < n {
            self.visited.resize(n, 0);
        }
    }

    fn begin(&mut self) {
        self.epoch += 1;
        if self.epoch == u32::MAX {
            self.visited.fill(0);
            self.epoch = 1;
        }
        self.cand.clear();
        self.found.clear();
    }

    #[inline]
    fn visit(&mut self, i: u32) -> bool {
        let seen = self.visited[i as usize] == self.epoch;
        self.visited[i as usize] = self.epoch;
        !seen
    }
}

/// The seeded deterministic HNSW graph over a training matrix.
///
/// Holds adjacency only — the matrix and its norms stay in the owning
/// [`KnnIndex`](crate::distance::KnnIndex) and are borrowed per call via
/// the internal `DistCtx`. See the [module docs](self) for the
/// determinism contract.
#[derive(Debug, Clone)]
pub struct HnswGraph {
    params: HnswParams,
    /// `links[node][level]` = neighbour indices at that level; a node
    /// participates in levels `0..links[node].len()`.
    links: Vec<Vec<Vec<u32>>>,
    /// Entry node: highest level, ties to the lowest index.
    entry: u32,
    max_level: usize,
    /// Level-0 adjacency flattened to CSR after construction — the
    /// query-time beam spends most of its time scanning level-0
    /// neighbour lists, and the nested `Vec`s cost two dependent loads
    /// per list. Empty until the build's consolidation pass fills it.
    base: Vec<u32>,
    /// CSR offsets into [`base`](Self::base) (`n + 1` entries).
    base_start: Vec<u32>,
}

impl HnswGraph {
    /// Builds the graph over the rows of `train` (Euclidean metric,
    /// `norms[i] = ‖row_i‖²` under the configured precision).
    ///
    /// Batched frozen-graph construction: each batch's candidate
    /// searches run read-only against the pre-batch graph (chunked over
    /// `n_threads`, thread-count-invariant), then edges are applied
    /// sequentially in ascending node order. Batch sizes grow with the
    /// graph (half the inserted prefix, capped) so early batches see a
    /// dense enough graph to search.
    pub(crate) fn build(
        train: &Matrix,
        norms: &[f64],
        precision: Precision,
        params: HnswParams,
        n_threads: usize,
    ) -> Self {
        let n = train.nrows();
        assert!(n > 0, "HnswGraph::build requires rows");
        let ctx = DistCtx::new(train, norms, precision);
        let m = params.m.max(2);
        let ml = 1.0 / (m as f64).ln();
        let levels: Vec<usize> = (0..n)
            .map(|i| ((-unit_open(params.seed, i as u64).ln() * ml) as usize).min(MAX_LEVEL))
            .collect();
        let mut graph = Self {
            params: HnswParams { m, ..params },
            links: levels.iter().map(|&l| vec![Vec::new(); l + 1]).collect(),
            entry: 0,
            max_level: levels[0],
            base: Vec::new(),
            base_start: Vec::new(),
        };

        const MAX_BATCH: usize = 4096;
        let mut cur = 1usize; // node 0 is the initial (edgeless) graph
        let mut scratch_pool: Vec<Scratch> = Vec::new();
        while cur < n {
            let batch = (cur / 2).clamp(1, MAX_BATCH).min(n - cur);
            let end = cur + batch;
            // Parallel phase: frozen-graph searches, pure per point.
            let threads = n_threads.max(1).min(batch);
            while scratch_pool.len() < threads {
                scratch_pool.push(Scratch::new(n));
            }
            let found: Vec<Vec<Vec<Cand>>> = if threads <= 1 {
                let scratch = &mut scratch_pool[0];
                (cur..end)
                    .map(|p| graph.insert_candidates(&ctx, p as u32, levels[p], scratch))
                    .collect()
            } else {
                let graph_ref = &graph;
                let ctx_ref = &ctx;
                let levels_ref = &levels;
                let ranges = crate::parallel::split_ranges(batch, threads);
                let mut out: Vec<Vec<Vec<Vec<Cand>>>> = Vec::with_capacity(threads);
                std::thread::scope(|scope| {
                    let handles: Vec<_> = ranges
                        .into_iter()
                        .zip(scratch_pool.iter_mut())
                        .map(|(range, scratch)| {
                            scope.spawn(move || {
                                range
                                    .map(|off| {
                                        let p = cur + off;
                                        graph_ref.insert_candidates(
                                            ctx_ref,
                                            p as u32,
                                            levels_ref[p],
                                            scratch,
                                        )
                                    })
                                    .collect::<Vec<_>>()
                            })
                        })
                        .collect();
                    for h in handles {
                        out.push(h.join().expect("hnsw search worker panicked"));
                    }
                });
                out.into_iter().flatten().collect()
            };
            // Sequential phase: apply edges in ascending node order.
            for (off, cands) in found.into_iter().enumerate() {
                graph.apply(&ctx, (cur + off) as u32, levels[cur + off], cands);
            }
            cur = end;
        }
        // Consolidation: restore the degree caps that the amortized
        // prune slack let adjacency lists exceed, in ascending node
        // order (deterministic), then flatten level 0 to CSR for the
        // query-time beam.
        for node in 0..n as u32 {
            for l in 0..graph.links[node as usize].len() {
                let m_max = if l == 0 {
                    2 * graph.params.m
                } else {
                    graph.params.m
                };
                if graph.links[node as usize][l].len() > m_max {
                    graph.reselect(&ctx, node, l, m_max);
                }
            }
        }
        graph.base_start = Vec::with_capacity(n + 1);
        graph.base_start.push(0);
        graph.base = Vec::with_capacity(graph.base_degree_sum());
        for node in &graph.links {
            graph.base.extend_from_slice(&node[0]);
            graph.base_start.push(graph.base.len() as u32);
        }
        graph
    }

    /// Level-`level` neighbour list of `node` — the CSR view at level 0
    /// once construction has flattened it, the nested lists otherwise.
    #[inline]
    fn neighbors(&self, node: u32, level: usize) -> &[u32] {
        if level == 0 && !self.base_start.is_empty() {
            let start = self.base_start[node as usize] as usize;
            let end = self.base_start[node as usize + 1] as usize;
            &self.base[start..end]
        } else {
            &self.links[node as usize][level]
        }
    }

    /// Frozen-graph candidate search for inserting node `p` at level
    /// `lp`: greedy descent from the entry to `lp + 1`, then an
    /// `ef_construction` beam per level `min(lp, max_level)..=0`.
    /// Returns candidates per level, index 0 = level 0.
    fn insert_candidates(
        &self,
        ctx: &DistCtx<'_>,
        p: u32,
        lp: usize,
        scratch: &mut Scratch,
    ) -> Vec<Vec<Cand>> {
        let q = ctx.train.row(p as usize);
        let nq = ctx.norms[p as usize];
        let mut ep = Cand {
            dist: ctx.dist_q(q, nq, self.entry),
            idx: self.entry,
        };
        for l in ((lp + 1)..=self.max_level).rev() {
            ep = self.greedy_step(ctx, q, nq, ep, l);
        }
        let top = lp.min(self.max_level);
        let mut per_level = vec![Vec::new(); top + 1];
        for l in (0..=top).rev() {
            let found = self.search_layer(ctx, q, nq, ep, l, self.params.ef_construction, scratch);
            ep = found[0];
            per_level[l] = found;
        }
        per_level
    }

    /// Greedy closest-neighbour descent at one level (ef = 1).
    fn greedy_step(
        &self,
        ctx: &DistCtx<'_>,
        q: &[f64],
        nq: f64,
        mut ep: Cand,
        level: usize,
    ) -> Cand {
        loop {
            let mut improved = false;
            for &nb in self.neighbors(ep.idx, level) {
                let c = Cand {
                    dist: ctx.dist_q(q, nq, nb),
                    idx: nb,
                };
                if c < ep {
                    ep = c;
                    improved = true;
                }
            }
            if !improved {
                return ep;
            }
        }
    }

    /// Beam search at one level: returns the `ef` best candidates found,
    /// sorted ascending under `(distance, index)`.
    #[allow(clippy::too_many_arguments)] // hot path: kept flat, no query struct
    fn search_layer(
        &self,
        ctx: &DistCtx<'_>,
        q: &[f64],
        nq: f64,
        ep: Cand,
        level: usize,
        ef: usize,
        scratch: &mut Scratch,
    ) -> Vec<Cand> {
        scratch.begin();
        scratch.visit(ep.idx);
        scratch.cand.push(std::cmp::Reverse(ep));
        scratch.found.push(ep);
        while let Some(std::cmp::Reverse(c)) = scratch.cand.pop() {
            let worst = *scratch.found.peek().expect("found is non-empty");
            if scratch.found.len() >= ef && worst < c {
                break;
            }
            for &nb in self.neighbors(c.idx, level) {
                if !scratch.visit(nb) {
                    continue;
                }
                let cn = Cand {
                    dist: ctx.dist_q(q, nq, nb),
                    idx: nb,
                };
                let worst = *scratch.found.peek().expect("found is non-empty");
                if scratch.found.len() < ef || cn < worst {
                    scratch.cand.push(std::cmp::Reverse(cn));
                    scratch.found.push(cn);
                    if scratch.found.len() > ef {
                        scratch.found.pop();
                    }
                }
            }
        }
        let mut out: Vec<Cand> = scratch.found.iter().copied().collect();
        out.sort_unstable();
        out
    }

    /// Sequentially applies node `p`'s edges from its frozen-search
    /// candidates: heuristic neighbour selection, bidirectional links,
    /// degree-capped pruning, entry-point maintenance.
    fn apply(&mut self, ctx: &DistCtx<'_>, p: u32, lp: usize, cands: Vec<Vec<Cand>>) {
        let m = self.params.m;
        for (l, level_cands) in cands.into_iter().enumerate() {
            if level_cands.is_empty() {
                continue;
            }
            let m_max = if l == 0 { 2 * m } else { m };
            let sel = select_heuristic(ctx, level_cands, m);
            for s in &sel {
                let back = &mut self.links[s.idx as usize][l];
                back.push(p);
                // Re-selecting on every overflow costs O(m_max^2)
                // distance evaluations per back-link — the dominant
                // build cost. Let the list run to 2x its cap and prune
                // back down to the cap, amortizing the heuristic over
                // m_max insertions (the final consolidation pass in
                // `build` restores the cap everywhere).
                if back.len() > 2 * m_max {
                    self.reselect(ctx, s.idx, l, m_max);
                }
            }
            self.links[p as usize][l] = sel.into_iter().map(|c| c.idx).collect();
        }
        if lp > self.max_level {
            // Strictly-greater keeps the lowest index on level ties.
            self.max_level = lp;
            self.entry = p;
        }
    }

    /// Re-selects `holder`'s links at `level` down to `cap` under the
    /// neighbour heuristic, seen from the holder.
    fn reselect(&mut self, ctx: &DistCtx<'_>, holder: u32, level: usize, cap: usize) {
        let mut own: Vec<Cand> = self.links[holder as usize][level]
            .iter()
            .map(|&t| Cand {
                dist: ctx.dist(holder, t),
                idx: t,
            })
            .collect();
        own.sort_unstable();
        self.links[holder as usize][level] = select_heuristic(ctx, own, cap)
            .iter()
            .map(|c| c.idx)
            .collect();
    }

    /// The `k` approximate nearest training rows to `query`, searched
    /// with beam width `max(ef, k)`; ascending `(distance, index)`.
    pub(crate) fn search(
        &self,
        ctx: &DistCtx<'_>,
        query: &[f64],
        k: usize,
        ef: usize,
    ) -> Vec<Neighbor> {
        let nq = ctx.query_norm(query);
        let mut ep = Cand {
            dist: ctx.dist_q(query, nq, self.entry),
            idx: self.entry,
        };
        for l in (1..=self.max_level).rev() {
            ep = self.greedy_step(ctx, query, nq, ep, l);
        }
        // Reuse one scratch per thread: a fresh visited array per query
        // would mean zeroing `n` words per row of a self-sweep.
        let mut found = SEARCH_SCRATCH.with(|s| {
            let mut scratch = s.borrow_mut();
            scratch.ensure(self.links.len());
            self.search_layer(ctx, query, nq, ep, 0, ef.max(k).max(1), &mut scratch)
        });
        found.truncate(k);
        found
            .into_iter()
            .map(|c| Neighbor {
                index: c.idx as usize,
                distance: c.dist,
            })
            .collect()
    }

    /// Number of indexed points.
    pub fn len(&self) -> usize {
        self.links.len()
    }

    /// `true` when no points are indexed (never, by construction).
    pub fn is_empty(&self) -> bool {
        self.links.is_empty()
    }

    /// The params the graph was built with.
    pub fn params(&self) -> HnswParams {
        self.params
    }

    /// Total directed edges at level 0 (diagnostics).
    pub fn base_degree_sum(&self) -> usize {
        self.links.iter().map(|l| l[0].len()).sum()
    }
}

/// The HNSW neighbour-selection heuristic (Malkov & Yashunin Alg. 4):
/// scan candidates ascending, keep one when it is closer to the query
/// than to every already-kept candidate (diversity), then fill any
/// remaining slots with the skipped candidates in order. Deterministic:
/// input is sorted under the total order and ties never reorder.
fn select_heuristic(ctx: &DistCtx<'_>, sorted: Vec<Cand>, m: usize) -> Vec<Cand> {
    if sorted.len() <= m {
        return sorted;
    }
    let mut kept: Vec<Cand> = Vec::with_capacity(m);
    let mut skipped: Vec<Cand> = Vec::new();
    for c in sorted {
        if kept.len() >= m {
            break;
        }
        let diverse = kept.iter().all(|s| ctx.dist(c.idx, s.idx) > c.dist);
        if diverse {
            kept.push(c);
        } else {
            skipped.push(c);
        }
    }
    for c in skipped {
        if kept.len() >= m {
            break;
        }
        kept.push(c);
    }
    kept
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gemm::row_sq_norms;

    fn blobs(n: usize, d: usize, seed: u64) -> Matrix {
        // Three Gaussian-ish blobs from splitmix64 draws (Box–Muller-free:
        // sums of uniforms are plenty for graph tests).
        let mut data = Vec::with_capacity(n * d);
        for i in 0..n {
            let center = (i % 3) as f64 * 8.0;
            for j in 0..d {
                let u: f64 = (0..4)
                    .map(|r| unit_open(seed, (i * d + j + r * n * d) as u64))
                    .sum::<f64>()
                    / 4.0;
                data.push(center + (u - 0.5) * 2.0);
            }
        }
        Matrix::from_vec(n, d, data).unwrap()
    }

    fn build(x: &Matrix, params: HnswParams, threads: usize) -> HnswGraph {
        let norms = row_sq_norms(x);
        HnswGraph::build(x, &norms, Precision::F64, params, threads)
    }

    #[test]
    fn levels_are_seeded_and_pure() {
        let seed = 42;
        let a: Vec<usize> = (0..1000)
            .map(|i| ((-unit_open(seed, i as u64).ln() * (1.0 / 16f64.ln())) as usize).min(24))
            .collect();
        let b: Vec<usize> = (0..1000)
            .map(|i| ((-unit_open(seed, i as u64).ln() * (1.0 / 16f64.ln())) as usize).min(24))
            .collect();
        assert_eq!(a, b);
        // Geometric-ish: most nodes at level 0, some above.
        assert!(a.iter().filter(|&&l| l == 0).count() > 900);
        assert!(a.iter().any(|&l| l > 0));
    }

    #[test]
    fn graph_identical_across_build_thread_counts() {
        let x = blobs(600, 8, 7);
        let params = HnswParams {
            min_rows: 1,
            ..HnswParams::default()
        };
        let g1 = build(&x, params, 1);
        let g2 = build(&x, params, 2);
        let g8 = build(&x, params, 8);
        assert_eq!(g1.links, g2.links);
        assert_eq!(g1.links, g8.links);
        assert_eq!(g1.entry, g8.entry);
        assert_eq!(g1.max_level, g8.max_level);
    }

    #[test]
    fn search_finds_true_neighbors_on_blobs() {
        let x = blobs(800, 8, 3);
        let norms = row_sq_norms(&x);
        let params = HnswParams {
            min_rows: 1,
            ..HnswParams::default()
        };
        let g = build(&x, params, 1);
        let ctx = DistCtx::new(&x, &norms, Precision::F64);
        let k = 10;
        let mut matched = 0usize;
        let mut total = 0usize;
        for i in (0..800).step_by(13) {
            let approx = g.search(&ctx, x.row(i), k, params.ef_search);
            // Exact reference by linear scan under the same total order.
            let mut all: Vec<Neighbor> = (0..x.nrows())
                .map(|j| Neighbor {
                    index: j,
                    distance: ctx.dist(i as u32, j as u32),
                })
                .collect();
            all.sort_by(|a, b| {
                a.distance
                    .partial_cmp(&b.distance)
                    .unwrap()
                    .then(a.index.cmp(&b.index))
            });
            let exact: std::collections::HashSet<usize> =
                all[..k].iter().map(|n| n.index).collect();
            matched += approx.iter().filter(|n| exact.contains(&n.index)).count();
            total += k;
        }
        let recall = matched as f64 / total as f64;
        assert!(recall >= 0.95, "recall {recall}");
    }

    #[test]
    fn degrees_respect_caps() {
        let x = blobs(500, 4, 11);
        let params = HnswParams {
            m: 8,
            min_rows: 1,
            ..HnswParams::default()
        };
        let g = build(&x, params, 1);
        for node in &g.links {
            for (l, adj) in node.iter().enumerate() {
                let cap = if l == 0 { 16 } else { 8 };
                assert!(adj.len() <= cap, "level {l} degree {}", adj.len());
            }
        }
    }

    #[test]
    fn backend_parse_round_trips() {
        assert_eq!(
            NeighborBackend::parse("exact").unwrap(),
            NeighborBackend::Exact
        );
        assert!(matches!(
            NeighborBackend::parse("hnsw").unwrap(),
            NeighborBackend::Hnsw(_)
        ));
        assert!(NeighborBackend::parse("annoy").is_err());
        assert_eq!(NeighborBackend::Exact.name(), "exact");
        assert_eq!(NeighborBackend::Hnsw(HnswParams::default()).name(), "hnsw");
        assert!(!NeighborBackend::Exact.is_approximate());
        assert!(NeighborBackend::Hnsw(HnswParams::default()).is_approximate());
    }
}
