//! Property-based tests for the linear-algebra substrate.

use proptest::prelude::*;
use suod_linalg::rank::{argsort, average_ranks, ordinal_ranks};
use suod_linalg::stats::{zscore_in_place, Standardizer};
use suod_linalg::{pairwise_distances, symmetric_eigen, DistanceMetric, Matrix};

fn small_matrix(max_dim: usize) -> impl Strategy<Value = Matrix> {
    (1..=max_dim, 1..=max_dim).prop_flat_map(|(r, c)| {
        proptest::collection::vec(-100.0f64..100.0, r * c)
            .prop_map(move |data| Matrix::from_vec(r, c, data).expect("sized"))
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn transpose_is_involution(m in small_matrix(8)) {
        prop_assert_eq!(m.transpose().transpose(), m);
    }

    #[test]
    fn matmul_identity_is_noop(m in small_matrix(8)) {
        let i = Matrix::identity(m.ncols());
        let p = m.matmul(&i).unwrap();
        for (a, b) in p.as_slice().iter().zip(m.as_slice()) {
            prop_assert!((a - b).abs() < 1e-9);
        }
    }

    #[test]
    fn matmul_transpose_identity(m in small_matrix(6)) {
        // (A B)^T == B^T A^T
        let b = m.transpose();
        let left = m.matmul(&b).unwrap().transpose();
        let right = b.transpose().matmul(&m.transpose()).unwrap();
        for (x, y) in left.as_slice().iter().zip(right.as_slice()) {
            prop_assert!((x - y).abs() < 1e-6);
        }
    }

    #[test]
    fn distances_symmetric_nonneg(m in small_matrix(6)) {
        for metric in [DistanceMetric::Euclidean, DistanceMetric::Manhattan, DistanceMetric::Minkowski(3.0)] {
            let d = pairwise_distances(&m, &m, metric).unwrap();
            for i in 0..m.nrows() {
                prop_assert!(d.get(i, i).abs() < 1e-9);
                for j in 0..m.nrows() {
                    prop_assert!(d.get(i, j) >= 0.0);
                    prop_assert!((d.get(i, j) - d.get(j, i)).abs() < 1e-9);
                }
            }
        }
    }

    #[test]
    fn triangle_inequality_euclidean(
        a in proptest::collection::vec(-50.0f64..50.0, 4),
        b in proptest::collection::vec(-50.0f64..50.0, 4),
        c in proptest::collection::vec(-50.0f64..50.0, 4),
    ) {
        let m = DistanceMetric::Euclidean;
        prop_assert!(m.distance(&a, &c) <= m.distance(&a, &b) + m.distance(&b, &c) + 1e-9);
    }

    #[test]
    fn eigen_reconstructs_gram(m in small_matrix(5)) {
        // X^T X is symmetric PSD; eigendecomposition must reconstruct it.
        let g = m.transpose().matmul(&m).unwrap();
        let e = symmetric_eigen(&g).unwrap();
        let n = g.nrows();
        let mut d = Matrix::zeros(n, n);
        for i in 0..n { d.set(i, i, e.values[i]); }
        let rec = e.vectors.matmul(&d).unwrap().matmul(&e.vectors.transpose()).unwrap();
        let scale = 1.0 + g.as_slice().iter().fold(0.0f64, |acc, v| acc.max(v.abs()));
        for (x, y) in rec.as_slice().iter().zip(g.as_slice()) {
            prop_assert!((x - y).abs() / scale < 1e-6, "{x} vs {y}");
        }
        // Eigenvalues of a PSD matrix are non-negative (up to round-off).
        for &v in &e.values {
            prop_assert!(v > -1e-6 * scale);
        }
    }

    #[test]
    fn argsort_sorts(xs in proptest::collection::vec(-1e6f64..1e6, 0..64)) {
        let order = argsort(&xs);
        for w in order.windows(2) {
            prop_assert!(xs[w[0]] <= xs[w[1]]);
        }
        // A permutation: every index appears once.
        let mut seen = vec![false; xs.len()];
        for &i in &order { seen[i] = true; }
        prop_assert!(seen.iter().all(|&b| b));
    }

    #[test]
    fn ranks_are_permutation(xs in proptest::collection::vec(-1e3f64..1e3, 1..64)) {
        let mut r = ordinal_ranks(&xs);
        r.sort_unstable();
        let expect: Vec<usize> = (1..=xs.len()).collect();
        prop_assert_eq!(r, expect);
    }

    #[test]
    fn average_ranks_sum_invariant(xs in proptest::collection::vec(-1e3f64..1e3, 1..64)) {
        // Sum of ranks is n(n+1)/2 regardless of ties.
        let n = xs.len() as f64;
        let s: f64 = average_ranks(&xs).iter().sum();
        prop_assert!((s - n * (n + 1.0) / 2.0).abs() < 1e-6);
    }

    #[test]
    fn zscore_idempotent_stats(mut xs in proptest::collection::vec(-1e3f64..1e3, 3..64)) {
        zscore_in_place(&mut xs);
        let m = suod_linalg::stats::mean(&xs);
        let s = suod_linalg::stats::std_dev(&xs);
        prop_assert!(m.abs() < 1e-9);
        prop_assert!(s < 1e-12 || (s - 1.0).abs() < 1e-9);
    }

    #[test]
    fn kdtree_equals_brute_force(
        n in 130usize..400,
        d in 1usize..6,
        seed in 0u64..1000,
        k in 1usize..12,
    ) {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(seed);
        let data: Vec<f64> = (0..n * d).map(|_| rng.random_range(-50.0..50.0)).collect();
        let pts = Matrix::from_vec(n, d, data).unwrap();
        for metric in [DistanceMetric::Euclidean, DistanceMetric::Manhattan] {
            let auto = suod_linalg::KnnIndex::build(&pts, metric).unwrap();
            prop_assert!(auto.uses_kdtree());
            let brute = suod_linalg::KnnIndex::build_brute_force(&pts, metric).unwrap();
            let q: Vec<f64> = (0..d).map(|_| rng.random_range(-60.0..60.0)).collect();
            prop_assert_eq!(auto.query(&q, k), brute.query(&q, k));
        }
    }

    #[test]
    fn self_query_prefix_is_exact(
        n in 2usize..200,
        d in 1usize..6,
        seed in 0u64..1000,
        k_max in 1usize..16,
    ) {
        // The NeighborCache serves k < k_max as a prefix slice of the
        // k_max sweep. That is only sound if the first k entries of
        // self_query_batch(k_max, t) are bit-identical to a direct
        // self_query_batch(k, t) — for every k <= k_max, every thread
        // count, and both index backends (n crosses the KD-tree and the
        // symmetric-matrix thresholds within this range).
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(seed);
        // Duplicate rows with positive probability to exercise ties.
        let data: Vec<f64> = (0..n * d)
            .map(|_| (rng.random_range(-8.0f64..8.0)).round())
            .collect();
        let pts = Matrix::from_vec(n, d, data).unwrap();
        for metric in [DistanceMetric::Euclidean, DistanceMetric::Manhattan] {
            let index = suod_linalg::KnnIndex::build(&pts, metric).unwrap();
            let full = index.self_query_batch(k_max, 1);
            for t in [1usize, 2, 8] {
                for k in 1..=k_max {
                    let direct = index.self_query_batch(k, t);
                    for i in 0..n {
                        let prefix = &full[i][..k.min(full[i].len())];
                        prop_assert_eq!(
                            prefix, &direct[i][..],
                            "metric {:?} k={} t={} row={}", metric, k, t, i
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn cache_serves_bit_identical_lists(
        n in 2usize..150,
        d in 1usize..5,
        seed in 0u64..1000,
        k in 1usize..12,
    ) {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(seed);
        let data: Vec<f64> = (0..n * d).map(|_| rng.random_range(-50.0f64..50.0)).collect();
        let pts = Matrix::from_vec(n, d, data).unwrap();
        let cache = suod_linalg::NeighborCache::new();
        // Warm the cache at a larger k, then request smaller ones.
        let metric = DistanceMetric::Euclidean;
        cache.get_or_build(&pts, metric, k + 3, 2).unwrap();
        let graph = cache.get_or_build(&pts, metric, k, 1).unwrap();
        let index = suod_linalg::KnnIndex::build(&pts, metric).unwrap();
        let direct = index.self_query_batch(k, 1);
        for (i, row) in direct.iter().enumerate() {
            prop_assert_eq!(graph.prefix(i, k), &row[..]);
        }
        prop_assert_eq!(cache.stats().builds, 1);
    }

    #[test]
    fn standardizer_train_has_unit_stats(m in small_matrix(8)) {
        prop_assume!(m.nrows() >= 2);
        let sc = Standardizer::fit(&m).unwrap();
        let t = sc.transform(&m).unwrap();
        for c in 0..t.ncols() {
            let col = t.col(c);
            prop_assert!(suod_linalg::stats::mean(&col).abs() < 1e-8);
        }
    }
}
