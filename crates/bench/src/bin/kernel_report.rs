//! Distance-kernel backend report: naive vs blocked vs GEMM, scalar vs
//! SIMD, f64 vs mixed precision.
//!
//! Sweeps the pairwise-distance kernels over `(n, d)` in
//! `{2k, 20k} x {8, 32, 128}` for every [`DistanceBackend`] — timing the
//! GEMM backend once per [`SimdLane`] (forced via
//! [`set_simd_lane_override`]) and once per [`Precision`] — times the
//! batched brute-force kNN fast path, and sweeps the KD-tree-vs-brute
//! crossover dimension that justifies
//! [`suod_linalg::DEFAULT_KDTREE_CROSSOVER_DIM`]. Results go to
//! `BENCH_kernels.json` in the working directory so the perf trajectory
//! is tracked across PRs; the report header records the git revision,
//! the detected lane, and whether the host supports AVX2+FMA, so every
//! number in the file says what produced it.
//!
//! Every timing is the minimum of [`REPS`] runs (minimum, not mean — the
//! quantity of interest is achievable speed, not scheduler noise). All
//! timings are single-thread: backend wins here are algorithmic
//! (packing, cache tiling, the norm trick, vector width), not
//! parallelism.
//!
//! Flags: `--quick` shrinks problem sizes for smoke runs; `--smoke`
//! times only the 20k x 32 pairwise cell and exits non-zero unless the
//! blocked backend beats naive AND (when the host supports AVX2+FMA)
//! the AVX2 gemm lane beats the forced-scalar gemm lane (the CI
//! regression gates for the tiled and vectorized kernels).

use std::fmt::Write as _;
use std::time::Instant;
use suod_bench::Scale;
use suod_linalg::{
    pairwise_distances_backend, pairwise_distances_with, set_simd_lane_override, DistanceBackend,
    DistanceMetric, KernelConfig, KnnIndex, Matrix, Precision, SimdLane,
    DEFAULT_KDTREE_CROSSOVER_DIM,
};

const REPS: usize = 3;

fn min_time(mut f: impl FnMut()) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..REPS {
        let start = Instant::now();
        f();
        best = best.min(start.elapsed().as_secs_f64());
    }
    best
}

fn random_matrix(rows: usize, cols: usize, seed: u64) -> Matrix {
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    let mut rng = StdRng::seed_from_u64(seed);
    Matrix::from_vec(
        rows,
        cols,
        (0..rows * cols)
            .map(|_| rng.random_range(-2.0..2.0))
            .collect(),
    )
    .expect("shape consistent")
}

/// Short git revision of the working tree, or `"unknown"` outside a
/// checkout — provenance for the committed report.
fn git_rev() -> String {
    std::process::Command::new("git")
        .args(["rev-parse", "--short", "HEAD"])
        .output()
        .ok()
        .filter(|o| o.status.success())
        .map(|o| String::from_utf8_lossy(&o.stdout).trim().to_string())
        .unwrap_or_else(|| "unknown".into())
}

/// Times `f` with the process-wide lane override forced to `lane`,
/// restoring automatic detection afterwards. On hosts without AVX2+FMA
/// an `Avx2` request degrades to scalar (mirroring `SimdLane::detect`),
/// so the numbers are honest on every machine.
fn time_with_lane(lane: SimdLane, f: impl FnMut()) -> f64 {
    set_simd_lane_override(Some(lane));
    let t = min_time(f);
    set_simd_lane_override(None);
    t
}

fn gemm_config(precision: Precision) -> KernelConfig {
    KernelConfig {
        backend: DistanceBackend::Gemm,
        precision,
        kdtree_crossover_dim: 0,
        ..KernelConfig::default()
    }
}

/// One pairwise cell's timings across backends, lanes and precisions.
struct PairwiseCell {
    naive_s: f64,
    blocked_s: f64,
    gemm_scalar_s: f64,
    gemm_simd_s: f64,
    gemm_mixed_scalar_s: f64,
    gemm_mixed_simd_s: f64,
}

impl PairwiseCell {
    fn measure(n: usize, d: usize) -> Self {
        let a = random_matrix(n, d, n as u64 ^ d as u64);
        let scalar_only = |backend| {
            min_time(|| {
                let _ =
                    pairwise_distances_backend(&a, &a, DistanceMetric::Euclidean, backend, 1, None)
                        .expect("shapes agree");
            })
        };
        let gemm = |lane, precision| {
            time_with_lane(lane, || {
                let _ = pairwise_distances_with(
                    &a,
                    &a,
                    DistanceMetric::Euclidean,
                    gemm_config(precision),
                    1,
                    None,
                )
                .expect("shapes agree");
            })
        };
        Self {
            naive_s: scalar_only(DistanceBackend::Naive),
            blocked_s: scalar_only(DistanceBackend::Blocked),
            gemm_scalar_s: gemm(SimdLane::Scalar, Precision::F64),
            gemm_simd_s: gemm(SimdLane::Avx2, Precision::F64),
            gemm_mixed_scalar_s: gemm(SimdLane::Scalar, Precision::Mixed),
            gemm_mixed_simd_s: gemm(SimdLane::Avx2, Precision::Mixed),
        }
    }

    fn json(&self) -> String {
        let mut s = String::from("{");
        let _ = write!(
            s,
            "\"naive_s\": {:.6}, \"blocked_s\": {:.6}, \"gemm_scalar_s\": {:.6}, \
             \"gemm_simd_s\": {:.6}, \"gemm_mixed_scalar_s\": {:.6}, \
             \"gemm_mixed_simd_s\": {:.6}, \"blocked_speedup\": {:.4}, \
             \"gemm_speedup\": {:.4}, \"simd_speedup\": {:.4}, \"mixed_speedup\": {:.4}}}",
            self.naive_s,
            self.blocked_s,
            self.gemm_scalar_s,
            self.gemm_simd_s,
            self.gemm_mixed_scalar_s,
            self.gemm_mixed_simd_s,
            self.naive_s / self.blocked_s,
            self.naive_s / self.gemm_simd_s,
            self.gemm_scalar_s / self.gemm_simd_s,
            self.gemm_simd_s / self.gemm_mixed_simd_s,
        );
        s
    }
}

fn brute_config(backend: DistanceBackend) -> KernelConfig {
    KernelConfig {
        backend,
        kdtree_crossover_dim: 0,
        ..KernelConfig::default()
    }
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let scale = Scale::from_args();
    let host_cores = std::thread::available_parallelism().map_or(1, |p| p.get());
    let avx2 = SimdLane::supported() == SimdLane::Avx2;
    let rev = git_rev();

    if args.iter().any(|a| a == "--smoke") {
        // CI gates on the acceptance cell (20k x 32): the tiled blocked
        // kernel must beat the naive scan, and on AVX2 hosts the vector
        // lane must beat the forced-scalar lane.
        let (n, d) = (20_000, 32);
        println!("kernel smoke: pairwise {n}x{d} (avx2 supported: {avx2})");
        let cell = PairwiseCell::measure(n, d);
        println!(
            "naive {:.3}s  blocked {:.3}s ({:.2}x)  gemm scalar {:.3}s  gemm simd {:.3}s \
             ({:.2}x over scalar)  mixed simd {:.3}s",
            cell.naive_s,
            cell.blocked_s,
            cell.naive_s / cell.blocked_s,
            cell.gemm_scalar_s,
            cell.gemm_simd_s,
            cell.gemm_scalar_s / cell.gemm_simd_s,
            cell.gemm_mixed_simd_s,
        );
        if cell.blocked_s >= cell.naive_s {
            eprintln!("FAIL: blocked backend no faster than naive");
            std::process::exit(1);
        }
        if avx2 && cell.gemm_simd_s >= cell.gemm_scalar_s {
            eprintln!("FAIL: AVX2 gemm lane no faster than forced-scalar gemm");
            std::process::exit(1);
        }
        println!("OK");
        return;
    }

    println!(
        "Distance-kernel backend report (rev {rev}, host cores: {host_cores}, \
         avx2+fma: {avx2}, single-thread timings)"
    );

    // --- Pairwise sweep. ---------------------------------------------------
    let sizes: &[usize] = &scale.pick(vec![500, 2_000], vec![2_000, 20_000], vec![2_000, 20_000]);
    let dims: &[usize] = &[8, 32, 128];
    let mut pairwise_rows: Vec<String> = Vec::new();
    for &n in sizes {
        for &d in dims {
            let cell = PairwiseCell::measure(n, d);
            println!(
                "pairwise {n:>6}x{d:<4} naive {:>8.3}s  blocked {:>8.3}s ({:>4.2}x)  \
                 gemm[scalar] {:>8.3}s  gemm[simd] {:>8.3}s ({:>4.2}x lane)  \
                 mixed[simd] {:>8.3}s ({:>4.2}x prec)",
                cell.naive_s,
                cell.blocked_s,
                cell.naive_s / cell.blocked_s,
                cell.gemm_scalar_s,
                cell.gemm_simd_s,
                cell.gemm_scalar_s / cell.gemm_simd_s,
                cell.gemm_mixed_simd_s,
                cell.gemm_simd_s / cell.gemm_mixed_simd_s,
            );
            pairwise_rows.push(format!("\"n{n}_d{d}\": {}", cell.json()));
        }
    }

    // --- Batched brute-force kNN fast path. --------------------------------
    let (knn_n, knn_q, knn_d, knn_k) = scale.pick(
        (2_000, 200, 32, 10),
        (20_000, 2_000, 32, 10),
        (20_000, 2_000, 32, 10),
    );
    let train = random_matrix(knn_n, knn_d, 21);
    let queries = random_matrix(knn_q, knn_d, 22);
    let knn_time = |config: KernelConfig| {
        let index =
            KnnIndex::build_with(&train, DistanceMetric::Euclidean, config).expect("non-empty");
        min_time(|| {
            let _ = index
                .query_batch_parallel(&queries, knn_k, 1)
                .expect("shapes agree");
        })
    };
    let knn_naive = knn_time(brute_config(DistanceBackend::Naive));
    let knn_blocked = knn_time(brute_config(DistanceBackend::Blocked));
    let knn_gemm = knn_time(brute_config(DistanceBackend::Gemm));
    let knn_mixed = knn_time(gemm_config(Precision::Mixed));
    println!(
        "knn_batch {knn_n}tr/{knn_q}q d{knn_d} k{knn_k}  naive {knn_naive:>8.3}s  \
         blocked {knn_blocked:>8.3}s ({:>4.2}x)  gemm {knn_gemm:>8.3}s ({:>4.2}x)  \
         gemm+mixed {knn_mixed:>8.3}s ({:>4.2}x)",
        knn_naive / knn_blocked,
        knn_naive / knn_gemm,
        knn_naive / knn_mixed,
    );

    // --- KD-tree crossover sweep. ------------------------------------------
    // Tree build + query vs brute-force blocked batch, per dimension: the
    // crossover default is the largest d where the tree still wins.
    let (cx_n, cx_q, cx_k) = scale.pick((2_000, 200, 10), (10_000, 1_000, 10), (10_000, 1_000, 10));
    let mut crossover_rows: Vec<String> = Vec::new();
    let mut derived_crossover = 0usize;
    for &d in &[4usize, 6, 8, 10, 12, 14, 16] {
        let train = random_matrix(cx_n, d, 31 + d as u64);
        let queries = random_matrix(cx_q, d, 32 + d as u64);
        let tree_cfg = KernelConfig {
            kdtree_crossover_dim: usize::MAX,
            ..KernelConfig::default()
        };
        let tree =
            KnnIndex::build_with(&train, DistanceMetric::Euclidean, tree_cfg).expect("non-empty");
        assert!(tree.uses_kdtree(), "crossover sweep needs a real tree");
        let brute = KnnIndex::build_with(
            &train,
            DistanceMetric::Euclidean,
            brute_config(DistanceBackend::Blocked),
        )
        .expect("non-empty");
        let tree_s = min_time(|| {
            let _ = tree
                .query_batch_parallel(&queries, cx_k, 1)
                .expect("shapes");
        });
        let brute_s = min_time(|| {
            let _ = brute
                .query_batch_parallel(&queries, cx_k, 1)
                .expect("shapes");
        });
        if tree_s < brute_s {
            derived_crossover = d;
        }
        println!(
            "crossover d={d:<3} tree {tree_s:>8.4}s  brute(blocked) {brute_s:>8.4}s  \
             tree_wins={}",
            tree_s < brute_s
        );
        crossover_rows.push(format!(
            "\"{d}\": {{\"tree_s\": {tree_s:.6}, \"brute_s\": {brute_s:.6}}}"
        ));
    }
    println!(
        "crossover: largest tree-winning d = {derived_crossover} \
         (shipped default: {DEFAULT_KDTREE_CROSSOVER_DIM})"
    );

    // --- Report. -----------------------------------------------------------
    let json = format!(
        "{{\n  \"git_rev\": \"{rev}\",\n  \"host_cores\": {host_cores},\n  \
         \"avx2_fma_supported\": {avx2},\n  \"lane_detected\": \"{}\",\n  \
         \"precisions\": [\"f64\", \"mixed\"],\n  \"scale\": \"{scale:?}\",\n  \
         \"n_threads\": 1,\n  \"pairwise\": {{\n    {}\n  }},\n  \
         \"knn_batch_n{knn_n}_q{knn_q}_d{knn_d}_k{knn_k}\": {{\"naive_s\": {knn_naive:.6}, \
         \"blocked_s\": {knn_blocked:.6}, \"gemm_s\": {knn_gemm:.6}, \
         \"gemm_mixed_s\": {knn_mixed:.6}}},\n  \
         \"kdtree_crossover_n{cx_n}_q{cx_q}_k{cx_k}\": {{\n    {}\n  }},\n  \
         \"crossover_derived\": {derived_crossover},\n  \
         \"crossover_default\": {DEFAULT_KDTREE_CROSSOVER_DIM}\n}}\n",
        SimdLane::detect(),
        pairwise_rows.join(",\n    "),
        crossover_rows.join(",\n    "),
    );
    std::fs::write("BENCH_kernels.json", &json).expect("write BENCH_kernels.json");
    println!("wrote BENCH_kernels.json");
}
