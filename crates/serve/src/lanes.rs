//! Overload policies the front end layers *on top of* queue admission.
//!
//! The `ScoreService` queue already bounds memory and rejects with
//! `Busy` when full — but that gate is global and first-come. Under a
//! flood from one client it fills with that client's requests and
//! everyone else starves. This module adds two deterministic gates that
//! run **before** `submit`:
//!
//! * **Per-client quotas** — each client identity (the front end keys by
//!   peer IP) may hold at most [`LaneConfig::per_client_inflight`]
//!   requests in flight at once. The (N+1)-th pipelined frame from one
//!   connection bounces with `busy(quota)` while other clients still
//!   admit. Releases are RAII ([`QuotaGuard`]), so a worker that errors
//!   out mid-response can never leak a slot.
//! * **Two priority lanes** — a normal-lane request is turned away with
//!   `busy(lane)` once queue occupancy reaches
//!   [`LaneConfig::normal_lane_headroom`] x capacity; high-lane traffic
//!   keeps admitting until the queue itself is full. The reserved slack
//!   means priority clients ride through a best-effort flood.
//!
//! Both gates are pure functions of (current in-flight counts, queue
//! depth, request lane) — no clocks, no randomness — so front-end
//! admission decisions replay exactly from an arrival trace, matching
//! the service's own determinism contract.

use std::collections::HashMap;
use std::sync::{Arc, Mutex};

use crate::service::lock_ignore_poison;
use crate::wire::{BusyReason, Lane};

/// Knobs for the front end's admission gates.
#[derive(Debug, Clone)]
pub struct LaneConfig {
    /// Maximum requests one client identity may have in flight at once.
    /// `0` disables the quota gate.
    pub per_client_inflight: usize,
    /// Fraction of queue capacity the normal lane may consume before it
    /// is turned away (`busy(lane)`), leaving the rest as high-lane
    /// slack. `1.0` disables the lane gate; must be in `[0, 1]`.
    pub normal_lane_headroom: f64,
}

impl Default for LaneConfig {
    fn default() -> Self {
        LaneConfig {
            per_client_inflight: 0,
            normal_lane_headroom: 1.0,
        }
    }
}

impl LaneConfig {
    /// Validates the knobs.
    ///
    /// # Errors
    ///
    /// Returns a message naming the offending knob when
    /// `normal_lane_headroom` is not a finite value in `[0, 1]`.
    pub fn validate(&self) -> Result<(), String> {
        if !self.normal_lane_headroom.is_finite()
            || !(0.0..=1.0).contains(&self.normal_lane_headroom)
        {
            return Err(format!(
                "normal_lane_headroom must be in [0, 1], got {}",
                self.normal_lane_headroom
            ));
        }
        Ok(())
    }

    /// Highest queue depth (inclusive) at which a normal-lane request is
    /// still admitted, for a queue of `capacity` slots. A request
    /// arriving at depth `d` is admitted iff `d < threshold`.
    pub fn normal_lane_threshold(&self, capacity: usize) -> usize {
        // Floor keeps the comparison integral and therefore exact: with
        // capacity 64 and headroom 0.75, depths 0..=47 admit.
        (self.normal_lane_headroom * capacity as f64).floor() as usize
    }
}

/// Shared in-flight accounting for the quota gate.
#[derive(Debug, Default)]
struct InflightCounts {
    by_client: HashMap<String, usize>,
}

/// The front end's pre-`submit` admission gates. Cheap to clone
/// (`Arc`-shared counts); one instance serves all connection workers.
#[derive(Debug, Clone)]
pub struct AdmissionLanes {
    config: LaneConfig,
    inflight: Arc<Mutex<InflightCounts>>,
}

/// RAII receipt for one admitted request's quota slot. Dropping it
/// releases the slot — hold it from admission until the response has
/// been written (or the attempt abandoned).
#[derive(Debug)]
pub struct QuotaGuard {
    inflight: Option<Arc<Mutex<InflightCounts>>>,
    client: String,
}

impl Drop for QuotaGuard {
    fn drop(&mut self) {
        let Some(inflight) = self.inflight.take() else {
            return;
        };
        let mut counts = lock_ignore_poison(&inflight);
        if let Some(n) = counts.by_client.get_mut(&self.client) {
            *n -= 1;
            if *n == 0 {
                counts.by_client.remove(&self.client);
            }
        }
    }
}

impl AdmissionLanes {
    /// Builds the gates.
    ///
    /// # Errors
    ///
    /// Propagates [`LaneConfig::validate`] failures.
    pub fn new(config: LaneConfig) -> Result<Self, String> {
        config.validate()?;
        Ok(AdmissionLanes {
            config,
            inflight: Arc::new(Mutex::new(InflightCounts::default())),
        })
    }

    /// The configured knobs.
    pub fn config(&self) -> &LaneConfig {
        &self.config
    }

    /// Runs both gates for one request. On admission returns a
    /// [`QuotaGuard`] to hold until the response is written; on
    /// rejection names which gate said no (map it to `busy(quota)` /
    /// `busy(lane)` on the wire).
    ///
    /// `queue_depth`/`queue_capacity` are the service queue's occupancy
    /// at decision time — sample them immediately before calling.
    ///
    /// # Errors
    ///
    /// [`BusyReason::Quota`] when `client` is at its in-flight cap;
    /// [`BusyReason::Lane`] when a normal-lane request arrives past the
    /// headroom threshold.
    pub fn admit(
        &self,
        client: &str,
        lane: Lane,
        queue_depth: usize,
        queue_capacity: usize,
    ) -> Result<QuotaGuard, BusyReason> {
        // At headroom 1.0 the gate is fully inert: a full queue is the
        // service's call (`busy(queue)`), not a lane rejection.
        if lane == Lane::Normal
            && self.config.normal_lane_headroom < 1.0
            && queue_depth >= self.config.normal_lane_threshold(queue_capacity)
        {
            return Err(BusyReason::Lane);
        }
        if self.config.per_client_inflight == 0 {
            return Ok(QuotaGuard {
                inflight: None,
                client: String::new(),
            });
        }
        let mut counts = lock_ignore_poison(&self.inflight);
        let n = counts.by_client.entry(client.to_string()).or_insert(0);
        if *n >= self.config.per_client_inflight {
            return Err(BusyReason::Quota);
        }
        *n += 1;
        Ok(QuotaGuard {
            inflight: Some(Arc::clone(&self.inflight)),
            client: client.to_string(),
        })
    }

    /// Current in-flight count for one client identity (0 when the
    /// quota gate is disabled or the client holds no slots).
    pub fn inflight_for(&self, client: &str) -> usize {
        lock_ignore_poison(&self.inflight)
            .by_client
            .get(client)
            .copied()
            .unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lanes(per_client: usize, headroom: f64) -> AdmissionLanes {
        AdmissionLanes::new(LaneConfig {
            per_client_inflight: per_client,
            normal_lane_headroom: headroom,
        })
        .unwrap()
    }

    #[test]
    fn config_rejects_bad_headroom() {
        for bad in [-0.1, 1.5, f64::NAN, f64::INFINITY] {
            assert!(
                LaneConfig {
                    per_client_inflight: 0,
                    normal_lane_headroom: bad,
                }
                .validate()
                .is_err(),
                "headroom {bad} should be rejected"
            );
        }
        LaneConfig::default().validate().unwrap();
    }

    #[test]
    fn quota_caps_one_client_without_touching_others() {
        let lanes = lanes(2, 1.0);
        let a1 = lanes.admit("10.0.0.1", Lane::Normal, 0, 64).unwrap();
        let _a2 = lanes.admit("10.0.0.1", Lane::Normal, 0, 64).unwrap();
        assert_eq!(
            lanes.admit("10.0.0.1", Lane::Normal, 0, 64).unwrap_err(),
            BusyReason::Quota
        );
        // A different identity is untouched by the first one's flood.
        let _b1 = lanes.admit("10.0.0.2", Lane::Normal, 0, 64).unwrap();
        assert_eq!(lanes.inflight_for("10.0.0.1"), 2);

        // Releasing a slot re-opens the gate.
        drop(a1);
        assert_eq!(lanes.inflight_for("10.0.0.1"), 1);
        let _a3 = lanes.admit("10.0.0.1", Lane::Normal, 0, 64).unwrap();
    }

    #[test]
    fn quota_zero_means_unlimited() {
        let lanes = lanes(0, 1.0);
        let guards: Vec<_> = (0..100)
            .map(|_| lanes.admit("flood", Lane::Normal, 0, 4).unwrap())
            .collect();
        assert_eq!(guards.len(), 100);
        assert_eq!(
            lanes.inflight_for("flood"),
            0,
            "no accounting when disabled"
        );
    }

    #[test]
    fn normal_lane_respects_headroom_and_high_lane_ignores_it() {
        let lanes = lanes(0, 0.75);
        let capacity = 64;
        let threshold = lanes.config().normal_lane_threshold(capacity);
        assert_eq!(threshold, 48);

        assert!(lanes
            .admit("c", Lane::Normal, threshold - 1, capacity)
            .is_ok());
        assert_eq!(
            lanes
                .admit("c", Lane::Normal, threshold, capacity)
                .unwrap_err(),
            BusyReason::Lane
        );
        // High lane sails past the headroom; only the service queue
        // itself can turn it away.
        assert!(lanes.admit("c", Lane::High, capacity - 1, capacity).is_ok());
    }

    #[test]
    fn full_headroom_disables_the_lane_gate() {
        let lanes = lanes(0, 1.0);
        assert!(lanes.admit("c", Lane::Normal, 63, 64).is_ok());
        // Even at depth == capacity the inert gate defers to the
        // service queue, which answers busy(queue) itself.
        assert!(lanes.admit("c", Lane::Normal, 64, 64).is_ok());
    }

    #[test]
    fn lane_gate_checks_before_quota_accounting() {
        // A lane rejection must not consume a quota slot.
        let lanes = lanes(1, 0.5);
        assert_eq!(
            lanes.admit("c", Lane::Normal, 32, 64).unwrap_err(),
            BusyReason::Lane
        );
        assert_eq!(lanes.inflight_for("c"), 0);
        let _g = lanes.admit("c", Lane::Normal, 0, 64).unwrap();
        assert_eq!(lanes.inflight_for("c"), 1);
    }

    #[test]
    fn guards_release_across_threads() {
        let lanes = lanes(1, 1.0);
        let guard = lanes.admit("t", Lane::Normal, 0, 8).unwrap();
        let lanes2 = lanes.clone();
        std::thread::spawn(move || drop(guard)).join().unwrap();
        assert_eq!(lanes2.inflight_for("t"), 0);
        let _g = lanes2.admit("t", Lane::Normal, 0, 8).unwrap();
    }
}
