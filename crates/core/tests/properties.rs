//! Property-based tests for the composed SUOD estimator: random pools on
//! random data must produce well-formed, deterministic results under
//! every module configuration.

use proptest::prelude::*;
use suod::prelude::*;
use suod_datasets::synthetic::{generate, SyntheticConfig};

/// A small pool drawn from the Table B.1 ranges with hyperparameters
/// clamped to tiny datasets. OCSVM/ABOD/FB are thinned out to keep the
/// property runs fast.
fn clamped_pool(m: usize, seed: u64, n_train: usize) -> Vec<ModelSpec> {
    let cap = (n_train / 3).max(2);
    suod::random_pool(m, seed)
        .into_iter()
        .map(|spec| match spec {
            ModelSpec::Abod { n_neighbors } => ModelSpec::Abod {
                n_neighbors: n_neighbors.clamp(2, cap),
            },
            ModelSpec::Knn {
                n_neighbors,
                method,
            } => ModelSpec::Knn {
                n_neighbors: n_neighbors.min(cap),
                method,
            },
            ModelSpec::Lof {
                n_neighbors,
                metric,
            } => ModelSpec::Lof {
                n_neighbors: n_neighbors.clamp(2, cap),
                metric,
            },
            ModelSpec::Cblof { n_clusters } => ModelSpec::Cblof {
                n_clusters: n_clusters.min(n_train / 4).max(1),
            },
            ModelSpec::FeatureBagging { .. } => ModelSpec::FeatureBagging { n_estimators: 3 },
            ModelSpec::Ocsvm { nu, .. } => ModelSpec::Ocsvm {
                nu,
                kernel: Kernel::Rbf { gamma: 0.0 },
            },
            other => other,
        })
        .collect()
}

fn dataset(n: usize, d: usize, seed: u64) -> Matrix {
    generate(&SyntheticConfig {
        n_samples: n,
        n_features: d,
        contamination: 0.1,
        seed,
        ..Default::default()
    })
    .expect("valid config")
    .x
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn fitted_suod_is_well_formed(
        n in 40usize..90,
        d in 3usize..8,
        pool_seed in 0u64..500,
        rp in proptest::bool::ANY,
        psa in proptest::bool::ANY,
        bps in proptest::bool::ANY,
    ) {
        let x = dataset(n, d, pool_seed ^ 0xABCD);
        let pool = clamped_pool(4, pool_seed, n);
        let mut clf = Suod::builder()
            .base_estimators(pool.clone())
            .with_projection(rp)
            .with_approximation(psa)
            .with_bps(bps)
            .n_workers(if bps { 2 } else { 1 })
            .seed(pool_seed)
            .build()
            .unwrap();
        clf.fit(&x).unwrap();

        // Score matrix shape + finiteness.
        let scores = clf.decision_function(&x).unwrap();
        prop_assert_eq!(scores.shape(), (n, pool.len()));
        prop_assert!(scores.as_slice().iter().all(|v| v.is_finite()));

        // Labels binary, at least one outlier flagged, proba in [0, 1].
        let labels = clf.predict(&x).unwrap();
        prop_assert!(labels.iter().all(|&l| l == 0 || l == 1));
        prop_assert!(labels.iter().sum::<i32>() >= 1);
        let proba = clf.predict_proba(&x).unwrap();
        prop_assert!(proba.iter().all(|&p| (0.0..=1.0).contains(&p)));

        // Flags: only costly+friendly models projected/approximated.
        let diag = clf.diagnostics().unwrap();
        for (i, spec) in pool.iter().enumerate() {
            let projected = diag.projected()[i];
            let approximated = diag.approximated()[i];
            prop_assert!(!projected || (rp && spec.projection_friendly()));
            prop_assert!(!approximated || (psa && spec.is_costly()));
        }
    }

    #[test]
    fn determinism_across_full_pipeline(
        pool_seed in 0u64..200,
        fit_seed in 0u64..200,
    ) {
        let x = dataset(50, 5, 3);
        let pool = clamped_pool(3, pool_seed, 50);
        let run = || {
            let mut clf = Suod::builder()
                .base_estimators(pool.clone())
                .seed(fit_seed)
                .build()
                .unwrap();
            clf.fit(&x).unwrap();
            clf.combined_scores(&x).unwrap()
        };
        prop_assert_eq!(run(), run());
    }

    #[test]
    fn threshold_flags_training_fraction(
        contamination in 0.05f64..0.4,
        pool_seed in 0u64..200,
    ) {
        let n = 80usize;
        let x = dataset(n, 5, pool_seed);
        let mut clf = Suod::builder()
            .base_estimators(clamped_pool(3, pool_seed, n))
            .contamination(contamination)
            .seed(1)
            .build()
            .unwrap();
        clf.fit(&x).unwrap();
        let train = clf.training_combined_scores().unwrap();
        let threshold = clf.threshold().unwrap();
        let flagged = train.iter().filter(|&&s| s >= threshold).count();
        let expected = (n as f64 * contamination).round() as usize;
        // Ties can push a few extra over the threshold.
        prop_assert!(flagged >= expected.max(1));
        prop_assert!(flagged <= expected + 5, "{flagged} vs {expected}");
    }
}
