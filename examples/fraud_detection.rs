//! Fraudulent-claim screening: the paper's IQVIA deployment case (§4.5)
//! in an example-sized form.
//!
//! Generates a synthetic pharmacy-claims dataset with the published
//! statistics (35 features, 15.38 % fraud), trains a heterogeneous SUOD
//! pool as a first-round screen, and reports how well the flagged claims
//! would route to a special investigation unit (SIU).
//!
//! Run with:
//! ```sh
//! cargo run --release -p suod --example fraud_detection
//! ```

use suod::prelude::*;
use suod_datasets::claims::{generate_claims, ClaimsConfig, PAPER_FRAUD_RATE};
use suod_datasets::train_test_split;
use suod_metrics::{precision_at_n, precision_recall_at_k, roc_auc};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Example-sized subsample of the 123,720-claim dataset; the paper's
    // full shape is reproduced by the `iqvia_case` bench binary.
    let ds = generate_claims(&ClaimsConfig {
        n_claims: 6_000,
        fraud_rate: PAPER_FRAUD_RATE,
        seed: 2021,
    })?;
    let split = train_test_split(&ds, 0.4, 2021)?;
    println!(
        "claims: {} train / {} validation ({} features, {:.2}% fraud)",
        split.x_train.nrows(),
        split.x_test.nrows(),
        ds.n_features(),
        100.0 * ds.contamination()
    );

    // The current-system setup in §4.5: a group of selected PyOD-style
    // detectors combined by averaging.
    let base_estimators = vec![
        ModelSpec::Knn {
            n_neighbors: 20,
            method: KnnMethod::Largest,
        },
        ModelSpec::Knn {
            n_neighbors: 40,
            method: KnnMethod::Mean,
        },
        ModelSpec::Lof {
            n_neighbors: 30,
            metric: Metric::Euclidean,
        },
        ModelSpec::Cblof { n_clusters: 8 },
        ModelSpec::IForest {
            n_estimators: 100,
            max_features: 0.8,
        },
        ModelSpec::Hbos {
            n_bins: 25,
            tolerance: 0.2,
        },
    ];

    let mut clf = Suod::builder()
        .base_estimators(base_estimators)
        .with_projection(true)
        .with_approximation(true)
        .with_bps(true)
        .n_workers(2)
        .contamination(PAPER_FRAUD_RATE)
        .seed(2021)
        .build()?;

    let start = std::time::Instant::now();
    clf.fit(&split.x_train)?;
    println!("fit time      : {:.2?}", start.elapsed());

    let start = std::time::Instant::now();
    let scores = clf.combined_scores(&split.x_test)?;
    println!("predict time  : {:.2?}", start.elapsed());

    let auc = roc_auc(&split.y_test, &scores)?;
    let pan = precision_at_n(&split.y_test, &scores, None)?;
    println!("validation ROC: {auc:.4}");
    println!("validation P@N: {pan:.4}");

    // SIU routing: how good is the top-of-queue the investigators see?
    for budget in [50usize, 200, 500] {
        let (precision, recall) = precision_recall_at_k(&split.y_test, &scores, budget)?;
        println!("top-{budget:>4} queue: precision {precision:.3}, recall {recall:.3}");
    }
    Ok(())
}
