#![allow(clippy::needless_range_loop)] // indexed loops mirror the papers' pseudocode in numeric kernels
#![warn(missing_docs)]
//! Supervised regressors for the SUOD reproduction.
//!
//! Two of SUOD's three modules are built on supervised regression:
//!
//! * **Pseudo-Supervised Approximation** (paper §3.4) replaces a costly
//!   unsupervised detector's `decision_function` with a fast regressor
//!   trained on the detector's own training-set scores. The paper uses a
//!   random forest regressor ([`RandomForestRegressor`]) and recommends
//!   tree ensembles for scalability and interpretability.
//! * **Balanced Parallel Scheduling** (paper §3.5) forecasts model cost
//!   with a random forest regressor over dataset meta-features.
//!
//! [`DecisionTreeRegressor`] is the CART building block; [`Ridge`] and
//! [`KnnRegressor`] are additional approximators used in the ablation
//! studies.
//!
//! # Example
//!
//! ```
//! use suod_linalg::Matrix;
//! use suod_supervised::{Regressor, RandomForestRegressor};
//!
//! # fn main() -> Result<(), suod_supervised::Error> {
//! let x = Matrix::from_rows(&[vec![0.0], vec![1.0], vec![2.0], vec![3.0]]).unwrap();
//! let y = [0.0, 1.0, 2.0, 3.0];
//! let mut rf = RandomForestRegressor::new(20, 42);
//! rf.fit(&x, &y)?;
//! let pred = rf.predict(&x)?;
//! assert!((pred[3] - 3.0).abs() < 1.0);
//! # Ok(())
//! # }
//! ```

pub mod forest;
pub mod knn_regressor;
pub mod ridge;
pub mod tree;

pub use forest::RandomForestRegressor;
pub use knn_regressor::KnnRegressor;
pub use ridge::Ridge;
pub use tree::{DecisionTreeRegressor, TreeParams};

use std::fmt;
use suod_linalg::{Matrix, SnapshotReader, SnapshotWriter};

/// Errors produced by supervised model training and prediction.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum Error {
    /// `fit` inputs had inconsistent shapes.
    ShapeMismatch {
        /// Number of feature rows.
        rows: usize,
        /// Number of targets.
        targets: usize,
    },
    /// `predict` was called before `fit`.
    NotFitted(&'static str),
    /// A hyperparameter was outside its valid domain.
    InvalidParameter(String),
    /// Training data was empty.
    EmptyInput(&'static str),
    /// Propagated linear-algebra failure.
    Linalg(suod_linalg::Error),
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::ShapeMismatch { rows, targets } => write!(
                f,
                "feature rows ({rows}) and targets ({targets}) must match"
            ),
            Error::NotFitted(model) => write!(f, "{model} must be fitted before prediction"),
            Error::InvalidParameter(msg) => write!(f, "invalid parameter: {msg}"),
            Error::EmptyInput(what) => write!(f, "{what} received empty training data"),
            Error::Linalg(e) => write!(f, "linear algebra error: {e}"),
        }
    }
}

impl std::error::Error for Error {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Error::Linalg(e) => Some(e),
            _ => None,
        }
    }
}

impl From<suod_linalg::Error> for Error {
    fn from(e: suod_linalg::Error) -> Self {
        Error::Linalg(e)
    }
}

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, Error>;

/// A trainable regression model mapping feature rows to scalar targets.
///
/// All regressors in this crate are [`Send`] so the scheduler can move
/// them across worker threads.
pub trait Regressor: Send + Sync {
    /// Fits the model to `(x, y)` pairs.
    ///
    /// # Errors
    ///
    /// Implementations return [`Error::ShapeMismatch`] when `x.nrows() !=
    /// y.len()` and [`Error::EmptyInput`] when `x` has no rows.
    fn fit(&mut self, x: &Matrix, y: &[f64]) -> Result<()>;

    /// Predicts targets for each row of `x`.
    ///
    /// # Errors
    ///
    /// Returns [`Error::NotFitted`] before `fit` and
    /// [`Error::ShapeMismatch`]-like failures on dimension mismatch.
    fn predict(&self, x: &Matrix) -> Result<Vec<f64>>;

    /// Short human-readable model name for logs and reports.
    fn name(&self) -> &'static str;

    /// Per-feature importances normalized to sum to 1, when the model can
    /// provide them (tree ensembles do; linear/instance models return
    /// `None`). This surfaces the interpretability benefit the paper
    /// highlights for pseudo-supervised approximation (§3.4, Remark 1).
    fn feature_importances(&self) -> Option<Vec<f64>> {
        None
    }

    /// Appends the regressor's full state (parameters + fitted model) to
    /// a `suod-pool/1` snapshot body.
    ///
    /// Implementations write every field in a fixed order so that
    /// save → load → save is byte-identical; the matching reader is the
    /// type's `snapshot_read` associated function, dispatched by
    /// [`read_regressor`].
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidParameter`] when the regressor does not
    /// support snapshots.
    fn snapshot_write(&self, w: &mut SnapshotWriter) -> Result<()> {
        let _ = w;
        Err(Error::InvalidParameter(format!(
            "{} does not support snapshots",
            self.name()
        )))
    }
}

/// Writes `model` as a dispatchable snapshot record: name string followed
/// by a length-prefixed state body (mirror of the detectors-crate record).
///
/// # Errors
///
/// Propagates the regressor's [`Regressor::snapshot_write`] failure.
pub fn write_regressor(model: &dyn Regressor, w: &mut SnapshotWriter) -> Result<()> {
    w.write_str(model.name());
    let mut body = SnapshotWriter::new();
    model.snapshot_write(&mut body)?;
    w.write_bytes(body.as_bytes());
    Ok(())
}

/// Reads a regressor record written by [`write_regressor`], dispatching
/// on the stored name.
///
/// # Errors
///
/// Returns [`Error::InvalidParameter`] for unknown names, truncated
/// state, or trailing bytes left by a mismatched reader.
pub fn read_regressor(r: &mut SnapshotReader<'_>) -> Result<Box<dyn Regressor>> {
    let name = r.read_str()?;
    let body = r.read_bytes()?;
    let mut br = SnapshotReader::new(body);
    let model: Box<dyn Regressor> = match name.as_str() {
        "random_forest" => Box::new(RandomForestRegressor::snapshot_read(&mut br)?),
        "decision_tree" => Box::new(DecisionTreeRegressor::snapshot_read(&mut br)?),
        "ridge" => Box::new(Ridge::snapshot_read(&mut br)?),
        "knn_regressor" => Box::new(KnnRegressor::snapshot_read(&mut br)?),
        other => {
            return Err(Error::InvalidParameter(format!(
                "snapshot: unknown regressor name {other:?}"
            )))
        }
    };
    if !br.is_exhausted() {
        return Err(Error::InvalidParameter(format!(
            "snapshot: regressor {name:?} left {} trailing bytes",
            br.remaining()
        )));
    }
    Ok(model)
}

pub(crate) fn check_fit_inputs(x: &Matrix, y: &[f64]) -> Result<()> {
    if x.nrows() == 0 {
        return Err(Error::EmptyInput("Regressor::fit"));
    }
    if x.nrows() != y.len() {
        return Err(Error::ShapeMismatch {
            rows: x.nrows(),
            targets: y.len(),
        });
    }
    Ok(())
}
