//! Quickstart: the paper's API demo, end to end.
//!
//! Builds a small heterogeneous pool, enables all three SUOD modules,
//! fits on a synthetic analog of the `cardio` benchmark, and scores a
//! held-out split.
//!
//! Run with:
//! ```sh
//! cargo run --release -p suod --example quickstart
//! ```

use suod::prelude::*;
use suod_datasets::{registry, train_test_split};
use suod_metrics::{precision_at_n, roc_auc};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A synthetic analog of the paper's `cardio` benchmark (1831 x 21).
    let ds = registry::load("cardio", 42)?;
    let split = train_test_split(&ds, 0.4, 42)?;
    println!(
        "dataset: {} ({} train / {} test rows, {} features, {:.1}% outliers)",
        ds.name,
        split.x_train.nrows(),
        split.x_test.nrows(),
        ds.n_features(),
        100.0 * ds.contamination()
    );

    // Initialize a group of OD models (mirrors the paper's API demo).
    let base_estimators = vec![
        ModelSpec::Lof {
            n_neighbors: 40,
            metric: Metric::Euclidean,
        },
        ModelSpec::Abod { n_neighbors: 20 },
        ModelSpec::Lof {
            n_neighbors: 60,
            metric: Metric::Euclidean,
        },
        ModelSpec::Knn {
            n_neighbors: 25,
            method: KnnMethod::Largest,
        },
        ModelSpec::IForest {
            n_estimators: 100,
            max_features: 0.9,
        },
        ModelSpec::Hbos {
            n_bins: 20,
            tolerance: 0.3,
        },
    ];

    // Initialize SUOD with module flags: random projection (data level),
    // pseudo-supervised approximation (model level), balanced parallel
    // scheduling (execution level).
    let mut clf = Suod::builder()
        .base_estimators(base_estimators)
        .with_projection(true)
        .projection_variant(JlVariant::Circulant)
        .with_approximation(true)
        .with_bps(true)
        .n_workers(2)
        .contamination(ds.contamination().min(0.5))
        .seed(42)
        .build()?;

    // Fit and make predictions.
    clf.fit(&split.x_train)?;
    let y_test_scores = clf.combined_scores(&split.x_test)?;
    let y_test_labels = clf.predict(&split.x_test)?;

    let auc = roc_auc(&split.y_test, &y_test_scores)?;
    let pan = precision_at_n(&split.y_test, &y_test_scores, None)?;
    println!("test ROC-AUC : {auc:.4}");
    println!("test P@N     : {pan:.4}");
    println!(
        "flagged      : {}/{} samples",
        y_test_labels.iter().sum::<i32>(),
        y_test_labels.len()
    );
    let diag = clf.diagnostics().expect("fit records diagnostics");
    println!("projected    : {:?}", diag.projected());
    println!("approximated : {:?}", diag.approximated());
    println!(
        "fit wall     : {:.3}s across {} workers ({} steals)",
        diag.execution().wall_time.as_secs_f64(),
        diag.execution().worker_busy.len(),
        diag.execution().steals
    );
    Ok(())
}
