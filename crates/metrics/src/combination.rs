//! Ensemble score combination (Aggarwal & Sathe 2017).
//!
//! The full-system evaluation (Table 4) reports two combined scores over
//! the heterogeneous model pool: the **average** of standardized base
//! scores (`Avg_`) and the **maximum of average** two-phase scheme
//! (`MOA_`). `maximization` and `aom` (average of maximum) complete the
//! standard family.
//!
//! All combiners operate on a score matrix of shape `n_samples x n_models`
//! and z-score standardize each model's column first (the PyOD convention),
//! so models with different score scales combine meaningfully.
//!
//! **Absent-column convention:** a column that is entirely NaN marks a
//! quarantined/absent model and is silently skipped — the survivors
//! combine as if the model never existed. A column mixing finite and
//! non-finite values is corrupt rather than absent and is rejected with
//! a typed [`Error::NonFinite`].

use crate::{Error, Result};
use suod_linalg::stats::zscore_in_place;
use suod_linalg::Matrix;

/// Which combination rule to apply; see the free functions for semantics.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Combiner {
    /// Mean of standardized scores.
    #[default]
    Average,
    /// Max of standardized scores.
    Maximization,
    /// Average-of-maximum over buckets.
    Aom,
    /// Maximum-of-average over buckets (the paper's `MOA_`).
    Moa,
}

impl Combiner {
    /// Applies this rule. For [`Combiner::Aom`] / [`Combiner::Moa`] the
    /// model columns are split into `n_buckets` contiguous buckets.
    ///
    /// # Errors
    ///
    /// See [`average`] / [`aom`] for conditions.
    pub fn combine(&self, scores: &Matrix, n_buckets: usize) -> Result<Vec<f64>> {
        match self {
            Combiner::Average => average(scores),
            Combiner::Maximization => maximization(scores),
            Combiner::Aom => aom(scores, n_buckets),
            Combiner::Moa => moa(scores, n_buckets),
        }
    }
}

/// Z-scores the usable model columns, dropping absent ones.
///
/// A column that is **entirely** NaN marks a quarantined model (the
/// convention the `suod` orchestrator uses for models excluded after a
/// fit failure) and is silently skipped — the survivors combine as if the
/// model never existed. A column that mixes finite and non-finite entries
/// is corrupt rather than absent and is rejected with
/// [`Error::NonFinite`].
fn standardized_columns(scores: &Matrix) -> Result<Matrix> {
    if scores.nrows() == 0 || scores.ncols() == 0 {
        return Err(Error::Empty("score combination"));
    }
    let mut active: Vec<(usize, Vec<f64>)> = Vec::with_capacity(scores.ncols());
    for c in 0..scores.ncols() {
        let col = scores.col(c);
        let n_finite = col.iter().filter(|v| v.is_finite()).count();
        if n_finite == col.len() {
            active.push((c, col));
        } else if n_finite != 0 {
            return Err(Error::NonFinite(
                "score combination: column mixes finite and non-finite values",
            ));
        }
        // n_finite == 0: quarantined/absent column, skip entirely.
    }
    if active.is_empty() {
        return Err(Error::Undefined("score combination with no finite columns"));
    }
    let mut out = Matrix::zeros(scores.nrows(), active.len());
    for (j, (_, col)) in active.iter_mut().enumerate() {
        zscore_in_place(col);
        for (r, &v) in col.iter().enumerate() {
            out.set(r, j, v);
        }
    }
    Ok(out)
}

/// Mean of standardized base-model scores per sample.
///
/// All-NaN columns mark quarantined models and are skipped (the
/// absent-column convention described in the module docs).
///
/// # Errors
///
/// Returns [`Error::Empty`] for an empty score matrix,
/// [`Error::Undefined`] when every column is absent, and
/// [`Error::NonFinite`] for columns mixing finite and non-finite values.
pub fn average(scores: &Matrix) -> Result<Vec<f64>> {
    let z = standardized_columns(scores)?;
    Ok(z.rows_iter()
        .map(|row| row.iter().sum::<f64>() / row.len() as f64)
        .collect())
}

/// Maximum of standardized base-model scores per sample.
///
/// All-NaN (quarantined) columns are skipped, like [`average`].
///
/// # Errors
///
/// Same conditions as [`average`].
pub fn maximization(scores: &Matrix) -> Result<Vec<f64>> {
    let z = standardized_columns(scores)?;
    Ok(z.rows_iter()
        .map(|row| row.iter().copied().fold(f64::NEG_INFINITY, f64::max))
        .collect())
}

fn bucket_ranges(n_models: usize, n_buckets: usize) -> Result<Vec<(usize, usize)>> {
    if n_buckets == 0 {
        return Err(Error::Undefined("bucket combination with 0 buckets"));
    }
    let n_buckets = n_buckets.min(n_models);
    let base = n_models / n_buckets;
    let extra = n_models % n_buckets;
    let mut ranges = Vec::with_capacity(n_buckets);
    let mut start = 0;
    for b in 0..n_buckets {
        let len = base + usize::from(b < extra);
        ranges.push((start, start + len));
        start += len;
    }
    Ok(ranges)
}

/// Average-of-maximum: models are split into contiguous buckets, the max is
/// taken within each bucket, and the bucket maxima are averaged.
///
/// All-NaN (quarantined) columns are dropped **before** bucketing, so
/// buckets partition the surviving models.
///
/// # Errors
///
/// Same conditions as [`average`], plus [`Error::Undefined`] when
/// `n_buckets == 0`.
pub fn aom(scores: &Matrix, n_buckets: usize) -> Result<Vec<f64>> {
    let z = standardized_columns(scores)?;
    let ranges = bucket_ranges(z.ncols(), n_buckets)?;
    Ok(z.rows_iter()
        .map(|row| {
            ranges
                .iter()
                .map(|&(s, e)| row[s..e].iter().copied().fold(f64::NEG_INFINITY, f64::max))
                .sum::<f64>()
                / ranges.len() as f64
        })
        .collect())
}

/// Maximum-of-average: models are split into contiguous buckets, the mean is
/// taken within each bucket, and the maximum bucket mean is reported. This
/// is the `MOA_` combiner of Table 4.
///
/// All-NaN (quarantined) columns are dropped **before** bucketing, so
/// buckets partition the surviving models.
///
/// # Errors
///
/// Same conditions as [`average`], plus [`Error::Undefined`] when
/// `n_buckets == 0`.
pub fn moa(scores: &Matrix, n_buckets: usize) -> Result<Vec<f64>> {
    let z = standardized_columns(scores)?;
    let ranges = bucket_ranges(z.ncols(), n_buckets)?;
    Ok(z.rows_iter()
        .map(|row| {
            ranges
                .iter()
                .map(|&(s, e)| row[s..e].iter().sum::<f64>() / (e - s) as f64)
                .fold(f64::NEG_INFINITY, f64::max)
        })
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;

    /// 3 samples x 2 models with identical standardized columns.
    fn symmetric_scores() -> Matrix {
        Matrix::from_rows(&[vec![0.0, 0.0], vec![1.0, 10.0], vec![2.0, 20.0]]).unwrap()
    }

    #[test]
    fn average_of_identical_rankings() {
        let avg = average(&symmetric_scores()).unwrap();
        // Both columns standardize to the same z-scores, so the average
        // equals the per-column z-score.
        assert!(avg[0] < avg[1] && avg[1] < avg[2]);
        assert!((avg[1] - 0.0).abs() < 1e-12);
    }

    #[test]
    fn maximization_upper_bounds_average() {
        let s = Matrix::from_rows(&[vec![0.0, 5.0], vec![1.0, 3.0], vec![2.0, 1.0]]).unwrap();
        let avg = average(&s).unwrap();
        let mx = maximization(&s).unwrap();
        for (a, m) in avg.iter().zip(&mx) {
            assert!(m >= a);
        }
    }

    #[test]
    fn single_bucket_moa_equals_average() {
        let s = symmetric_scores();
        let m = moa(&s, 1).unwrap();
        let a = average(&s).unwrap();
        for (x, y) in m.iter().zip(&a) {
            assert!((x - y).abs() < 1e-12);
        }
    }

    #[test]
    fn per_model_buckets_moa_equals_maximization() {
        let s = Matrix::from_rows(&[vec![0.0, 5.0], vec![1.0, 3.0], vec![2.0, 1.0]]).unwrap();
        let m = moa(&s, 2).unwrap();
        let mx = maximization(&s).unwrap();
        for (x, y) in m.iter().zip(&mx) {
            assert!((x - y).abs() < 1e-12);
        }
    }

    #[test]
    fn single_bucket_aom_equals_maximization() {
        let s = Matrix::from_rows(&[vec![0.0, 5.0], vec![1.0, 3.0]]).unwrap();
        let a = aom(&s, 1).unwrap();
        let mx = maximization(&s).unwrap();
        for (x, y) in a.iter().zip(&mx) {
            assert!((x - y).abs() < 1e-12);
        }
    }

    #[test]
    fn bucket_ranges_cover_all_models() {
        let ranges = bucket_ranges(10, 3).unwrap();
        assert_eq!(ranges, vec![(0, 4), (4, 7), (7, 10)]);
        let ranges = bucket_ranges(2, 5).unwrap(); // clamped
        assert_eq!(ranges.len(), 2);
    }

    #[test]
    fn zero_buckets_undefined() {
        assert!(aom(&symmetric_scores(), 0).is_err());
        assert!(moa(&symmetric_scores(), 0).is_err());
    }

    #[test]
    fn empty_scores_error() {
        assert!(average(&Matrix::zeros(0, 3)).is_err());
        assert!(maximization(&Matrix::zeros(3, 0)).is_err());
    }

    #[test]
    fn all_nan_columns_skipped_as_quarantined() {
        // Column 1 is fully NaN (a quarantined model); the combiners must
        // produce exactly what the survivor columns alone produce.
        let with_gap = Matrix::from_rows(&[
            vec![0.0, f64::NAN, 0.0],
            vec![1.0, f64::NAN, 10.0],
            vec![2.0, f64::NAN, 20.0],
        ])
        .unwrap();
        let survivors =
            Matrix::from_rows(&[vec![0.0, 0.0], vec![1.0, 10.0], vec![2.0, 20.0]]).unwrap();
        assert_eq!(average(&with_gap).unwrap(), average(&survivors).unwrap());
        assert_eq!(
            maximization(&with_gap).unwrap(),
            maximization(&survivors).unwrap()
        );
        assert_eq!(aom(&with_gap, 2).unwrap(), aom(&survivors, 2).unwrap());
        assert_eq!(moa(&with_gap, 2).unwrap(), moa(&survivors, 2).unwrap());
    }

    #[test]
    fn mixed_non_finite_column_rejected() {
        let s = Matrix::from_rows(&[vec![0.0, f64::NAN], vec![1.0, 0.5]]).unwrap();
        assert!(matches!(average(&s).unwrap_err(), Error::NonFinite(_)));
    }

    #[test]
    fn all_columns_absent_undefined() {
        let s = Matrix::from_rows(&[vec![f64::NAN], vec![f64::NAN]]).unwrap();
        assert!(matches!(average(&s).unwrap_err(), Error::Undefined(_)));
    }

    #[test]
    fn combiner_enum_dispatch() {
        let s = symmetric_scores();
        assert_eq!(
            Combiner::Average.combine(&s, 2).unwrap(),
            average(&s).unwrap()
        );
        assert_eq!(Combiner::Moa.combine(&s, 2).unwrap(), moa(&s, 2).unwrap());
        assert_eq!(Combiner::Aom.combine(&s, 2).unwrap(), aom(&s, 2).unwrap());
        assert_eq!(
            Combiner::Maximization.combine(&s, 2).unwrap(),
            maximization(&s).unwrap()
        );
    }
}
