//! Sorting, ranking and top-k helpers.
//!
//! The BPS scheduler (§3.5 of the paper) works on *ranks* of predicted model
//! costs rather than raw times — ranks transfer across hardware. Metrics
//! (ROC via Mann–Whitney, Spearman correlation, P@N) also reduce to ranking
//! operations, so the primitives live here and are shared.

/// Indices that would sort `xs` ascending (stable for ties).
///
/// # Example
///
/// ```
/// let order = suod_linalg::rank::argsort(&[3.0, 1.0, 2.0]);
/// assert_eq!(order, vec![1, 2, 0]);
/// ```
pub fn argsort(xs: &[f64]) -> Vec<usize> {
    let mut idx: Vec<usize> = (0..xs.len()).collect();
    idx.sort_by(|&a, &b| {
        xs[a]
            .partial_cmp(&xs[b])
            .expect("argsort requires non-NaN values")
    });
    idx
}

/// Indices that would sort `xs` descending (stable for ties).
pub fn argsort_desc(xs: &[f64]) -> Vec<usize> {
    let mut idx = argsort(xs);
    idx.reverse();
    idx
}

/// 1-based ranks with ties resolved to the average rank (the convention
/// used by Spearman's correlation).
///
/// # Example
///
/// ```
/// let r = suod_linalg::rank::average_ranks(&[10.0, 20.0, 20.0]);
/// assert_eq!(r, vec![1.0, 2.5, 2.5]);
/// ```
pub fn average_ranks(xs: &[f64]) -> Vec<f64> {
    let n = xs.len();
    let order = argsort(xs);
    let mut ranks = vec![0.0; n];
    let mut i = 0;
    while i < n {
        let mut j = i;
        // Extend the tie group.
        while j + 1 < n && xs[order[j + 1]] == xs[order[i]] {
            j += 1;
        }
        let avg = (i + j) as f64 / 2.0 + 1.0;
        for &k in &order[i..=j] {
            ranks[k] = avg;
        }
        i = j + 1;
    }
    ranks
}

/// 1-based ordinal ranks (ties broken by position, no averaging). Rank 1 is
/// the smallest value. This is the ranking the BPS cost heuristic uses.
pub fn ordinal_ranks(xs: &[f64]) -> Vec<usize> {
    let order = argsort(xs);
    let mut ranks = vec![0usize; xs.len()];
    for (r, &i) in order.iter().enumerate() {
        ranks[i] = r + 1;
    }
    ranks
}

/// Indices of the `k` largest values, descending. `k` is clamped to the
/// slice length.
pub fn top_k_indices(xs: &[f64], k: usize) -> Vec<usize> {
    let mut idx = argsort_desc(xs);
    idx.truncate(k.min(xs.len()));
    idx
}

/// The `k`-th largest value (1-based); `None` when `xs` is empty or
/// `k == 0` or `k > xs.len()`.
pub fn kth_largest(xs: &[f64], k: usize) -> Option<f64> {
    if k == 0 || k > xs.len() {
        return None;
    }
    let mut v = xs.to_vec();
    let pos = v.len() - k;
    v.select_nth_unstable_by(pos, |a, b| a.partial_cmp(b).expect("non-NaN"));
    Some(v[pos])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn argsort_basic() {
        assert_eq!(argsort(&[2.0, 0.0, 1.0]), vec![1, 2, 0]);
        assert_eq!(argsort_desc(&[2.0, 0.0, 1.0]), vec![0, 2, 1]);
        assert!(argsort(&[]).is_empty());
    }

    #[test]
    fn argsort_stable_on_ties() {
        assert_eq!(argsort(&[1.0, 1.0, 0.0]), vec![2, 0, 1]);
    }

    #[test]
    fn average_ranks_no_ties() {
        assert_eq!(average_ranks(&[30.0, 10.0, 20.0]), vec![3.0, 1.0, 2.0]);
    }

    #[test]
    fn average_ranks_with_ties() {
        assert_eq!(
            average_ranks(&[1.0, 2.0, 2.0, 3.0]),
            vec![1.0, 2.5, 2.5, 4.0]
        );
        assert_eq!(average_ranks(&[5.0, 5.0, 5.0]), vec![2.0, 2.0, 2.0]);
    }

    #[test]
    fn ordinal_ranks_basic() {
        assert_eq!(ordinal_ranks(&[0.3, 0.1, 0.2]), vec![3, 1, 2]);
    }

    #[test]
    fn top_k() {
        assert_eq!(top_k_indices(&[1.0, 5.0, 3.0], 2), vec![1, 2]);
        assert_eq!(top_k_indices(&[1.0], 10), vec![0]);
    }

    #[test]
    fn kth_largest_values() {
        let xs = [4.0, 1.0, 3.0, 2.0];
        assert_eq!(kth_largest(&xs, 1), Some(4.0));
        assert_eq!(kth_largest(&xs, 4), Some(1.0));
        assert_eq!(kth_largest(&xs, 5), None);
        assert_eq!(kth_largest(&xs, 0), None);
        assert_eq!(kth_largest(&[], 1), None);
    }
}
