//! End-to-end contracts for the approximate HNSW neighbor backend.
//!
//! `NeighborBackend::Hnsw` changes *how* the proximity detectors find
//! their neighbours, with a documented accuracy budget instead of a
//! bitwise guarantee: recall@k >= 0.95 at the default `ef_search` across
//! qualitatively different data shapes, detection quality (ROC-AUC)
//! within 0.02 of the exact path for all five proximity detectors, and —
//! like every other backend — bit-identical scores across worker counts
//! for a fixed seed. Ineligible inputs (small n, non-Euclidean metrics)
//! must fall back to the exact path and say so in `FitDiagnostics`.

use suod::prelude::*;
use suod_linalg::{DistanceMetric, KnnIndex, Matrix};
use suod_metrics::roc_auc;

/// splitmix64 — the workspace's standard seeded generator.
fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Uniform draw in [0, 1).
fn unit(seed: u64, i: u64) -> f64 {
    (splitmix64(seed ^ splitmix64(i)) >> 11) as f64 / (1u64 << 53) as f64
}

/// Three well-separated clusters with per-cluster jitter.
fn clustered(n: usize, d: usize, seed: u64) -> Matrix {
    let mut rows = Vec::with_capacity(n);
    for i in 0..n {
        let c = (i % 3) as f64 * 12.0;
        let row: Vec<f64> = (0..d)
            .map(|j| c + unit(seed, (i * d + j) as u64) * 2.0 - 1.0)
            .collect();
        rows.push(row);
    }
    Matrix::from_rows(&rows).expect("non-empty")
}

/// Uniform noise in the unit cube — no cluster structure to exploit.
fn uniform(n: usize, d: usize, seed: u64) -> Matrix {
    let rows: Vec<Vec<f64>> = (0..n)
        .map(|i| {
            (0..d)
                .map(|j| unit(seed, (i * d + j) as u64) * 10.0)
                .collect()
        })
        .collect();
    Matrix::from_rows(&rows).expect("non-empty")
}

/// Every point repeated four times: distance ties everywhere, the
/// adversarial case for ordered tie-breaking.
fn duplicate_heavy(n: usize, d: usize, seed: u64) -> Matrix {
    let uniques = uniform(n.div_ceil(4), d, seed);
    let rows: Vec<Vec<f64>> = (0..n).map(|i| uniques.row(i / 4).to_vec()).collect();
    Matrix::from_rows(&rows).expect("non-empty")
}

/// Inlier blob plus `n_out` far-away planted outliers; returns labels.
fn with_outliers(n: usize, d: usize, n_out: usize, seed: u64) -> (Matrix, Vec<i32>) {
    let mut rows = Vec::with_capacity(n);
    let mut y = vec![0; n];
    for (i, label) in y.iter_mut().enumerate() {
        let outlier = i >= n - n_out;
        // Outliers scatter across a huge box (isolated from the blob AND
        // from each other, so density-based detectors see them too);
        // inliers huddle near the origin.
        let spread = if outlier { 80.0 } else { 1.5 };
        let row: Vec<f64> = (0..d)
            .map(|j| (unit(seed, (i * d + j) as u64) - 0.5) * spread)
            .collect();
        if outlier {
            *label = 1;
        }
        rows.push(row);
    }
    (Matrix::from_rows(&rows).expect("non-empty"), y)
}

/// HNSW engaged regardless of input size (tests use modest n for speed).
fn hnsw_always() -> NeighborBackend {
    NeighborBackend::Hnsw(HnswParams {
        min_rows: 0,
        ..HnswParams::default()
    })
}

/// Leave-one-out recall@k of the HNSW backend against the exact lists,
/// counting a retrieved neighbour as correct when it is at least as close
/// as the true k-th neighbour (the fair definition under distance ties).
fn self_recall_at_k(x: &Matrix, k: usize) -> f64 {
    let exact = KnnIndex::build(x, DistanceMetric::Euclidean).expect("non-empty");
    let truth = exact.self_query_batch(k, 1);
    let approx_cfg = KernelConfig {
        neighbor: hnsw_always(),
        ..KernelConfig::default()
    };
    let approx = KnnIndex::build_with(x, DistanceMetric::Euclidean, approx_cfg).expect("non-empty");
    assert!(approx.uses_hnsw(), "hnsw backend must engage");
    let found = approx.self_query_batch(k, 1);
    let mut hits = 0usize;
    let mut total = 0usize;
    for (t, f) in truth.iter().zip(&found) {
        let radius = t.last().expect("k >= 1").distance;
        total += t.len();
        hits += f
            .iter()
            .filter(|n| n.distance <= radius * (1.0 + 1e-12) + 1e-12)
            .count();
    }
    hits as f64 / total as f64
}

#[test]
fn recall_holds_on_clustered_data() {
    let r = self_recall_at_k(&clustered(1400, 8, 11), 10);
    assert!(r >= 0.95, "clustered recall@10 {r} < 0.95");
}

#[test]
fn recall_holds_on_uniform_data() {
    let r = self_recall_at_k(&uniform(1400, 8, 23), 10);
    assert!(r >= 0.95, "uniform recall@10 {r} < 0.95");
}

#[test]
fn recall_holds_on_duplicate_heavy_data() {
    let r = self_recall_at_k(&duplicate_heavy(1400, 6, 37), 10);
    assert!(r >= 0.95, "duplicate-heavy recall@10 {r} < 0.95");
}

fn proximity_pool() -> Vec<ModelSpec> {
    vec![
        ModelSpec::Knn {
            n_neighbors: 10,
            method: KnnMethod::Largest,
        },
        ModelSpec::Lof {
            n_neighbors: 12,
            metric: Metric::Euclidean,
        },
        ModelSpec::Loop { n_neighbors: 10 },
        ModelSpec::Cof { n_neighbors: 10 },
        ModelSpec::Abod { n_neighbors: 8 },
    ]
}

fn fit_scores(backend: NeighborBackend, n_workers: usize, x: &Matrix) -> (Matrix, u64) {
    let mut model = Suod::builder()
        .base_estimators(proximity_pool())
        .kernel(KernelConfig::default().with_neighbor(backend))
        .n_workers(n_workers)
        .with_approximation(false)
        .seed(7)
        .build()
        .expect("valid config");
    model.fit(x).expect("fit succeeds");
    let fallbacks = model
        .diagnostics()
        .expect("fit records diagnostics")
        .ann_fallbacks();
    (model.training_scores().expect("fitted"), fallbacks)
}

#[test]
fn roc_auc_drift_below_two_points_for_all_five_detectors() {
    // n above DEFAULT_HNSW_MIN_ROWS so the default hnsw parameters
    // engage exactly as a user would see them.
    let (x, y) = with_outliers(2300, 6, 40, 5);
    let (exact, _) = fit_scores(NeighborBackend::Exact, 1, &x);
    let (approx, fallbacks) = fit_scores(NeighborBackend::Hnsw(HnswParams::default()), 1, &x);
    assert_eq!(fallbacks, 0, "hnsw must engage above min_rows");
    assert_eq!(exact.ncols(), 5);
    for m in 0..exact.ncols() {
        let col = |s: &Matrix| -> Vec<f64> { (0..s.nrows()).map(|i| s.get(i, m)).collect() };
        let auc_exact = roc_auc(&y, &col(&exact)).expect("labelled");
        let auc_approx = roc_auc(&y, &col(&approx)).expect("labelled");
        assert!(
            auc_exact > 0.75,
            "detector {m}: planted outliers must be detectable (exact auc {auc_exact})"
        );
        assert!(
            (auc_exact - auc_approx).abs() < 0.02,
            "detector {m}: exact auc {auc_exact} vs hnsw auc {auc_approx}"
        );
    }
}

#[test]
fn hnsw_scores_bit_identical_across_worker_counts() {
    let (x, _) = with_outliers(2300, 6, 40, 9);
    let (s1, _) = fit_scores(NeighborBackend::Hnsw(HnswParams::default()), 1, &x);
    for workers in [2usize, 8] {
        let (sw, _) = fit_scores(NeighborBackend::Hnsw(HnswParams::default()), workers, &x);
        assert_eq!(
            s1.as_slice(),
            sw.as_slice(),
            "hnsw training scores differ at n_workers={workers}"
        );
    }
}

#[test]
fn small_inputs_fall_back_to_exact_with_visible_counter() {
    let (x, _) = with_outliers(300, 5, 8, 3);
    let (exact, exact_fallbacks) = fit_scores(NeighborBackend::Exact, 1, &x);
    // 300 rows is far below DEFAULT_HNSW_MIN_ROWS: the request must
    // route to the exact path (bitwise-equal scores) and count it.
    let (approx, fallbacks) = fit_scores(NeighborBackend::Hnsw(HnswParams::default()), 1, &x);
    assert_eq!(exact_fallbacks, 0);
    assert!(fallbacks > 0, "exactness fallback must be counted");
    assert_eq!(
        exact.as_slice(),
        approx.as_slice(),
        "fallen-back hnsw must reproduce exact scores bitwise"
    );
}

#[test]
fn non_euclidean_metrics_fall_back_to_exact() {
    let x = uniform(2200, 4, 41);
    let pool = vec![ModelSpec::Lof {
        n_neighbors: 10,
        metric: Metric::Manhattan,
    }];
    let fit = |backend: NeighborBackend| {
        let mut model = Suod::builder()
            .base_estimators(pool.clone())
            .kernel(KernelConfig::default().with_neighbor(backend))
            .with_approximation(false)
            .seed(3)
            .build()
            .expect("valid config");
        model.fit(&x).expect("fit succeeds");
        let fallbacks = model.diagnostics().expect("diagnostics").ann_fallbacks();
        (model.training_scores().expect("fitted"), fallbacks)
    };
    let (exact, _) = fit(NeighborBackend::Exact);
    let (approx, fallbacks) = fit(NeighborBackend::Hnsw(HnswParams {
        min_rows: 0,
        ..HnswParams::default()
    }));
    assert!(fallbacks > 0, "manhattan must trip the exactness fallback");
    assert_eq!(exact.as_slice(), approx.as_slice());
}

#[test]
#[allow(deprecated)] // the deprecated delegates are the contract under test
fn ef_search_knob_reaches_the_index_through_the_builder() {
    // The canonical spelling, plus the deprecated ef_search() /
    // neighbor_backend() delegates composing in either order — all
    // three must resolve to the same index configuration.
    let b0 = Suod::builder().kernel(KernelConfig::default().with_neighbor(NeighborBackend::Hnsw(
        HnswParams::default().with_ef_search(128),
    )));
    let b1 = Suod::builder()
        .ef_search(128)
        .neighbor_backend(NeighborBackend::Hnsw(HnswParams::default()));
    let b2 = Suod::builder()
        .neighbor_backend(NeighborBackend::Hnsw(HnswParams::default()))
        .ef_search(128);
    for builder in [b0, b1, b2] {
        let mut model = builder
            .base_estimators(vec![ModelSpec::Knn {
                n_neighbors: 5,
                method: KnnMethod::Mean,
            }])
            .with_approximation(false)
            .build()
            .expect("valid config");
        let (x, _) = with_outliers(400, 4, 10, 1);
        model.fit(&x).expect("fit succeeds");
        let features = model.diagnostics().expect("diagnostics").cpu_features();
        assert_eq!(format!("{}", features.neighbor), "hnsw(ef_search=128)");
    }
}
