//! Property-based tests for the projection module.

use proptest::prelude::*;
use suod_linalg::{DistanceMetric, Matrix};
use suod_projection::{
    IdentityProjector, JlProjector, JlVariant, PcaProjector, Projector, RandomSelectProjector,
};

fn data_matrix() -> impl Strategy<Value = Matrix> {
    (4usize..20, 4usize..24).prop_flat_map(|(n, d)| {
        proptest::collection::vec(-100.0f64..100.0, n * d)
            .prop_map(move |v| Matrix::from_vec(n, d, v).expect("sized"))
    })
}

fn projectors(k: usize, seed: u64) -> Vec<Box<dyn Projector>> {
    let mut out: Vec<Box<dyn Projector>> = vec![
        Box::new(IdentityProjector::new()),
        Box::new(PcaProjector::new(k).expect("k >= 1")),
        Box::new(RandomSelectProjector::new(k, seed).expect("k >= 1")),
    ];
    for variant in JlVariant::all() {
        out.push(Box::new(
            JlProjector::new(variant, k, seed).expect("k >= 1"),
        ));
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn output_shape_correct(x in data_matrix(), seed in 0u64..32) {
        let k = (x.ncols() / 2).max(1);
        for mut p in projectors(k, seed) {
            p.fit(&x).unwrap();
            let z = p.transform(&x).unwrap();
            prop_assert_eq!(z.nrows(), x.nrows(), "{}", p.name());
            if p.name() == "original" {
                prop_assert_eq!(z.ncols(), x.ncols());
            } else {
                prop_assert_eq!(z.ncols(), k, "{}", p.name());
            }
            prop_assert!(z.as_slice().iter().all(|v| v.is_finite()), "{}", p.name());
        }
    }

    #[test]
    fn projection_is_linear(x in data_matrix(), seed in 0u64..32) {
        // JL transform: f(a) + f(b) == f(a + b) row-wise.
        let k = (x.ncols() * 2 / 3).max(1);
        for variant in JlVariant::all() {
            let mut p = JlProjector::new(variant, k, seed).unwrap();
            p.fit(&x).unwrap();
            let z = p.transform(&x).unwrap();
            let doubled = x.map(|v| 2.0 * v);
            let z2 = p.transform(&doubled).unwrap();
            for (a, b) in z.as_slice().iter().zip(z2.as_slice()) {
                prop_assert!((2.0 * a - b).abs() < 1e-7 * (1.0 + b.abs()));
            }
        }
    }

    #[test]
    fn transform_deterministic_after_fit(x in data_matrix(), seed in 0u64..32) {
        let k = (x.ncols() / 2).max(1);
        for mut p in projectors(k, seed) {
            p.fit(&x).unwrap();
            prop_assert_eq!(p.transform(&x).unwrap(), p.transform(&x).unwrap());
        }
    }

    #[test]
    fn jl_distance_preservation_in_expectation(
        seeds in proptest::collection::vec(0u64..10_000, 24),
    ) {
        // Averaged over independent draws, projected distances concentrate
        // around the originals (JL lemma in expectation). Fixed geometry,
        // random projections.
        let x = Matrix::from_rows(&[
            vec![0.0; 32],
            (0..32).map(|i| (i as f64 * 0.37).sin()).collect(),
            (0..32).map(|i| (i as f64 * 0.11).cos() * 3.0).collect(),
        ]).unwrap();
        let orig = suod_linalg::pairwise_distances(&x, &x, DistanceMetric::Euclidean).unwrap();
        for variant in JlVariant::all() {
            let mut ratio_sum = 0.0;
            let mut count = 0.0;
            for &s in &seeds {
                let mut p = JlProjector::new(variant, 24, s).unwrap();
                p.fit(&x).unwrap();
                let z = p.transform(&x).unwrap();
                let proj = suod_linalg::pairwise_distances(&z, &z, DistanceMetric::Euclidean).unwrap();
                for i in 0..3 {
                    for j in (i + 1)..3 {
                        ratio_sum += proj.get(i, j) / orig.get(i, j);
                        count += 1.0;
                    }
                }
            }
            let mean_ratio = ratio_sum / count;
            // Structured variants (circulant/toeplitz) reuse one Gaussian
            // row across all output coordinates, so their ratio estimator
            // has far heavier tails than the i.i.d. constructions.
            let tol = match variant {
                JlVariant::Basic | JlVariant::Discrete => 0.35,
                JlVariant::Circulant | JlVariant::Toeplitz => 0.55,
            };
            prop_assert!(
                (mean_ratio - 1.0).abs() < tol,
                "{variant:?}: mean distance ratio {mean_ratio}"
            );
        }
    }

    #[test]
    fn train_and_test_share_the_matrix(x in data_matrix(), seed in 0u64..32) {
        // Transforming the same rows in one batch or two batches must agree
        // (the retained-W property Algorithm 1 depends on).
        prop_assume!(x.nrows() >= 4);
        let k = (x.ncols() / 2).max(1);
        for mut p in projectors(k, seed) {
            p.fit(&x).unwrap();
            let whole = p.transform(&x).unwrap();
            let top = x.select_rows(&(0..2).collect::<Vec<_>>());
            let z_top = p.transform(&top).unwrap();
            for r in 0..2 {
                for c in 0..z_top.ncols() {
                    prop_assert!((whole.get(r, c) - z_top.get(r, c)).abs() < 1e-9, "{}", p.name());
                }
            }
        }
    }
}
