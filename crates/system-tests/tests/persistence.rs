//! End-to-end contracts for the `suod-pool/1` snapshot format and the
//! serving layer's zero-downtime hot reload.
//!
//! The persistence contract: `load(save(pool))` scores **bitwise
//! identically** to the original at any worker count, `save → load →
//! save` is **byte-identical** (the format has one canonical encoding),
//! corruption and version skew surface as typed errors (never panics),
//! and the committed golden fixture keeps loading forever — a snapshot
//! written by an old build must open under every future one. On the
//! serving side: a reload under concurrent submission drops zero
//! requests, and every answered batch is bitwise-equal to one of the
//! two pools' sequential scores.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use suod::prelude::*;
use suod_serve::{ManualClock, ScoreOutcome, ScoreService, ServeConfig, SubmitError};

/// 120 x 4 synthetic grid with planted outliers — big enough for every
/// detector family, small enough to fit dozens of pools per test.
fn data() -> Matrix {
    let mut rows: Vec<Vec<f64>> = (0..117)
        .map(|i| {
            vec![
                (i % 9) as f64 * 0.3,
                (i / 9) as f64 * 0.25,
                ((i * 5) % 11) as f64 * 0.1,
                ((i * 7) % 13) as f64 * 0.1,
            ]
        })
        .collect();
    rows.push(vec![11.0, 11.0, 11.0, 11.0]);
    rows.push(vec![-8.0, 12.0, -8.0, 12.0]);
    rows.push(vec![12.0, -8.0, 12.0, -8.0]);
    Matrix::from_rows(&rows).unwrap()
}

/// Query rows disjoint from the training grid.
fn queries() -> Matrix {
    let rows: Vec<Vec<f64>> = (0..23)
        .map(|i| {
            let k = i as f64;
            vec![
                (k * 0.31) % 2.4,
                (k * 0.47) % 2.1,
                (k * 0.59) % 1.0,
                (k * 0.73) % 1.2,
            ]
        })
        .collect();
    Matrix::from_rows(&rows).unwrap()
}

/// One of every persistable model family — the snapshot codec must
/// round-trip all thirteen spec variants, not just the easy ones.
fn full_pool() -> Vec<ModelSpec> {
    vec![
        ModelSpec::Knn {
            n_neighbors: 5,
            method: KnnMethod::Largest,
        },
        ModelSpec::Knn {
            n_neighbors: 8,
            method: KnnMethod::Mean,
        },
        ModelSpec::Lof {
            n_neighbors: 7,
            metric: Metric::Manhattan,
        },
        ModelSpec::Abod { n_neighbors: 6 },
        ModelSpec::Hbos {
            n_bins: 8,
            tolerance: 0.3,
        },
        ModelSpec::IForest {
            n_estimators: 12,
            max_features: 0.8,
        },
        ModelSpec::Cblof { n_clusters: 4 },
        ModelSpec::Ocsvm {
            nu: 0.3,
            kernel: Kernel::Rbf { gamma: 0.5 },
        },
        ModelSpec::FeatureBagging { n_estimators: 3 },
        ModelSpec::Loop { n_neighbors: 9 },
        ModelSpec::Pca {
            variance_retained: 0.3,
        },
        ModelSpec::Loda {
            n_members: 6,
            n_bins: 10,
        },
        ModelSpec::Cof { n_neighbors: 7 },
        ModelSpec::Chaos {
            mode: ChaosMode::Passthrough,
            n_neighbors: 5,
        },
    ]
}

fn fit(builder: SuodBuilder, x: &Matrix) -> Suod {
    let mut clf = builder.build().expect("valid config");
    clf.fit(x).expect("fit succeeds");
    clf
}

/// The qualitatively different configurations the format must carry:
/// the default pipeline, every stage disabled, mixed-precision GEMM
/// kernels, and the approximate HNSW neighbour backend.
fn config_variants() -> Vec<(&'static str, SuodBuilder)> {
    vec![
        (
            "default",
            Suod::builder().base_estimators(full_pool()).seed(7),
        ),
        (
            "stages-off",
            Suod::builder()
                .base_estimators(full_pool())
                .with_projection(false)
                .with_approximation(false)
                .with_bps(false)
                .contamination(0.05)
                .seed(11),
        ),
        (
            "gemm-mixed",
            Suod::builder()
                .base_estimators(full_pool())
                .kernel(
                    KernelConfig::default()
                        .with_backend(DistanceBackend::Gemm)
                        .with_precision(Precision::Mixed)
                        .with_kdtree_crossover_dim(0),
                )
                .seed(13),
        ),
        (
            "hnsw",
            Suod::builder()
                .base_estimators(full_pool())
                .kernel(
                    KernelConfig::default().with_neighbor(NeighborBackend::Hnsw(
                        HnswParams {
                            min_rows: 0, // engage the graph even at 120 rows
                            ..HnswParams::default()
                        }
                        .with_ef_search(64),
                    )),
                )
                .with_approximation(false)
                .seed(17),
        ),
    ]
}

#[test]
fn round_trip_scores_bitwise_identical_across_worker_counts() {
    let x = data();
    let q = queries();
    for n_workers in [1usize, 8] {
        for (name, builder) in config_variants() {
            let clf = fit(builder.n_workers(n_workers), &x);
            let loaded = Suod::load_from_bytes(&clf.save_to_bytes().expect("save")).expect("load");

            assert_eq!(
                clf.decision_function(&q).unwrap().as_slice(),
                loaded.decision_function(&q).unwrap().as_slice(),
                "{name}: per-model scores drifted at n_workers={n_workers}"
            );
            assert_eq!(
                clf.combined_scores(&q).unwrap(),
                loaded.combined_scores(&q).unwrap(),
                "{name}: combined scores drifted at n_workers={n_workers}"
            );
            assert_eq!(
                clf.predict(&q).unwrap(),
                loaded.predict(&q).unwrap(),
                "{name}: labels drifted at n_workers={n_workers}"
            );
            assert_eq!(clf.threshold().unwrap(), loaded.threshold().unwrap());
            assert_eq!(
                clf.training_combined_scores().unwrap(),
                loaded.training_combined_scores().unwrap(),
                "{name}: training scores drifted"
            );
        }
    }
}

#[test]
fn save_load_save_is_byte_identical() {
    let x = data();
    for (name, builder) in config_variants() {
        let clf = fit(builder, &x);
        let first = clf.save_to_bytes().expect("save");
        let loaded = Suod::load_from_bytes(&first).expect("load");
        let second = loaded.save_to_bytes().expect("re-save");
        assert_eq!(first, second, "{name}: snapshot is not canonical");
    }
}

#[test]
fn quarantined_models_survive_the_round_trip() {
    let x = data();
    let mut pool = full_pool();
    // A model that panics on every fit attempt: retries exhaust, the
    // model lands in quarantine, and the 0.5 floor lets fit succeed.
    pool.push(ModelSpec::Chaos {
        mode: ChaosMode::PanicOnFit,
        n_neighbors: 5,
    });
    let clf = fit(
        Suod::builder()
            .base_estimators(pool)
            .min_healthy_fraction(0.5)
            .max_model_retries(1)
            .seed(7),
        &x,
    );
    let health = clf.diagnostics().expect("fitted").health();
    assert!(health.quarantined() > 0, "chaos model must be quarantined");

    let loaded = Suod::load_from_bytes(&clf.save_to_bytes().unwrap()).expect("load");
    let reloaded_health = loaded.diagnostics().expect("fitted").health();
    assert_eq!(health.quarantined(), reloaded_health.quarantined());
    assert_eq!(health.healthy(), reloaded_health.healthy());
    for (a, b) in health.reports().iter().zip(reloaded_health.reports()) {
        assert_eq!(a.index, b.index);
        assert_eq!(a.name, b.name);
        assert_eq!(a.status, b.status);
        assert_eq!(a.attempts, b.attempts);
    }

    let q = queries();
    assert_eq!(
        clf.combined_scores(&q).unwrap(),
        loaded.combined_scores(&q).unwrap(),
        "survivor-only combination drifted through the snapshot"
    );
}

#[test]
fn corruption_and_version_skew_are_typed_errors_not_panics() {
    let x = data();
    let clf = fit(Suod::builder().base_estimators(full_pool()).seed(7), &x);
    let good = clf.save_to_bytes().unwrap();

    // Flip one payload byte: the signature check must name both sides.
    let mut garbled = good.clone();
    let last = garbled.len() - 1;
    garbled[last] ^= 0x01;
    match Suod::load_from_bytes(&garbled) {
        Err(suod::Error::SnapshotCorrupt { expected, actual }) => {
            assert_ne!(expected, actual);
            assert!(expected.starts_with("fnv1a64:"), "{expected}");
        }
        other => panic!("expected SnapshotCorrupt, got {other:?}"),
    }

    // Wrong magic: not a snapshot at all.
    let mut wrong_magic = good.clone();
    wrong_magic[0] = b'X';
    assert!(matches!(
        Suod::load_from_bytes(&wrong_magic),
        Err(suod::Error::SnapshotFormat(_))
    ));

    // A future format version must be refused, not misparsed. The
    // version field is the little-endian u64 right after the magic.
    let mut future = good.clone();
    future[8] = 99;
    assert!(matches!(
        Suod::load_from_bytes(&future),
        Err(suod::Error::SnapshotFormat(_))
    ));

    // Truncation anywhere must error cleanly. Step coarsely: every
    // prefix length is a distinct parse state and none may panic.
    for cut in (0..good.len() - 1).step_by(97) {
        assert!(
            Suod::load_from_bytes(&good[..cut]).is_err(),
            "truncation at {cut} bytes must fail"
        );
    }

    // Trailing garbage is corruption too (canonical encoding).
    let mut padded = good.clone();
    padded.extend_from_slice(b"junk");
    assert!(Suod::load_from_bytes(&padded).is_err());
}

/// The committed fixture's exact configuration — regenerate with
/// `cargo test -p suod-system-tests --test persistence -- --ignored`.
fn golden_estimator() -> Suod {
    fit(
        Suod::builder()
            .base_estimators(vec![
                ModelSpec::Hbos {
                    n_bins: 8,
                    tolerance: 0.3,
                },
                ModelSpec::IForest {
                    n_estimators: 10,
                    max_features: 1.0,
                },
                ModelSpec::Knn {
                    n_neighbors: 5,
                    method: KnnMethod::Mean,
                },
                ModelSpec::Lof {
                    n_neighbors: 6,
                    metric: Metric::Euclidean,
                },
            ])
            .n_workers(1)
            .seed(7),
        &data(),
    )
}

fn golden_path() -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures/golden.suod")
}

#[test]
#[ignore = "writes the committed fixture; run once when the format version bumps"]
fn regenerate_golden_fixture() {
    let path = golden_path();
    std::fs::create_dir_all(path.parent().unwrap()).unwrap();
    golden_estimator().save(&path).unwrap();
}

/// Format stability: the fixture bytes in git were written by the build
/// that introduced `suod-pool/1`. Every later build must (a) load them,
/// (b) score with them, and (c) re-encode them byte-for-byte — if this
/// test fails, the format changed and the version must be bumped
/// instead.
#[test]
fn golden_fixture_still_loads_and_reencodes_identically() {
    let bytes = std::fs::read(golden_path()).expect("committed fixture present");
    let loaded = Suod::load_from_bytes(&bytes).expect("golden fixture loads");
    assert_eq!(loaded.n_models(), 4);
    assert_eq!(loaded.n_features().unwrap(), 4);
    assert_eq!(loaded.save_to_bytes().unwrap(), bytes, "format drifted");

    // The fixture must score exactly like a fresh fit of its recipe —
    // the repo-wide determinism contract extended across process exits.
    let q = queries();
    let fresh = golden_estimator();
    assert_eq!(
        fresh.combined_scores(&q).unwrap(),
        loaded.combined_scores(&q).unwrap(),
        "fixture scores drifted from a fresh deterministic fit"
    );
}

#[test]
fn hot_reload_under_concurrent_load_drops_nothing() {
    let x = data();
    let q = queries();
    let pool_a = fit(
        Suod::builder()
            .base_estimators(full_pool())
            .n_workers(2)
            .seed(7),
        &x,
    );
    let expected_a = pool_a.combined_scores(&q).unwrap();

    // Replacement pools arrive as snapshots, like a production reload.
    let replacement_bytes = {
        let pool_b = fit(
            Suod::builder()
                .base_estimators(vec![
                    ModelSpec::Hbos {
                        n_bins: 10,
                        tolerance: 0.2,
                    },
                    ModelSpec::IForest {
                        n_estimators: 15,
                        max_features: 1.0,
                    },
                    ModelSpec::Knn {
                        n_neighbors: 6,
                        method: KnnMethod::Mean,
                    },
                ])
                .n_workers(2)
                .seed(21),
            &x,
        );
        pool_b.save_to_bytes().unwrap()
    };
    let expected_b = Suod::load_from_bytes(&replacement_bytes)
        .unwrap()
        .combined_scores(&q)
        .unwrap();

    let clock = Arc::new(ManualClock::new());
    let service = Arc::new(
        ScoreService::with_parts(
            pool_a,
            ServeConfig {
                queue_capacity: 16,
                ..ServeConfig::default()
            },
            clock,
            suod_observe::noop(),
        )
        .unwrap(),
    );

    const CLIENTS: usize = 4;
    const REQUESTS_PER_CLIENT: usize = 24;
    const RELOADS: usize = 3;
    let finished = Arc::new(AtomicUsize::new(0));
    let mut clients = Vec::new();
    for _ in 0..CLIENTS {
        let service = Arc::clone(&service);
        let finished = Arc::clone(&finished);
        let rows = q.clone();
        clients.push(std::thread::spawn(move || {
            let mut outcomes = Vec::new();
            for _ in 0..REQUESTS_PER_CLIENT {
                let ticket = loop {
                    match service.submit(rows.clone()) {
                        Ok(t) => break t,
                        Err(SubmitError::Busy { .. }) => std::thread::yield_now(),
                        Err(e) => panic!("submit failed: {e}"),
                    }
                };
                outcomes.push(ticket.wait());
            }
            finished.fetch_add(1, Ordering::SeqCst);
            outcomes
        }));
    }

    // The main thread plays dispatcher and operator at once: serve
    // batches continuously, hot-swap the pool mid-stream three times.
    let mut reloads_done = 0;
    let mut batches = 0u64;
    while finished.load(Ordering::SeqCst) < CLIENTS {
        if service.process_once() > 0 {
            batches += 1;
            // Interleave reloads with live traffic.
            if reloads_done < RELOADS && batches % 7 == 3 {
                let clf = Suod::load_from_bytes(&replacement_bytes).unwrap();
                let report = service.reload(clf).expect("reload accepted");
                reloads_done += 1;
                assert_eq!(report.epoch, reloads_done as u64);
                assert_eq!(report.total_models, 3);
            }
        } else {
            std::thread::yield_now();
        }
    }
    service.process_once(); // drain any straggler admitted after the last loop check

    let mut scored = 0usize;
    let mut on_a = 0usize;
    let mut on_b = 0usize;
    for client in clients {
        for outcome in client.join().expect("client thread") {
            match outcome {
                ScoreOutcome::Scored(batch) => {
                    scored += 1;
                    assert!(batch.faults.is_empty(), "healthy pools must not fault");
                    if batch.combined == expected_a {
                        on_a += 1;
                    } else if batch.combined == expected_b {
                        on_b += 1;
                    } else {
                        panic!("batch scores match neither pool generation");
                    }
                }
                other => panic!("request dropped by reload: {other:?}"),
            }
        }
    }
    assert_eq!(
        scored,
        CLIENTS * REQUESTS_PER_CLIENT,
        "every request answered"
    );
    assert!(
        on_a > 0,
        "some batches must have scored on the original pool"
    );
    assert!(on_b > 0, "some batches must have scored on the replacement");

    let report = service.report();
    assert_eq!(report.reloads, RELOADS as u64);
    assert_eq!(report.pool_epoch, RELOADS as u64);
    assert_eq!(
        report.requests_scored,
        (CLIENTS * REQUESTS_PER_CLIENT) as u64
    );
    assert_eq!(report.requests_failed, 0);
    assert_eq!(report.shed, 0);
    assert_eq!(report.total_models, 3, "report reflects the reloaded pool");
}

#[test]
fn warm_refit_reuses_survivors_and_stays_deterministic() {
    let x = data();
    let q = queries();
    let specs = full_pool();
    let model_fits = |recorder: &RecordingObserver| {
        let trace = recorder.trace();
        trace.spans_of(suod::observe::Stage::ModelFit).count()
            + trace.spans_of(suod::observe::Stage::ModelRetry).count()
    };

    let recorder = Arc::new(RecordingObserver::new());
    let mut warm = fit(
        Suod::builder()
            .base_estimators(specs.clone())
            .with_projection(false)
            .observer(recorder.clone())
            .seed(7),
        &x,
    );
    let after_cold = model_fits(&recorder);
    assert_eq!(after_cold, specs.len());
    let expected = warm.combined_scores(&q).unwrap();

    // Identical recipe on identical data: every model is carried over,
    // zero model fits run, and no score bit moves.
    warm.warm_refit(&x, specs.clone()).expect("warm refit");
    assert_eq!(
        model_fits(&recorder),
        after_cold,
        "a no-op warm refit must not refit any model"
    );
    assert_eq!(warm.combined_scores(&q).unwrap(), expected);

    // Change one spec: exactly one model refits, and the result is
    // bitwise-equal to a cold fit of the modified recipe.
    let mut modified = specs.clone();
    modified[4] = ModelSpec::Hbos {
        n_bins: 12,
        tolerance: 0.2,
    };
    warm.warm_refit(&x, modified.clone()).expect("warm refit");
    assert_eq!(
        model_fits(&recorder),
        after_cold + 1,
        "changing one spec must refit exactly one model"
    );
    let cold = fit(
        Suod::builder()
            .base_estimators(modified)
            .with_projection(false)
            .seed(7),
        &x,
    );
    assert_eq!(
        warm.combined_scores(&q).unwrap(),
        cold.combined_scores(&q).unwrap(),
        "warm refit must match a cold fit of the new recipe bitwise"
    );

    // New data is refused, never silently retrained.
    assert!(warm.warm_refit(&q, specs).is_err());
}
