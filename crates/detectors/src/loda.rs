//! LODA: Lightweight On-line Detector of Anomalies (Pevný, Machine
//! Learning 2016).
//!
//! An ensemble of one-dimensional histograms over sparse random
//! projections: each member projects the data onto a random direction
//! (only `sqrt(d)` non-zero Gaussian entries) and estimates a histogram
//! density there; a sample's score is the mean negative log density
//! across members. LODA is thematically the closest cousin to SUOD's
//! data-level module — it *is* random projection plus a cheap density
//! model — and rounds the zoo out to the eleven algorithm families the
//! paper's cost predictor covers.

use crate::{check_dims, Detector, Error, Result};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use suod_linalg::Matrix;

/// Draws one standard-normal value (Box–Muller).
fn randn(rng: &mut StdRng) -> f64 {
    let u1: f64 = rng.random::<f64>().max(1e-300);
    let u2: f64 = rng.random::<f64>();
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

#[derive(Debug, Clone)]
struct LodaMember {
    /// Sparse projection vector (dense storage, mostly zeros).
    direction: Vec<f64>,
    /// Histogram over the projected training values.
    lo: f64,
    hi: f64,
    /// Probability mass per bin (sums to 1 over occupied bins).
    probs: Vec<f64>,
}

impl LodaMember {
    fn project(&self, row: &[f64]) -> f64 {
        suod_linalg::matrix::dot(row, &self.direction)
    }

    /// Density estimate for a projected value; a tiny floor keeps the log
    /// finite for never-seen regions.
    fn density(&self, z: f64) -> f64 {
        const FLOOR: f64 = 1e-9;
        let n_bins = self.probs.len();
        let range = (self.hi - self.lo).max(1e-12);
        if z < self.lo || z > self.hi {
            return FLOOR;
        }
        let bin = (((z - self.lo) / range) * n_bins as f64) as usize;
        self.probs[bin.min(n_bins - 1)].max(FLOOR)
    }
}

/// LODA detector.
///
/// # Example
///
/// ```
/// use suod_detectors::{Detector, LodaDetector};
/// use suod_linalg::Matrix;
///
/// # fn main() -> Result<(), suod_detectors::Error> {
/// let mut rows: Vec<Vec<f64>> = (0..60)
///     .map(|i| vec![(i % 6) as f64 * 0.2, (i / 6) as f64 * 0.2])
///     .collect();
/// rows.push(vec![9.0, -9.0]);
/// let x = Matrix::from_rows(&rows).unwrap();
/// let mut det = LodaDetector::new(50, 10, 7)?;
/// det.fit(&x)?;
/// let s = det.training_scores()?;
/// assert_eq!(suod_linalg::rank::argsort_desc(&s)[0], 60);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct LodaDetector {
    n_members: usize,
    n_bins: usize,
    seed: u64,
    members: Vec<LodaMember>,
    n_features: usize,
    train_scores: Vec<f64>,
}

impl LodaDetector {
    /// Creates a LODA ensemble of `n_members` random projections with
    /// `n_bins` histogram bins each.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidParameter`] when either count is zero.
    pub fn new(n_members: usize, n_bins: usize, seed: u64) -> Result<Self> {
        if n_members == 0 {
            return Err(Error::InvalidParameter("n_members must be >= 1".into()));
        }
        if n_bins == 0 {
            return Err(Error::InvalidParameter("n_bins must be >= 1".into()));
        }
        Ok(Self {
            n_members,
            n_bins,
            seed,
            members: Vec::new(),
            n_features: 0,
            train_scores: Vec::new(),
        })
    }

    /// Ensemble size.
    pub fn n_members(&self) -> usize {
        self.n_members
    }

    fn score_row(&self, row: &[f64]) -> f64 {
        let mut acc = 0.0;
        for member in &self.members {
            acc += -member.density(member.project(row)).ln();
        }
        acc / self.members.len() as f64
    }
}

impl Detector for LodaDetector {
    fn fit(&mut self, x: &Matrix) -> Result<()> {
        let (n, d) = x.shape();
        if n < 2 {
            return Err(Error::InsufficientData {
                needed: "at least 2 samples".into(),
                got: n,
            });
        }
        self.n_features = d;
        let mut rng = StdRng::seed_from_u64(self.seed);
        let nnz = ((d as f64).sqrt().ceil() as usize).clamp(1, d);

        self.members = (0..self.n_members)
            .map(|_| {
                // Sparse direction: sqrt(d) nonzero Gaussian entries.
                let mut direction = vec![0.0; d];
                let mut pool: Vec<usize> = (0..d).collect();
                for i in 0..nnz {
                    let j = rng.random_range(i..d);
                    pool.swap(i, j);
                }
                for &f in &pool[..nnz] {
                    direction[f] = randn(&mut rng);
                }

                let projected: Vec<f64> = x
                    .rows_iter()
                    .map(|row| suod_linalg::matrix::dot(row, &direction))
                    .collect();
                let lo = suod_linalg::stats::min(&projected);
                let hi = suod_linalg::stats::max(&projected);
                let range = (hi - lo).max(1e-12);
                let mut counts = vec![0usize; self.n_bins];
                for &z in &projected {
                    let bin = (((z - lo) / range) * self.n_bins as f64) as usize;
                    counts[bin.min(self.n_bins - 1)] += 1;
                }
                let probs = counts.iter().map(|&c| c as f64 / n as f64).collect();
                LodaMember {
                    direction,
                    lo,
                    hi,
                    probs,
                }
            })
            .collect();

        self.train_scores = x.rows_iter().map(|row| self.score_row(row)).collect();
        Ok(())
    }

    fn decision_function(&self, x: &Matrix) -> Result<Vec<f64>> {
        if self.members.is_empty() {
            return Err(Error::NotFitted("LodaDetector"));
        }
        check_dims(self.n_features, x)?;
        Ok(x.rows_iter().map(|row| self.score_row(row)).collect())
    }

    fn training_scores(&self) -> Result<Vec<f64>> {
        if self.members.is_empty() {
            return Err(Error::NotFitted("LodaDetector"));
        }
        Ok(self.train_scores.clone())
    }

    fn name(&self) -> &'static str {
        "loda"
    }

    fn is_fitted(&self) -> bool {
        !self.members.is_empty()
    }

    fn snapshot_write(&self, w: &mut suod_linalg::SnapshotWriter) -> Result<()> {
        w.write_usize(self.n_members);
        w.write_usize(self.n_bins);
        w.write_u64(self.seed);
        w.write_usize(self.members.len());
        for m in &self.members {
            w.write_f64s(&m.direction);
            w.write_f64(m.lo);
            w.write_f64(m.hi);
            w.write_f64s(&m.probs);
        }
        w.write_usize(self.n_features);
        w.write_f64s(&self.train_scores);
        Ok(())
    }
}

impl LodaDetector {
    /// Reads a detector written by [`Detector::snapshot_write`].
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidParameter`] on truncated or malformed state.
    pub fn snapshot_read(
        r: &mut suod_linalg::SnapshotReader<'_>,
        _n_threads: usize,
    ) -> Result<Self> {
        let n_members = r.read_usize()?;
        let n_bins = r.read_usize()?;
        let seed = r.read_u64()?;
        let count = r.read_usize()?;
        let mut members = Vec::new();
        for _ in 0..count {
            members.push(LodaMember {
                direction: r.read_f64s()?,
                lo: r.read_f64()?,
                hi: r.read_f64()?,
                probs: r.read_f64s()?,
            });
        }
        Ok(Self {
            n_members,
            n_bins,
            seed,
            members,
            n_features: r.read_usize()?,
            train_scores: r.read_f64s()?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grid_with_outlier() -> Matrix {
        let mut rows: Vec<Vec<f64>> = (0..64)
            .map(|i| vec![(i % 8) as f64 * 0.2, (i / 8) as f64 * 0.2, 1.0])
            .collect();
        rows.push(vec![10.0, -10.0, -5.0]);
        Matrix::from_rows(&rows).unwrap()
    }

    #[test]
    fn detects_far_outlier() {
        let mut det = LodaDetector::new(60, 12, 3).unwrap();
        det.fit(&grid_with_outlier()).unwrap();
        let s = det.training_scores().unwrap();
        assert_eq!(suod_linalg::rank::argsort_desc(&s)[0], 64);
    }

    #[test]
    fn out_of_range_query_scores_high() {
        let mut det = LodaDetector::new(40, 10, 1).unwrap();
        det.fit(&grid_with_outlier()).unwrap();
        let q = Matrix::from_rows(&[vec![0.5, 0.5, 1.0], vec![100.0, 100.0, 100.0]]).unwrap();
        let s = det.decision_function(&q).unwrap();
        assert!(s[1] > s[0]);
    }

    #[test]
    fn deterministic_per_seed() {
        let x = grid_with_outlier();
        let mut a = LodaDetector::new(20, 10, 5).unwrap();
        let mut b = LodaDetector::new(20, 10, 5).unwrap();
        a.fit(&x).unwrap();
        b.fit(&x).unwrap();
        assert_eq!(a.training_scores().unwrap(), b.training_scores().unwrap());
        let mut c = LodaDetector::new(20, 10, 6).unwrap();
        c.fit(&x).unwrap();
        assert_ne!(a.training_scores().unwrap(), c.training_scores().unwrap());
    }

    #[test]
    fn more_members_stabilize_scores() {
        // With many members, two disjoint seeds should produce highly
        // rank-correlated scores (the ensemble average concentrates).
        let x = grid_with_outlier();
        let mut a = LodaDetector::new(200, 10, 1).unwrap();
        let mut b = LodaDetector::new(200, 10, 2).unwrap();
        a.fit(&x).unwrap();
        b.fit(&x).unwrap();
        let sa = a.training_scores().unwrap();
        let sb = b.training_scores().unwrap();
        let ra = suod_linalg::rank::average_ranks(&sa);
        let rb = suod_linalg::rank::average_ranks(&sb);
        let ma = suod_linalg::stats::mean(&ra);
        let cov: f64 = ra
            .iter()
            .zip(&rb)
            .map(|(&x1, &y1)| (x1 - ma) * (y1 - ma))
            .sum();
        let var: f64 = ra.iter().map(|&x1| (x1 - ma) * (x1 - ma)).sum();
        assert!(cov / var > 0.5, "rank correlation {}", cov / var);
    }

    #[test]
    fn validates_inputs() {
        assert!(LodaDetector::new(0, 10, 0).is_err());
        assert!(LodaDetector::new(10, 0, 0).is_err());
        let mut det = LodaDetector::new(10, 10, 0).unwrap();
        assert!(det.fit(&Matrix::zeros(1, 2)).is_err());
        assert!(det.decision_function(&Matrix::zeros(1, 2)).is_err());
        det.fit(&grid_with_outlier()).unwrap();
        assert!(det.decision_function(&Matrix::zeros(1, 2)).is_err());
    }

    #[test]
    fn scores_finite_on_constant_data() {
        let x = Matrix::filled(20, 4, 3.0);
        let mut det = LodaDetector::new(10, 5, 0).unwrap();
        det.fit(&x).unwrap();
        assert!(det.training_scores().unwrap().iter().all(|v| v.is_finite()));
    }
}
