//! Table 4 reproduction: full-system evaluation.
//!
//! A randomized heterogeneous pool (worst case for BPS, as in §4.4) is
//! fitted on a 60/40 split under two settings:
//!
//! * **baseline** (`_B`) — no projection, no approximation, generic
//!   scheduling;
//! * **SUOD** (`_S`) — all three modules enabled.
//!
//! Per-model fit/predict costs are measured; `t`-worker wall-clocks are
//! the simulated makespans (DESIGN.md §4). Accuracy is reported for the
//! `Avg` and `MOA` combiners, ROC and P@N each.
//!
//! Flags: `--quick`, `--paper-scale`.

use suod::prelude::*;
use suod_bench::{CsvSink, Scale};
use suod_datasets::{registry, train_test_split};
use suod_metrics::combination::{average, moa};
use suod_metrics::{precision_at_n, roc_auc};
use suod_scheduler::{
    bps_schedule, generic_schedule, simulate_makespan, AnalyticCostModel, CostModel, DatasetMeta,
};

const DATASETS: &[&str] = &[
    "annthyroid",
    "cardio",
    "mnist",
    "optdigits", // not in the registry: mapped to pendigits-like analog below
    "pendigits",
    "pima",
    "shuttle",
    "spamspace",
    "thyroid",
    "waveform",
];
const WORKERS: &[usize] = &[5, 10, 30];

/// Clamp pool hyperparameters to small datasets so every model fits.
fn clamp(spec: ModelSpec, n_train: usize) -> ModelSpec {
    let cap = (n_train / 3).max(2);
    match spec {
        ModelSpec::Abod { n_neighbors } => ModelSpec::Abod {
            n_neighbors: n_neighbors.min(cap).max(2),
        },
        ModelSpec::Knn {
            n_neighbors,
            method,
        } => ModelSpec::Knn {
            n_neighbors: n_neighbors.min(cap),
            method,
        },
        ModelSpec::Lof {
            n_neighbors,
            metric,
        } => ModelSpec::Lof {
            n_neighbors: n_neighbors.min(cap).max(2),
            metric,
        },
        ModelSpec::Cblof { n_clusters } => ModelSpec::Cblof {
            n_clusters: n_clusters.min(n_train / 4).max(1),
        },
        other => other,
    }
}

struct Setting {
    fit_seq: f64,
    pred_seq: f64,
    fit_costs: Vec<f64>,
    pred_costs: Vec<f64>,
    roc_avg: f64,
    roc_moa: f64,
    pan_avg: f64,
    pan_moa: f64,
    specs: Vec<ModelSpec>,
}

fn run_setting(
    pool: &[ModelSpec],
    x_train: &Matrix,
    x_test: &Matrix,
    y_test: &[i32],
    full: bool,
    seed: u64,
) -> Setting {
    let mut clf = Suod::builder()
        .base_estimators(pool.to_vec())
        .with_projection(full)
        .with_approximation(full)
        .with_bps(full)
        .n_workers(1) // sequential measurement; workers are simulated
        .seed(seed)
        .build()
        .expect("valid config");
    let fit_start = std::time::Instant::now();
    clf.fit(x_train).expect("pool fit");
    let fit_seq = fit_start.elapsed().as_secs_f64();

    let (scores, pred_report) = clf
        .decision_function_observed(x_test, &suod::observe::noop())
        .expect("scoring fitted pool");
    let pred_times = pred_report.model_times;
    let pred_seq: f64 = pred_times.iter().map(|d| d.as_secs_f64()).sum();

    let avg = average(&scores).expect("non-empty scores");
    let n_buckets = (pool.len() / 5).max(2);
    let moa_scores = moa(&scores, n_buckets).expect("non-empty scores");

    Setting {
        fit_seq,
        pred_seq,
        fit_costs: clf
            .diagnostics()
            .expect("fitted")
            .fit_times()
            .iter()
            .map(|d| d.as_secs_f64().max(1e-9))
            .collect(),
        pred_costs: pred_times
            .iter()
            .map(|d| d.as_secs_f64().max(1e-9))
            .collect(),
        roc_avg: roc_auc(y_test, &avg).unwrap_or(0.5),
        roc_moa: roc_auc(y_test, &moa_scores).unwrap_or(0.5),
        pan_avg: precision_at_n(y_test, &avg, None).unwrap_or(0.0),
        pan_moa: precision_at_n(y_test, &moa_scores, None).unwrap_or(0.0),
        specs: pool.to_vec(),
    }
}

/// Simulated `t`-worker makespan for a setting's measured cost vector.
/// The baseline uses generic chunking; SUOD uses BPS over forecasts.
fn makespan(s: &Setting, costs: &[f64], t: usize, use_bps: bool, meta: &DatasetMeta) -> f64 {
    let assignment = if use_bps {
        let tasks: Vec<_> = s.specs.iter().map(|m| m.task_descriptor()).collect();
        let predicted = AnalyticCostModel::new().predict_costs(&tasks, meta);
        bps_schedule(&predicted, t, 1.0).expect("finite costs")
    } else {
        generic_schedule(costs.len(), t).expect("m,t >= 1")
    };
    simulate_makespan(costs, &assignment)
        .expect("matching lengths")
        .makespan
}

fn main() {
    let scale = Scale::from_args();
    let data_scale = scale.pick(0.04, 0.15, 1.0);
    let m = scale.pick(12usize, 40, 600);
    let mut csv = CsvSink::create(
        "table4",
        "dataset,n,d,t,fit_b,fit_s,pred_b,pred_s,avg_b,avg_s,moa_b,moa_s,panavg_b,panavg_s,panmoa_b,panmoa_s",
    );

    println!("Table 4: full system vs baseline (m = {m} random models, shuffled order)");
    println!(
        "{:<11} {:>2} {:>9} {:>9} {:>9} {:>9} {:>6} {:>6} {:>6} {:>6}",
        "dataset", "t", "Fit_B", "Fit_S", "Pred_B", "Pred_S", "AvgB", "AvgS", "MoaB", "MoaS"
    );

    for ds_name in DATASETS {
        // `optdigits` is not an ODDS entry in our registry; use a
        // similarly-shaped analog (5216 x 64 in the paper — closest is a
        // scaled mnist analog).
        let (loaded_name, load_scale): (&str, f64) = if *ds_name == "optdigits" {
            ("mnist", data_scale * 0.7)
        } else if *ds_name == "shuttle" {
            (*ds_name, data_scale * 0.3) // 49k rows in the paper
        } else {
            (*ds_name, data_scale)
        };
        let ds =
            registry::load_scaled(loaded_name, 23, load_scale.min(1.0)).expect("registry dataset");
        let split = train_test_split(&ds, 0.4, 23).expect("valid split");
        let n_train = split.x_train.nrows();
        let meta = DatasetMeta::extract(&split.x_train);

        // Random heterogeneous pool, shuffled order (§4.4's worst case).
        let pool: Vec<ModelSpec> = suod::random_pool(m, 23)
            .into_iter()
            .map(|s| clamp(s, n_train))
            .collect();

        let baseline = run_setting(
            &pool,
            &split.x_train,
            &split.x_test,
            &split.y_test,
            false,
            1,
        );
        let full = run_setting(&pool, &split.x_train, &split.x_test, &split.y_test, true, 1);

        for &t in WORKERS {
            let fit_b = makespan(&baseline, &baseline.fit_costs, t, false, &meta);
            let fit_s = makespan(&full, &full.fit_costs, t, true, &meta);
            let pred_b = makespan(&baseline, &baseline.pred_costs, t, false, &meta);
            let pred_s = makespan(&full, &full.pred_costs, t, true, &meta);
            println!(
                "{:<11} {:>2} {:>9.3} {:>9.3} {:>9.3} {:>9.3} {:>6.3} {:>6.3} {:>6.3} {:>6.3}",
                ds_name,
                t,
                fit_b,
                fit_s,
                pred_b,
                pred_s,
                baseline.roc_avg,
                full.roc_avg,
                baseline.roc_moa,
                full.roc_moa
            );
            csv.row(&format!(
                "{ds_name},{},{},{t},{fit_b:.6},{fit_s:.6},{pred_b:.6},{pred_s:.6},{:.4},{:.4},{:.4},{:.4},{:.4},{:.4},{:.4},{:.4}",
                ds.n_samples(),
                ds.n_features(),
                baseline.roc_avg,
                full.roc_avg,
                baseline.roc_moa,
                full.roc_moa,
                baseline.pan_avg,
                full.pan_avg,
                baseline.pan_moa,
                full.pan_moa,
            ));
        }
        println!(
            "  (sequential: fit {:.2}s -> {:.2}s, pred {:.3}s -> {:.3}s; P@N avg {:.3} -> {:.3})",
            baseline.fit_seq,
            full.fit_seq,
            baseline.pred_seq,
            full.pred_seq,
            baseline.pan_avg,
            full.pan_avg
        );
    }
    println!("\nwrote {}", csv.path().display());
    println!("(expected shape: Fit_S <= Fit_B and Pred_S <= Pred_B on most datasets,");
    println!(" with no accuracy loss — occasionally a small gain from RP+PSA regularization.)");
}
