#![warn(missing_docs)]

//! Fault-tolerant online scoring for fitted SUOD ensembles.
//!
//! The estimator crates answer the paper's batch questions — fit a
//! heterogeneous pool fast, predict a big matrix fast. This crate turns
//! a fitted [`Suod`](suod::Suod) into a long-running **scoring
//! service** that keeps answering under the faults a batch run never
//! meets: overload, stale requests, and models that start failing after
//! deployment.
//!
//! # Architecture
//!
//! ```text
//!  submit() ──> [bounded queue] ──> BatchAssemble ──> masked predict ──> Combine ──> tickets
//!              (Busy when full)    (deadline shed)   (fault-isolated      (survivor
//!                                                     model x chunk)       only)
//! ```
//!
//! * **Bounded admission** — [`ScoreService::submit`] enqueues into a
//!   fixed-capacity queue and rejects with [`SubmitError::Busy`] when
//!   full. Backpressure is explicit; memory never grows unboundedly.
//! * **Micro-batching** — pending requests coalesce (within
//!   [`ServeConfig::batch_window`], or per [`ScoreService::process_once`]
//!   call) into one matrix that rides the estimator's existing
//!   (model x row-chunk) parallel predict path, so service throughput
//!   inherits the paper's BPS scheduling. Batch size is capped by rows
//!   and, optionally, by the scheduler's deterministic cost forecast
//!   ([`ServeConfig::max_batch_units`]).
//! * **Deadline shedding** — requests carry a deadline budget; those
//!   already expired at assembly are dropped *before* any compute is
//!   spent ([`ScoreOutcome::Shed`]).
//! * **Predict-time quarantine** — per-model faults (panics, typed
//!   errors, non-finite columns, timeout breaches) feed
//!   consecutive-failure streaks; a model exceeding
//!   [`ServeConfig::predict_failure_budget`] is masked out of subsequent
//!   batches. Responses combine **survivors only**, subject to the
//!   `min_healthy_fraction` floor semantics the estimator enforces at
//!   fit time — taken per batch over the currently-active models, so
//!   quarantine lets the service recover instead of failing forever.
//!
//! # Determinism contract
//!
//! Scores are bit-identical to a sequential pass at any worker count:
//! the batch's (model x row-chunk) split is fixed, failed models
//! contribute NaN columns that survivor combination skips, and chaos
//! faults (see `suod_detectors::ChaosDetector`) are pure functions of
//! the model seed. On a [`ManualClock`], batch composition and the shed
//! set are pure functions of the submitted trace too — which is exactly
//! what the chaos serve suite asserts across 1/2/8 workers.
//!
//! # Example
//!
//! ```
//! use suod::prelude::*;
//! use suod_serve::{ScoreService, ServeConfig, ScoreOutcome};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let x = suod_linalg::Matrix::from_rows(
//!     &(0..40).map(|i| vec![(i % 7) as f64, (i % 5) as f64]).collect::<Vec<_>>(),
//! )?;
//! let mut clf = Suod::builder()
//!     .base_estimators(vec![
//!         ModelSpec::Hbos { n_bins: 8, tolerance: 0.3 },
//!         ModelSpec::IForest { n_estimators: 10, max_features: 1.0 },
//!     ])
//!     .seed(7)
//!     .build()?;
//! clf.fit(&x)?;
//!
//! let service = ScoreService::new(clf, ServeConfig::default())?;
//! let ticket = service.submit(x.clone()).expect("queue has room");
//! service.process_once();
//! match ticket.wait() {
//!     ScoreOutcome::Scored(batch) => assert_eq!(batch.combined.len(), 40),
//!     other => panic!("expected scores, got {other:?}"),
//! }
//! # Ok(())
//! # }
//! ```

pub mod clock;
pub mod lanes;
pub mod net;
pub mod report;
pub mod service;
pub mod wire;

pub use clock::{Clock, ManualClock, SystemClock};
pub use lanes::{AdmissionLanes, LaneConfig, QuotaGuard};
pub use net::{score_rows_text, serve_front, FrontConfig, FrontReport, WireClient};
pub use report::ServeReport;
pub use service::{
    ModelFault, ReloadReport, ScoreOutcome, ScoreService, ScoredBatch, ServeConfig, SubmitError,
    Ticket,
};
pub use wire::{BusyReason, Lane, WireError, WireRequest, WireResponse, WIRE_FORMAT};

use std::fmt;

/// Errors produced when building a scoring service.
#[derive(Debug)]
#[non_exhaustive]
pub enum Error {
    /// A service knob was outside its valid domain.
    Config(String),
    /// The underlying estimator rejected the setup (typically: not
    /// fitted yet).
    Core(suod::Error),
    /// A hot reload was rejected (e.g. the replacement pool scores a
    /// different feature width than the one being served). The current
    /// pool keeps serving.
    Reload(String),
    /// The network front end's listener failed beyond what its retry
    /// budget tolerates (see `FrontConfig::max_accept_failures`).
    Front(String),
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::Config(msg) => write!(f, "invalid serve configuration: {msg}"),
            Error::Core(e) => write!(f, "estimator error: {e}"),
            Error::Reload(msg) => write!(f, "hot reload rejected: {msg}"),
            Error::Front(msg) => write!(f, "front end failed: {msg}"),
        }
    }
}

impl std::error::Error for Error {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Error::Core(e) => Some(e),
            _ => None,
        }
    }
}

impl From<suod::Error> for Error {
    fn from(e: suod::Error) -> Self {
        Error::Core(e)
    }
}

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, Error>;
