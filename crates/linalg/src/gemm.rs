//! Packed, register-blocked GEMM micro-kernels and kernel configuration.
//!
//! TOD (Zhao et al., 2021) shows that outlier-detection primitives go
//! fast when they are reformulated as batched tensor contractions; on a
//! CPU that means one thing — keep the working set in registers and the
//! nearest cache level, and express everything as a GEMM. This module is
//! the compute core behind the [`distance`](crate::distance) backends:
//!
//! * [`matmul_packed`] / [`gram`] — a cache-aware matrix product built
//!   from an `MR x NR` (4x4) register-blocked inner kernel over
//!   contiguous **packed panels**: `MR`-row interleaved panels of `A` and
//!   `NR`-wide interleaved panels of `B` (columns for `matmul_packed`,
//!   rows for [`gram`], which computes `A · Bᵀ`).
//! * [`DistanceBackend`] — selects how pairwise distances are evaluated
//!   (`naive` | `blocked` | `gemm`); threaded from `SuodBuilder` through
//!   `FitContext`/`NeighborCache` into every proximity detector.
//! * [`KernelConfig`] — backend plus the KD-tree-vs-brute-force
//!   crossover tuning consumed by
//!   [`KnnIndex::build_with`](crate::distance::KnnIndex::build_with).
//! * [`KernelStats`] — packed-panel / GEMM-tile / fallback counters the
//!   observability layer exports so traces attribute time to the kernels.
//!
//! # Determinism
//!
//! Every output element `c[i][j]` is accumulated in its **own** register
//! over the reduction index `k` in strictly ascending order, exactly the
//! order the scalar reference [`dot`](crate::matrix::dot) uses. Panel
//! packing and tile shapes change *which* elements a thread computes,
//! never the reduction order of any one element, so results are
//! **bit-identical across thread counts and tile boundaries** — the
//! invariant the determinism system tests pin down.

use crate::{Error, Matrix, Result};
use std::ops::Range;
use std::sync::atomic::{AtomicU64, Ordering};

/// Micro-kernel height: rows of `A` per packed panel.
pub const MR: usize = 4;
/// Micro-kernel width: columns of the output per packed `B` panel.
pub const NR: usize = 4;

/// `A` panels per cache block (`64 * MR = 256` output rows): bounds the
/// output window a `B` block sweeps before moving on, keeping writes
/// inside a few hundred pages instead of striding the whole matrix.
const GRAM_A_BLOCK_PANELS: usize = 64;
/// `B` panels per cache block (`256 * NR = 1024` packed rows, i.e.
/// `1024 * d * 8` bytes): stays L2-resident while an `A` block streams
/// through it, so large-`n` products read each `B` panel from cache
/// `GRAM_A_BLOCK_PANELS` times instead of from memory every time.
const GRAM_B_BLOCK_PANELS: usize = 256;

/// Default KD-tree-vs-brute-force crossover dimensionality.
///
/// A KD-tree prunes well only while the dimensionality is small; beyond
/// the crossover the blocked/GEMM brute-force sweep wins. The historical
/// hardcoded constant was 15; the `kernel_report` crossover sweep
/// (single-threaded, 10k train / 1k queries, see `BENCH_kernels.json`)
/// shows the tree winning decisively through d = 6 and the tiled brute
/// path overtaking it by d = 8, so the tuned default is 6. Override per
/// estimator via `SuodBuilder::kdtree_crossover_dim` or per index via
/// [`KernelConfig`].
pub const DEFAULT_KDTREE_CROSSOVER_DIM: usize = 6;

/// Minimum row count for the KD-tree backend to engage (tree build and
/// traversal overhead dominate below this).
pub const DEFAULT_KDTREE_MIN_ROWS: usize = 128;

/// How pairwise distances and brute-force neighbour sweeps are computed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum DistanceBackend {
    /// Scalar per-pair loops, one query row against the full training
    /// matrix at a time. The reference implementation every other
    /// backend is validated against.
    Naive,
    /// The same per-pair arithmetic as `Naive` — identical formula,
    /// identical reduction order, **bit-identical results** — but tiled
    /// over pair blocks so a panel of `B` rows stays resident in cache
    /// while a block of `A` rows streams through it. The default.
    #[default]
    Blocked,
    /// Euclidean distances via the norm trick
    /// `d²(x, y) = ‖x‖² + ‖y‖² − 2·x·y` over a packed-panel GEMM, with
    /// the squared distance clamped at zero before the square root.
    /// Fastest, but *not* bit-identical to `Naive` (see
    /// [`DistanceBackend::is_bit_identical_to_naive`]); non-Euclidean
    /// metrics fall back to `Blocked` (recorded as a fallback hit).
    Gemm,
}

impl DistanceBackend {
    /// Stable config/CLI name (`naive` | `blocked` | `gemm`).
    pub fn name(self) -> &'static str {
        match self {
            DistanceBackend::Naive => "naive",
            DistanceBackend::Blocked => "blocked",
            DistanceBackend::Gemm => "gemm",
        }
    }

    /// Parses a stable name back into a backend.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidParameter`] for unknown names.
    pub fn parse(name: &str) -> Result<Self> {
        match name {
            "naive" => Ok(DistanceBackend::Naive),
            "blocked" => Ok(DistanceBackend::Blocked),
            "gemm" => Ok(DistanceBackend::Gemm),
            other => Err(Error::InvalidParameter(format!(
                "unknown distance backend `{other}` (expected naive|blocked|gemm)"
            ))),
        }
    }

    /// `true` when the backend produces the same bits as `Naive` for
    /// every metric. `Blocked` reorders only *which* pairs are evaluated
    /// when, never the arithmetic of a pair, so it qualifies; `Gemm`
    /// algebraically rearranges `Σ(xᵢ−yᵢ)²` into `‖x‖²+‖y‖²−2x·y` and
    /// does not.
    pub fn is_bit_identical_to_naive(self) -> bool {
        !matches!(self, DistanceBackend::Gemm)
    }
}

impl std::fmt::Display for DistanceBackend {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Kernel tuning threaded from the estimator config down to every
/// [`KnnIndex`](crate::distance::KnnIndex) and pairwise-distance call.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct KernelConfig {
    /// Distance/GEMM backend for brute-force paths.
    pub backend: DistanceBackend,
    /// Maximum dimensionality at which the KD-tree backend engages
    /// (replaces the old hardcoded `d <= 15`); see
    /// [`DEFAULT_KDTREE_CROSSOVER_DIM`] for how the default was derived.
    pub kdtree_crossover_dim: usize,
    /// Minimum row count for the KD-tree backend to engage.
    pub kdtree_min_rows: usize,
}

impl Default for KernelConfig {
    fn default() -> Self {
        Self {
            backend: DistanceBackend::default(),
            kdtree_crossover_dim: DEFAULT_KDTREE_CROSSOVER_DIM,
            kdtree_min_rows: DEFAULT_KDTREE_MIN_ROWS,
        }
    }
}

impl KernelConfig {
    /// A config with the given backend and default KD-tree tuning.
    pub fn with_backend(backend: DistanceBackend) -> Self {
        Self {
            backend,
            ..Self::default()
        }
    }

    /// `true` when an index over `rows x dims` data should use the
    /// KD-tree backend under this config.
    pub fn uses_kdtree(&self, rows: usize, dims: usize) -> bool {
        dims <= self.kdtree_crossover_dim && rows >= self.kdtree_min_rows
    }
}

/// Monotonic kernel-work counters (thread-safe, shared by reference).
///
/// The counts are **deterministic**: they are derived from matrix shapes
/// and the fixed panel/tile geometry, so a given sequence of kernel calls
/// produces the same counts at every thread count. The observability
/// layer snapshots them around neighbour-graph builds and exports them as
/// `packed_panel` / `gemm_tile` / `kernel_fallback` counters.
#[derive(Debug, Default)]
pub struct KernelStats {
    packed_panels: AtomicU64,
    gemm_tiles: AtomicU64,
    fallback_hits: AtomicU64,
}

impl KernelStats {
    /// Fresh zeroed counters.
    pub fn new() -> Self {
        Self::default()
    }

    /// Point-in-time copy of the counters.
    pub fn snapshot(&self) -> KernelCounters {
        KernelCounters {
            packed_panels: self.packed_panels.load(Ordering::Relaxed),
            gemm_tiles: self.gemm_tiles.load(Ordering::Relaxed),
            fallback_hits: self.fallback_hits.load(Ordering::Relaxed),
        }
    }

    /// Records one GEMM invocation over an `a_rows x b_rows` output:
    /// `ceil(a_rows/MR) + ceil(b_rows/NR)` logical packed panels and
    /// `ceil(a_rows/MR) * ceil(b_rows/NR)` micro-kernel tiles.
    pub(crate) fn record_gemm(&self, a_rows: usize, b_rows: usize) {
        let ap = a_rows.div_ceil(MR) as u64;
        let bp = b_rows.div_ceil(NR) as u64;
        self.packed_panels.fetch_add(ap + bp, Ordering::Relaxed);
        self.gemm_tiles.fetch_add(ap * bp, Ordering::Relaxed);
    }

    /// Records one request the selected backend could not serve (e.g. a
    /// non-Euclidean metric under [`DistanceBackend::Gemm`]).
    pub(crate) fn record_fallback(&self) {
        self.fallback_hits.fetch_add(1, Ordering::Relaxed);
    }
}

/// Immutable snapshot of [`KernelStats`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct KernelCounters {
    /// Contiguous `MR`/`NR` panels packed (logical: derived from shapes).
    pub packed_panels: u64,
    /// Micro-kernel tile invocations.
    pub gemm_tiles: u64,
    /// Requests the selected backend had to hand to a slower path.
    pub fallback_hits: u64,
}

impl KernelCounters {
    /// Counter-wise difference `self - earlier` (saturating).
    pub fn since(&self, earlier: &KernelCounters) -> KernelCounters {
        KernelCounters {
            packed_panels: self.packed_panels.saturating_sub(earlier.packed_panels),
            gemm_tiles: self.gemm_tiles.saturating_sub(earlier.gemm_tiles),
            fallback_hits: self.fallback_hits.saturating_sub(earlier.fallback_hits),
        }
    }
}

/// Rows of a matrix packed into `width`-wide interleaved panels.
///
/// Panel `p` holds source rows `p*width .. p*width+width` laid out as
/// `panel[k*width + r]` — the micro-kernel streams it with unit stride.
/// Short trailing panels are zero-padded, so every panel has the same
/// byte length and the kernel never branches on edges along the packed
/// axis.
pub(crate) struct PackedPanels {
    data: Vec<f64>,
    n_rows: usize,
    d: usize,
    width: usize,
}

impl PackedPanels {
    /// Packs every row of `m` (used for [`gram`]: `B`'s rows are `Bᵀ`'s
    /// columns).
    pub(crate) fn from_rows(m: &Matrix) -> Self {
        Self::from_row_range(m, 0..m.nrows(), NR)
    }

    /// Packs the rows in `range` into `width`-wide panels.
    pub(crate) fn from_row_range(m: &Matrix, range: Range<usize>, width: usize) -> Self {
        let n_rows = range.len();
        let d = m.ncols();
        let n_panels = n_rows.div_ceil(width.max(1)).max(usize::from(n_rows > 0));
        let mut data = vec![0.0; n_panels * d * width];
        for (local, src) in range.enumerate() {
            let panel = local / width;
            let lane = local % width;
            let row = m.row(src);
            let base = panel * d * width;
            for (k, &v) in row.iter().enumerate() {
                data[base + k * width + lane] = v;
            }
        }
        Self {
            data,
            n_rows,
            d,
            width,
        }
    }

    /// Packs the *columns* of `m` (used for [`matmul_packed`], where the
    /// reduction runs down `B`'s rows).
    pub(crate) fn from_cols(m: &Matrix) -> Self {
        let n_rows = m.ncols(); // packed axis = B's columns
        let d = m.nrows(); // reduction axis = B's rows
        let width = NR;
        let n_panels = n_rows.div_ceil(width).max(usize::from(n_rows > 0));
        let mut data = vec![0.0; n_panels * d * width];
        for k in 0..d {
            let row = m.row(k);
            for (c, &v) in row.iter().enumerate() {
                let panel = c / width;
                let lane = c % width;
                data[panel * d * width + k * width + lane] = v;
            }
        }
        Self {
            data,
            n_rows,
            d,
            width,
        }
    }

    /// Number of packed entities (rows or columns).
    pub(crate) fn len(&self) -> usize {
        self.n_rows
    }

    fn panel(&self, p: usize) -> &[f64] {
        let stride = self.d * self.width;
        &self.data[p * stride..(p + 1) * stride]
    }
}

/// The 4x4 register-blocked inner kernel: `acc[i][j] += Σ_k a[k][i] *
/// b[k][j]` with `k` strictly ascending and one accumulator per output
/// element (the determinism contract). `chunks_exact` hands the
/// optimiser fixed-size lanes — no bounds checks in the hot loop — and
/// iterates the chunks (one per `k`) in ascending order.
#[inline]
fn microkernel(apanel: &[f64], bpanel: &[f64], acc: &mut [f64; MR * NR]) {
    for (a, b) in apanel.chunks_exact(MR).zip(bpanel.chunks_exact(NR)) {
        for i in 0..MR {
            let ai = a[i];
            for j in 0..NR {
                acc[i * NR + j] += ai * b[j];
            }
        }
    }
}

/// Euclidean distance from cached squared norms and a Gram entry:
/// `sqrt(max(0, ‖a‖² + ‖b‖² − 2·a·b))`. The clamp keeps near-duplicate
/// rows (where cancellation can drive the algebraic identity slightly
/// negative) from producing NaN. Every gemm-backend path — batched,
/// single-query, and the fused tile epilogue below — combines its terms
/// through this one function, in this argument order, so the backend is
/// self-consistent to the bit.
#[inline]
pub(crate) fn dist_from_gram(na: f64, nb: f64, g: f64) -> f64 {
    (na + nb - 2.0 * g).max(0.0).sqrt()
}

/// Cache-blocked panel sweep: runs the micro-kernel over every
/// `(A panel, B panel)` tile of the row range and writes
/// `finish(absolute_a_row, packed_index, gram_value)` into `out`. The
/// block loops change only *when* a tile is computed (B blocks stay
/// L2-resident across an A block), never the per-element reduction —
/// results are bitwise independent of the blocking.
#[inline]
fn gram_rows_apply(
    a: &Matrix,
    a_range: Range<usize>,
    packed: &PackedPanels,
    out: &mut [f64],
    mut finish: impl FnMut(usize, usize, f64) -> f64,
) {
    let d = a.ncols();
    debug_assert_eq!(d, packed.d);
    let n_out = packed.len();
    debug_assert_eq!(out.len(), a_range.len() * n_out);
    if a_range.is_empty() || n_out == 0 {
        return;
    }
    let apanels = PackedPanels::from_row_range(a, a_range.clone(), MR);
    let a_rows = a_range.len();
    let n_ap = a_rows.div_ceil(MR);
    let n_bp = n_out.div_ceil(NR);
    for ab in (0..n_ap).step_by(GRAM_A_BLOCK_PANELS) {
        let ab_hi = (ab + GRAM_A_BLOCK_PANELS).min(n_ap);
        for bb in (0..n_bp).step_by(GRAM_B_BLOCK_PANELS) {
            let bb_hi = (bb + GRAM_B_BLOCK_PANELS).min(n_bp);
            for ap in ab..ab_hi {
                let i_hi = (ap * MR + MR).min(a_rows);
                let apanel = apanels.panel(ap);
                for bp in bb..bb_hi {
                    let j_hi = (bp * NR + NR).min(n_out);
                    let mut acc = [0.0f64; MR * NR];
                    microkernel(apanel, packed.panel(bp), &mut acc);
                    for i in ap * MR..i_hi {
                        let li = i - ap * MR;
                        let row = &mut out[i * n_out..(i + 1) * n_out];
                        for j in bp * NR..j_hi {
                            row[j] = finish(a_range.start + i, j, acc[li * NR + (j - bp * NR)]);
                        }
                    }
                }
            }
        }
    }
}

/// Computes `out[r][c] = a_row(a_range.start + r) · packed[c]` for every
/// packed entity `c`, writing into the row-major `out` slice
/// (`a_range.len() * packed.len()` elements).
pub(crate) fn gram_rows_into(
    a: &Matrix,
    a_range: Range<usize>,
    packed: &PackedPanels,
    out: &mut [f64],
) {
    gram_rows_apply(a, a_range, packed, out, |_, _, g| g);
}

/// [`gram_rows_into`] with the norm-trick epilogue fused into the tile
/// write-back: `out[r][c] = dist_from_gram(na[row], nb[c], gram)`. The
/// distance matrix is produced in one pass — no intermediate Gram
/// allocation, no second read-modify-write sweep over the (potentially
/// multi-gigabyte) output. `na` is indexed by absolute `a` row, `nb` by
/// packed index.
pub(crate) fn gram_rows_dist_into(
    a: &Matrix,
    a_range: Range<usize>,
    packed: &PackedPanels,
    na: &[f64],
    nb: &[f64],
    out: &mut [f64],
) {
    gram_rows_apply(a, a_range, packed, out, |i, j, g| {
        dist_from_gram(na[i], nb[j], g)
    });
}

/// Gram-style product `A · Bᵀ` (`a.nrows() x b.nrows()`) over packed
/// panels — the contraction behind the norm-trick distance path. Both
/// operands are row-major, so packing reads are unit-stride.
///
/// Bit-identical across `n_threads` (see the [module docs](self)).
///
/// # Errors
///
/// Returns [`Error::ShapeMismatch`] when column counts differ.
pub fn gram(
    a: &Matrix,
    b: &Matrix,
    n_threads: usize,
    stats: Option<&KernelStats>,
) -> Result<Matrix> {
    if a.ncols() != b.ncols() {
        return Err(Error::ShapeMismatch {
            op: "gram",
            lhs: a.shape(),
            rhs: b.shape(),
        });
    }
    if let Some(s) = stats {
        s.record_gemm(a.nrows(), b.nrows());
    }
    let packed = PackedPanels::from_rows(b);
    let mut out = Matrix::zeros(a.nrows(), b.nrows());
    let cols = b.nrows();
    crate::parallel::par_row_blocks(out.as_mut_slice(), cols.max(1), n_threads, |rows, block| {
        gram_rows_into(a, rows, &packed, block);
    });
    Ok(out)
}

/// Packed blocked matrix product `A · B`: `B`'s columns are packed into
/// `NR`-wide panels once, then each thread's row block runs the 4x4
/// micro-kernel over its `MR`-row panels of `A`.
///
/// Bit-identical across `n_threads`; matches [`Matrix::matmul`] within
/// floating-point reassociation noise (the per-element reduction order is
/// the same ascending `k`, but `matmul` skips exact-zero `a` terms).
///
/// # Errors
///
/// Returns [`Error::ShapeMismatch`] when `a.ncols() != b.nrows()`.
pub fn matmul_packed(
    a: &Matrix,
    b: &Matrix,
    n_threads: usize,
    stats: Option<&KernelStats>,
) -> Result<Matrix> {
    if a.ncols() != b.nrows() {
        return Err(Error::ShapeMismatch {
            op: "matmul_packed",
            lhs: a.shape(),
            rhs: b.shape(),
        });
    }
    if let Some(s) = stats {
        s.record_gemm(a.nrows(), b.ncols());
    }
    let packed = PackedPanels::from_cols(b);
    let mut out = Matrix::zeros(a.nrows(), b.ncols());
    let cols = b.ncols();
    crate::parallel::par_row_blocks(out.as_mut_slice(), cols.max(1), n_threads, |rows, block| {
        gram_rows_into(a, rows, &packed, block);
    });
    Ok(out)
}

/// Squared Euclidean norm of every row (the cached `‖x‖²` terms of the
/// norm trick).
pub fn row_sq_norms(m: &Matrix) -> Vec<f64> {
    m.rows_iter().map(crate::matrix::norm_sq).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn random_matrix(rows: usize, cols: usize, seed: u64) -> Matrix {
        let mut s = seed;
        let mut next = move || {
            s = s
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (s >> 11) as f64 / (1u64 << 53) as f64 * 4.0 - 2.0
        };
        Matrix::from_vec(rows, cols, (0..rows * cols).map(|_| next()).collect()).unwrap()
    }

    fn assert_close(got: &Matrix, want: &Matrix, what: &str) {
        assert_eq!(got.shape(), want.shape(), "{what}");
        for (g, w) in got.as_slice().iter().zip(want.as_slice()) {
            let tol = 1e-9 * (1.0 + w.abs());
            assert!((g - w).abs() <= tol, "{what}: {g} vs {w}");
        }
    }

    #[test]
    fn backend_names_round_trip() {
        for b in [
            DistanceBackend::Naive,
            DistanceBackend::Blocked,
            DistanceBackend::Gemm,
        ] {
            assert_eq!(DistanceBackend::parse(b.name()).unwrap(), b);
        }
        assert!(DistanceBackend::parse("cuda").is_err());
    }

    #[test]
    fn config_crossover_governs_tree_choice() {
        let cfg = KernelConfig {
            kdtree_crossover_dim: 6,
            kdtree_min_rows: 10,
            ..KernelConfig::default()
        };
        assert!(cfg.uses_kdtree(100, 6));
        assert!(!cfg.uses_kdtree(100, 7));
        assert!(!cfg.uses_kdtree(9, 3));
    }

    #[test]
    fn matmul_packed_matches_naive() {
        // Shapes straddling panel boundaries: exact multiples of 4,
        // off-by-one, tiny, and degenerate-thin.
        for (m, k, n) in [
            (8, 8, 8),
            (7, 5, 9),
            (33, 70, 21),
            (1, 200, 1),
            (4, 1, 5),
            (13, 16, 4),
        ] {
            let a = random_matrix(m, k, (m * 100 + n) as u64);
            let b = random_matrix(k, n, (k * 7 + 3) as u64);
            let want = a.matmul(&b).unwrap();
            for threads in [1usize, 2, 4] {
                let got = matmul_packed(&a, &b, threads, None).unwrap();
                assert_close(&got, &want, &format!("({m},{k},{n}) t={threads}"));
            }
        }
    }

    #[test]
    fn matmul_packed_bit_identical_across_threads() {
        let a = random_matrix(37, 19, 1);
        let b = random_matrix(19, 23, 2);
        let base = matmul_packed(&a, &b, 1, None).unwrap();
        for threads in [2usize, 3, 8] {
            let par = matmul_packed(&a, &b, threads, None).unwrap();
            assert_eq!(par.as_slice(), base.as_slice(), "threads={threads}");
        }
    }

    #[test]
    fn gram_matches_matmul_transpose() {
        let a = random_matrix(11, 6, 5);
        let b = random_matrix(14, 6, 9);
        let want = a.matmul(&b.transpose()).unwrap();
        for threads in [1usize, 2, 4] {
            let got = gram(&a, &b, threads, None).unwrap();
            assert_close(&got, &want, &format!("gram t={threads}"));
        }
    }

    #[test]
    fn gram_diagonal_equals_scalar_dot_bitwise() {
        // One accumulator per element, ascending k: the packed kernel's
        // dot products carry the same bits as the scalar reference.
        let a = random_matrix(9, 13, 3);
        let g = gram(&a, &a, 1, None).unwrap();
        for i in 0..a.nrows() {
            assert_eq!(g.get(i, i), crate::matrix::norm_sq(a.row(i)));
            for j in 0..a.nrows() {
                assert_eq!(g.get(i, j), crate::matrix::dot(a.row(i), a.row(j)));
            }
        }
    }

    #[test]
    fn shape_errors() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 4);
        assert!(gram(&a, &b, 1, None).is_err());
        assert!(matmul_packed(&a, &b, 1, None).is_err());
        assert!(matmul_packed(&a, &Matrix::zeros(3, 4), 1, None).is_ok());
    }

    #[test]
    fn zero_width_inputs() {
        let a = Matrix::zeros(3, 0);
        let g = gram(&a, &a, 1, None).unwrap();
        assert_eq!(g.shape(), (3, 3));
        assert!(g.as_slice().iter().all(|&v| v == 0.0));
    }

    #[test]
    fn stats_count_deterministically() {
        let a = random_matrix(10, 5, 1);
        let b = random_matrix(7, 5, 2);
        let s1 = KernelStats::new();
        gram(&a, &b, 1, Some(&s1)).unwrap();
        let s4 = KernelStats::new();
        gram(&a, &b, 4, Some(&s4)).unwrap();
        assert_eq!(s1.snapshot(), s4.snapshot());
        let c = s1.snapshot();
        // ceil(10/4)=3 a-panels + ceil(7/4)=2 b-panels; 3*2 tiles.
        assert_eq!(c.packed_panels, 5);
        assert_eq!(c.gemm_tiles, 6);
        assert_eq!(c.fallback_hits, 0);
    }

    #[test]
    fn counters_since_computes_delta() {
        let s = KernelStats::new();
        let before = s.snapshot();
        s.record_gemm(8, 8);
        s.record_fallback();
        let delta = s.snapshot().since(&before);
        assert_eq!(delta.packed_panels, 4);
        assert_eq!(delta.gemm_tiles, 4);
        assert_eq!(delta.fallback_hits, 1);
    }
}
