//! Criterion micro-benchmarks: metric and combination throughput.
//!
//! Score combination runs once per prediction batch over the whole
//! `n x m` matrix; these benches confirm it is negligible next to
//! detector scoring.

use criterion::{criterion_group, criterion_main, Criterion};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::hint::black_box;
use suod_linalg::Matrix;
use suod_metrics::{average, moa, precision_at_n, roc_auc, spearman};

fn scores(n: usize, seed: u64) -> (Vec<i32>, Vec<f64>) {
    let mut rng = StdRng::seed_from_u64(seed);
    let labels: Vec<i32> = (0..n)
        .map(|_| i32::from(rng.random::<f64>() < 0.1))
        .collect();
    let scores: Vec<f64> = (0..n).map(|_| rng.random::<f64>()).collect();
    (labels, scores)
}

fn bench_metrics(c: &mut Criterion) {
    let (labels, vals) = scores(10_000, 1);
    let mut group = c.benchmark_group("metrics_n10000");
    group.sample_size(20);
    group.bench_function("roc_auc", |b| {
        b.iter(|| roc_auc(black_box(&labels), black_box(&vals)).expect("both classes"))
    });
    group.bench_function("precision_at_n", |b| {
        b.iter(|| precision_at_n(black_box(&labels), black_box(&vals), None).expect("outliers"))
    });
    group.bench_function("spearman", |b| {
        let (_, other) = scores(10_000, 2);
        b.iter(|| spearman(black_box(&vals), black_box(&other)).expect("non-constant"))
    });
    group.finish();
}

fn bench_combination(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(3);
    let data: Vec<f64> = (0..5000 * 40).map(|_| rng.random::<f64>()).collect();
    let m = Matrix::from_vec(5000, 40, data).expect("sized");
    let mut group = c.benchmark_group("combination_5000x40");
    group.sample_size(20);
    group.bench_function("average", |b| {
        b.iter(|| average(black_box(&m)).expect("non-empty"))
    });
    group.bench_function("moa_8_buckets", |b| {
        b.iter(|| moa(black_box(&m), 8).expect("non-empty"))
    });
    group.finish();
}

criterion_group!(benches, bench_metrics, bench_combination);
criterion_main!(benches);
