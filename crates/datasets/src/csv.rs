//! Minimal CSV loading for user-supplied datasets.
//!
//! The registry ships synthetic analogs, but a downstream user's first
//! move is "run SUOD on my file". This loader handles the common
//! numeric-CSV shape: optional header row, comma/semicolon/tab
//! separators, an optional 0/1 label column for evaluation. It is
//! deliberately small — quoted fields with embedded separators are out of
//! scope (none of the OD benchmark distributions use them).

use crate::synthetic::Dataset;
use crate::{Error, Result};
use std::path::Path;
use suod_linalg::Matrix;

/// Options for [`load_csv`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CsvOptions {
    /// Treat the first row as a header and skip it. When `None`, the
    /// loader sniffs: a first row with any non-numeric cell is a header.
    pub has_header: Option<bool>,
    /// Column index holding 0/1 outlier labels; that column is split out
    /// of the feature matrix. `None` = unlabeled data (labels all 0).
    pub label_column: Option<usize>,
}

/// Loads a numeric CSV file into a [`Dataset`].
///
/// # Errors
///
/// Returns [`Error::InvalidConfig`] on I/O failures, non-numeric cells,
/// ragged rows, an out-of-range label column, or an empty file.
///
/// # Example
///
/// ```
/// use suod_datasets::csv::{load_csv, CsvOptions};
///
/// let dir = std::env::temp_dir().join("suod_csv_doc");
/// std::fs::create_dir_all(&dir).unwrap();
/// let path = dir.join("toy.csv");
/// std::fs::write(&path, "a,b,label\n1.0,2.0,0\n9.0,9.0,1\n").unwrap();
/// let ds = load_csv(&path, CsvOptions { has_header: None, label_column: Some(2) }).unwrap();
/// assert_eq!(ds.n_samples(), 2);
/// assert_eq!(ds.n_features(), 2);
/// assert_eq!(ds.n_outliers(), 1);
/// ```
pub fn load_csv(path: impl AsRef<Path>, options: CsvOptions) -> Result<Dataset> {
    let path = path.as_ref();
    let text = std::fs::read_to_string(path)
        .map_err(|e| Error::InvalidConfig(format!("cannot read {}: {e}", path.display())))?;
    let name = path
        .file_stem()
        .map(|s| s.to_string_lossy().into_owned())
        .unwrap_or_else(|| "csv-dataset".to_string());
    parse_csv(&text, options, name)
}

/// Parses CSV text (the file-less core of [`load_csv`]).
///
/// # Errors
///
/// Same conditions as [`load_csv`], minus I/O.
pub fn parse_csv(text: &str, options: CsvOptions, name: String) -> Result<Dataset> {
    let lines: Vec<&str> = text
        .lines()
        .map(str::trim)
        .filter(|l| !l.is_empty() && !l.starts_with('#'))
        .collect();
    if lines.is_empty() {
        return Err(Error::InvalidConfig("CSV file has no data rows".into()));
    }

    let sep = sniff_separator(lines[0]);
    let first_cells = split(lines[0], sep);
    let has_header = options
        .has_header
        .unwrap_or_else(|| first_cells.iter().any(|c| c.parse::<f64>().is_err()));
    let data_lines = if has_header { &lines[1..] } else { &lines[..] };
    if data_lines.is_empty() {
        return Err(Error::InvalidConfig("CSV file has only a header".into()));
    }

    let width = split(data_lines[0], sep).len();
    if let Some(lc) = options.label_column {
        if lc >= width {
            return Err(Error::InvalidConfig(format!(
                "label column {lc} out of range for {width} columns"
            )));
        }
        if width == 1 {
            return Err(Error::InvalidConfig(
                "CSV has only the label column, no features".into(),
            ));
        }
    }

    let mut rows: Vec<Vec<f64>> = Vec::with_capacity(data_lines.len());
    let mut labels: Vec<i32> = Vec::with_capacity(data_lines.len());
    for (lineno, line) in data_lines.iter().enumerate() {
        let cells = split(line, sep);
        if cells.len() != width {
            return Err(Error::InvalidConfig(format!(
                "row {} has {} cells, expected {width}",
                lineno + 1 + usize::from(has_header),
                cells.len()
            )));
        }
        let mut row = Vec::with_capacity(width - usize::from(options.label_column.is_some()));
        let mut label = 0i32;
        for (c, cell) in cells.iter().enumerate() {
            let value: f64 = cell.parse().map_err(|_| {
                Error::InvalidConfig(format!(
                    "non-numeric cell `{cell}` at row {}, column {c}",
                    lineno + 1 + usize::from(has_header)
                ))
            })?;
            if options.label_column == Some(c) {
                label = i32::from(value != 0.0);
            } else {
                row.push(value);
            }
        }
        rows.push(row);
        labels.push(label);
    }

    Ok(Dataset {
        x: Matrix::from_rows(&rows)?,
        y: labels,
        name,
    })
}

/// Writes a dataset as CSV (`f0,...,fd,label` header) — the inverse of
/// [`load_csv`] with the label in the final column. Lets the synthetic
/// analogs feed external tools.
///
/// # Errors
///
/// Returns [`Error::InvalidConfig`] on I/O failure.
pub fn write_csv(ds: &Dataset, path: impl AsRef<Path>) -> Result<()> {
    let path = path.as_ref();
    let d = ds.n_features();
    let mut out = String::new();
    for c in 0..d {
        out.push_str(&format!("f{c},"));
    }
    out.push_str("label\n");
    for (row, &label) in ds.x.rows_iter().zip(&ds.y) {
        for v in row {
            out.push_str(&format!("{v},"));
        }
        out.push_str(&format!("{label}\n"));
    }
    std::fs::write(path, out)
        .map_err(|e| Error::InvalidConfig(format!("cannot write {}: {e}", path.display())))
}

fn sniff_separator(line: &str) -> char {
    for sep in [',', ';', '\t'] {
        if line.contains(sep) {
            return sep;
        }
    }
    ','
}

fn split(line: &str, sep: char) -> Vec<&str> {
    line.split(sep).map(str::trim).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn opts(label: Option<usize>) -> CsvOptions {
        CsvOptions {
            has_header: None,
            label_column: label,
        }
    }

    #[test]
    fn parses_headerless_numeric() {
        let ds = parse_csv("1,2\n3,4\n5,6\n", opts(None), "t".into()).unwrap();
        assert_eq!(ds.x.shape(), (3, 2));
        assert!(ds.y.iter().all(|&l| l == 0));
    }

    #[test]
    fn sniffs_header() {
        let ds = parse_csv("f1,f2\n1,2\n3,4\n", opts(None), "t".into()).unwrap();
        assert_eq!(ds.x.shape(), (2, 2));
    }

    #[test]
    fn explicit_header_flag_overrides_sniffing() {
        // All-numeric first row forced to be a header.
        let ds = parse_csv(
            "9,9\n1,2\n",
            CsvOptions {
                has_header: Some(true),
                label_column: None,
            },
            "t".into(),
        )
        .unwrap();
        assert_eq!(ds.x.shape(), (1, 2));
    }

    #[test]
    fn label_column_split_out() {
        let ds = parse_csv(
            "x,y,label\n1,2,0\n3,4,1\n5,6,0\n",
            opts(Some(2)),
            "t".into(),
        )
        .unwrap();
        assert_eq!(ds.x.shape(), (3, 2));
        assert_eq!(ds.y, vec![0, 1, 0]);
        assert_eq!(ds.n_outliers(), 1);
    }

    #[test]
    fn label_column_in_middle() {
        let ds = parse_csv("1,1,10\n0,0,20\n", opts(Some(1)), "t".into()).unwrap();
        assert_eq!(ds.x.row(0), &[1.0, 10.0]);
        assert_eq!(ds.y, vec![1, 0]);
    }

    #[test]
    fn semicolon_and_tab_separators() {
        let ds = parse_csv("1;2\n3;4\n", opts(None), "t".into()).unwrap();
        assert_eq!(ds.x.shape(), (2, 2));
        let ds = parse_csv("1\t2\n3\t4\n", opts(None), "t".into()).unwrap();
        assert_eq!(ds.x.shape(), (2, 2));
    }

    #[test]
    fn comments_and_blank_lines_skipped() {
        let ds = parse_csv("# comment\n1,2\n\n3,4\n", opts(None), "t".into()).unwrap();
        assert_eq!(ds.x.shape(), (2, 2));
    }

    #[test]
    fn errors_are_informative() {
        assert!(parse_csv("", opts(None), "t".into()).is_err());
        assert!(parse_csv("a,b\n", opts(None), "t".into()).is_err()); // header only
        assert!(parse_csv("1,2\n3\n", opts(None), "t".into()).is_err()); // ragged
        assert!(parse_csv("1,x\n", opts(None), "t".into()).is_err()); // non-numeric
        assert!(parse_csv("1,2\n", opts(Some(5)), "t".into()).is_err()); // label oob
        assert!(parse_csv("1\n2\n", opts(Some(0)), "t".into()).is_err()); // label only
    }

    #[test]
    fn write_then_load_roundtrip() {
        let ds = crate::synthetic::generate(&crate::synthetic::SyntheticConfig {
            n_samples: 30,
            n_features: 3,
            contamination: 0.2,
            seed: 5,
            ..Default::default()
        })
        .unwrap();
        let dir = std::env::temp_dir().join("suod_csv_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("export.csv");
        write_csv(&ds, &path).unwrap();
        let back = load_csv(&path, opts(Some(3))).unwrap();
        assert_eq!(back.x.shape(), ds.x.shape());
        assert_eq!(back.y, ds.y);
        for (a, b) in back.x.as_slice().iter().zip(ds.x.as_slice()) {
            assert!((a - b).abs() < 1e-9);
        }
    }

    #[test]
    fn file_roundtrip() {
        let dir = std::env::temp_dir().join("suod_csv_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("roundtrip.csv");
        std::fs::write(&path, "a,b\n1,2\n3,4\n").unwrap();
        let ds = load_csv(&path, opts(None)).unwrap();
        assert_eq!(ds.name, "roundtrip");
        assert_eq!(ds.x.shape(), (2, 2));
        assert!(load_csv(dir.join("missing.csv"), opts(None)).is_err());
    }
}
