//! CART regression tree.
//!
//! Splits minimize the weighted sum of child variances (equivalently,
//! maximize variance reduction). The tree supports per-split feature
//! subsampling (`max_features`) so [`crate::RandomForestRegressor`]
//! can decorrelate its members, and records impurity
//! decrease per feature to expose the feature importances the paper
//! highlights as PSA's interpretability benefit (§3.4, Remark 1).

use crate::{check_fit_inputs, Error, Regressor, Result};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use suod_linalg::Matrix;

/// Hyperparameters for [`DecisionTreeRegressor`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TreeParams {
    /// Maximum tree depth; the root is depth 0.
    pub max_depth: usize,
    /// Minimum samples required to attempt a split.
    pub min_samples_split: usize,
    /// Minimum samples in each child for a split to be valid.
    pub min_samples_leaf: usize,
    /// Number of features examined per split; `None` = all features.
    pub max_features: Option<usize>,
}

impl Default for TreeParams {
    fn default() -> Self {
        Self {
            max_depth: 12,
            min_samples_split: 2,
            min_samples_leaf: 1,
            max_features: None,
        }
    }
}

#[derive(Debug, Clone)]
enum Node {
    Leaf {
        value: f64,
    },
    Split {
        feature: usize,
        threshold: f64,
        left: usize,
        right: usize,
    },
}

/// CART regression tree with variance-reduction splits.
///
/// # Example
///
/// ```
/// use suod_linalg::Matrix;
/// use suod_supervised::{DecisionTreeRegressor, Regressor};
///
/// # fn main() -> Result<(), suod_supervised::Error> {
/// let x = Matrix::from_rows(&[vec![0.0], vec![1.0], vec![10.0], vec![11.0]]).unwrap();
/// let y = [0.0, 0.0, 5.0, 5.0];
/// let mut tree = DecisionTreeRegressor::default();
/// tree.fit(&x, &y)?;
/// assert_eq!(tree.predict(&x)?, vec![0.0, 0.0, 5.0, 5.0]);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct DecisionTreeRegressor {
    params: TreeParams,
    seed: u64,
    nodes: Vec<Node>,
    n_features: usize,
    importances: Vec<f64>,
    fitted: bool,
}

impl Default for DecisionTreeRegressor {
    fn default() -> Self {
        Self::new(TreeParams::default(), 0)
    }
}

impl DecisionTreeRegressor {
    /// Creates an unfitted tree with the given hyperparameters and RNG
    /// seed (the seed only matters when `max_features` subsamples).
    pub fn new(params: TreeParams, seed: u64) -> Self {
        Self {
            params,
            seed,
            nodes: Vec::new(),
            n_features: 0,
            importances: Vec::new(),
            fitted: false,
        }
    }

    /// The hyperparameters this tree was constructed with.
    pub fn params(&self) -> TreeParams {
        self.params
    }

    /// Per-feature impurity-decrease importances, normalized to sum to 1
    /// (all zeros when the tree is a single leaf).
    ///
    /// # Errors
    ///
    /// Returns [`Error::NotFitted`] before `fit`.
    pub fn feature_importances(&self) -> Result<Vec<f64>> {
        if !self.fitted {
            return Err(Error::NotFitted("DecisionTreeRegressor"));
        }
        let total: f64 = self.importances.iter().sum();
        if total <= 0.0 {
            return Ok(vec![0.0; self.n_features]);
        }
        Ok(self.importances.iter().map(|&v| v / total).collect())
    }

    /// Number of nodes in the fitted tree.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    fn predict_row(&self, row: &[f64]) -> f64 {
        let mut idx = 0;
        loop {
            match self.nodes[idx] {
                Node::Leaf { value } => return value,
                Node::Split {
                    feature,
                    threshold,
                    left,
                    right,
                } => {
                    idx = if row[feature] <= threshold {
                        left
                    } else {
                        right
                    };
                }
            }
        }
    }

    fn build(
        &mut self,
        x: &Matrix,
        y: &[f64],
        indices: &mut [usize],
        depth: usize,
        rng: &mut StdRng,
    ) -> usize {
        let node_mean = mean_of(y, indices);
        let node_sse = sse_of(y, indices, node_mean);
        let is_leaf = depth >= self.params.max_depth
            || indices.len() < self.params.min_samples_split
            || node_sse <= 1e-12;

        if !is_leaf {
            if let Some((feature, threshold, gain)) = self.best_split(x, y, indices, node_sse, rng)
            {
                self.importances[feature] += gain;
                let mid = partition(x, indices, feature, threshold);
                // Reserve this node's slot before recursing.
                let node_idx = self.nodes.len();
                self.nodes.push(Node::Leaf { value: node_mean });
                let (left_idx, right_idx) = {
                    let (li, ri) = indices.split_at_mut(mid);
                    let l = self.build(x, y, li, depth + 1, rng);
                    let r = self.build(x, y, ri, depth + 1, rng);
                    (l, r)
                };
                self.nodes[node_idx] = Node::Split {
                    feature,
                    threshold,
                    left: left_idx,
                    right: right_idx,
                };
                return node_idx;
            }
        }
        let node_idx = self.nodes.len();
        self.nodes.push(Node::Leaf { value: node_mean });
        node_idx
    }

    /// Finds the split maximizing SSE reduction; `None` when no valid
    /// split improves on the parent.
    fn best_split(
        &self,
        x: &Matrix,
        y: &[f64],
        indices: &[usize],
        parent_sse: f64,
        rng: &mut StdRng,
    ) -> Option<(usize, f64, f64)> {
        let d = x.ncols();
        let features: Vec<usize> = match self.params.max_features {
            Some(k) if k < d => sample_features(d, k, rng),
            _ => (0..d).collect(),
        };

        let mut best: Option<(usize, f64, f64)> = None;
        let n = indices.len() as f64;
        let min_leaf = self.params.min_samples_leaf.max(1);

        let mut order: Vec<usize> = indices.to_vec();
        for &f in &features {
            order.sort_by(|&a, &b| {
                x.get(a, f)
                    .partial_cmp(&x.get(b, f))
                    .expect("finite features")
            });
            // Prefix sums over sorted targets for O(1) SSE at each cut.
            let mut sum_left = 0.0;
            let mut sumsq_left = 0.0;
            let total_sum: f64 = order.iter().map(|&i| y[i]).sum();
            let total_sumsq: f64 = order.iter().map(|&i| y[i] * y[i]).sum();

            for (pos, &i) in order.iter().enumerate() {
                sum_left += y[i];
                sumsq_left += y[i] * y[i];
                let n_left = pos + 1;
                let n_right = order.len() - n_left;
                if n_left < min_leaf || n_right < min_leaf {
                    continue;
                }
                let v = x.get(i, f);
                let v_next = x.get(order[pos + 1], f);
                if v_next <= v {
                    // No threshold separates equal values.
                    continue;
                }
                let sse_left = sumsq_left - sum_left * sum_left / n_left as f64;
                let sum_right = total_sum - sum_left;
                let sumsq_right = total_sumsq - sumsq_left;
                let sse_right = sumsq_right - sum_right * sum_right / n_right as f64;
                let gain = parent_sse - sse_left - sse_right;
                if gain > 1e-12 * n && best.is_none_or(|(_, _, bg)| gain > bg) {
                    best = Some((f, 0.5 * (v + v_next), gain));
                }
            }
        }
        best
    }
}

impl Regressor for DecisionTreeRegressor {
    fn fit(&mut self, x: &Matrix, y: &[f64]) -> Result<()> {
        check_fit_inputs(x, y)?;
        self.nodes.clear();
        self.n_features = x.ncols();
        self.importances = vec![0.0; x.ncols()];
        let mut indices: Vec<usize> = (0..x.nrows()).collect();
        let mut rng = StdRng::seed_from_u64(self.seed);
        self.build(x, y, &mut indices, 0, &mut rng);
        self.fitted = true;
        Ok(())
    }

    fn predict(&self, x: &Matrix) -> Result<Vec<f64>> {
        if !self.fitted {
            return Err(Error::NotFitted("DecisionTreeRegressor"));
        }
        if x.ncols() != self.n_features {
            return Err(Error::InvalidParameter(format!(
                "expected {} features, got {}",
                self.n_features,
                x.ncols()
            )));
        }
        Ok(x.rows_iter().map(|row| self.predict_row(row)).collect())
    }

    fn name(&self) -> &'static str {
        "decision_tree"
    }

    fn feature_importances(&self) -> Option<Vec<f64>> {
        DecisionTreeRegressor::feature_importances(self).ok()
    }

    fn snapshot_write(&self, w: &mut suod_linalg::SnapshotWriter) -> Result<()> {
        write_tree_params(&self.params, w);
        w.write_u64(self.seed);
        w.write_usize(self.nodes.len());
        for node in &self.nodes {
            match node {
                Node::Leaf { value } => {
                    w.write_u8(0);
                    w.write_f64(*value);
                }
                Node::Split {
                    feature,
                    threshold,
                    left,
                    right,
                } => {
                    w.write_u8(1);
                    w.write_usize(*feature);
                    w.write_f64(*threshold);
                    w.write_usize(*left);
                    w.write_usize(*right);
                }
            }
        }
        w.write_usize(self.n_features);
        w.write_f64s(&self.importances);
        w.write_bool(self.fitted);
        Ok(())
    }
}

impl DecisionTreeRegressor {
    /// Reads a tree written by [`Regressor::snapshot_write`].
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidParameter`] on truncated or malformed state.
    pub fn snapshot_read(r: &mut suod_linalg::SnapshotReader<'_>) -> Result<Self> {
        let params = read_tree_params(r)?;
        let seed = r.read_u64()?;
        let n_nodes = r.read_usize()?;
        let mut nodes = Vec::new();
        for _ in 0..n_nodes {
            nodes.push(match r.read_u8()? {
                0 => Node::Leaf {
                    value: r.read_f64()?,
                },
                1 => Node::Split {
                    feature: r.read_usize()?,
                    threshold: r.read_f64()?,
                    left: r.read_usize()?,
                    right: r.read_usize()?,
                },
                other => {
                    return Err(Error::InvalidParameter(format!(
                        "snapshot: unknown tree node tag {other}"
                    )))
                }
            });
        }
        Ok(Self {
            params,
            seed,
            nodes,
            n_features: r.read_usize()?,
            importances: r.read_f64s()?,
            fitted: r.read_bool()?,
        })
    }
}

pub(crate) fn write_tree_params(params: &TreeParams, w: &mut suod_linalg::SnapshotWriter) {
    w.write_usize(params.max_depth);
    w.write_usize(params.min_samples_split);
    w.write_usize(params.min_samples_leaf);
    match params.max_features {
        Some(m) => {
            w.write_bool(true);
            w.write_usize(m);
        }
        None => w.write_bool(false),
    }
}

pub(crate) fn read_tree_params(r: &mut suod_linalg::SnapshotReader<'_>) -> Result<TreeParams> {
    Ok(TreeParams {
        max_depth: r.read_usize()?,
        min_samples_split: r.read_usize()?,
        min_samples_leaf: r.read_usize()?,
        max_features: if r.read_bool()? {
            Some(r.read_usize()?)
        } else {
            None
        },
    })
}

fn mean_of(y: &[f64], indices: &[usize]) -> f64 {
    if indices.is_empty() {
        return 0.0;
    }
    indices.iter().map(|&i| y[i]).sum::<f64>() / indices.len() as f64
}

fn sse_of(y: &[f64], indices: &[usize], mean: f64) -> f64 {
    indices.iter().map(|&i| (y[i] - mean) * (y[i] - mean)).sum()
}

/// Partitions `indices` in place so rows with `x[., feature] <= threshold`
/// come first; returns the boundary position.
fn partition(x: &Matrix, indices: &mut [usize], feature: usize, threshold: f64) -> usize {
    let mut lt = 0;
    for i in 0..indices.len() {
        if x.get(indices[i], feature) <= threshold {
            indices.swap(lt, i);
            lt += 1;
        }
    }
    lt
}

/// Samples `k` distinct feature indices from `0..d` (partial Fisher–Yates).
fn sample_features(d: usize, k: usize, rng: &mut StdRng) -> Vec<usize> {
    let mut pool: Vec<usize> = (0..d).collect();
    for i in 0..k {
        let j = rng.random_range(i..d);
        pool.swap(i, j);
    }
    pool.truncate(k);
    pool
}

#[cfg(test)]
mod tests {
    use super::*;

    fn step_data() -> (Matrix, Vec<f64>) {
        let x = Matrix::from_rows(&[
            vec![0.0],
            vec![1.0],
            vec![2.0],
            vec![10.0],
            vec![11.0],
            vec![12.0],
        ])
        .unwrap();
        let y = vec![1.0, 1.0, 1.0, 5.0, 5.0, 5.0];
        (x, y)
    }

    #[test]
    fn fits_step_function_exactly() {
        let (x, y) = step_data();
        let mut t = DecisionTreeRegressor::default();
        t.fit(&x, &y).unwrap();
        assert_eq!(t.predict(&x).unwrap(), y);
        // Unseen points route to the right leaf.
        let q = Matrix::from_rows(&[vec![-5.0], vec![100.0]]).unwrap();
        assert_eq!(t.predict(&q).unwrap(), vec![1.0, 5.0]);
    }

    #[test]
    fn depth_zero_is_global_mean() {
        let (x, y) = step_data();
        let mut t = DecisionTreeRegressor::new(
            TreeParams {
                max_depth: 0,
                ..Default::default()
            },
            0,
        );
        t.fit(&x, &y).unwrap();
        let p = t.predict(&x).unwrap();
        assert!(p.iter().all(|&v| (v - 3.0).abs() < 1e-12));
        assert_eq!(t.node_count(), 1);
    }

    #[test]
    fn min_samples_leaf_respected() {
        let (x, y) = step_data();
        let mut t = DecisionTreeRegressor::new(
            TreeParams {
                min_samples_leaf: 4,
                ..Default::default()
            },
            0,
        );
        t.fit(&x, &y).unwrap();
        // 6 points cannot split into two leaves of >= 4: stays a stump.
        assert_eq!(t.node_count(), 1);
    }

    #[test]
    fn picks_informative_feature() {
        // Feature 1 is pure noise; feature 0 determines y.
        let x = Matrix::from_rows(&[
            vec![0.0, 3.1],
            vec![1.0, -2.0],
            vec![10.0, 3.0],
            vec![11.0, -2.5],
        ])
        .unwrap();
        let y = vec![0.0, 0.0, 9.0, 9.0];
        let mut t = DecisionTreeRegressor::default();
        t.fit(&x, &y).unwrap();
        let imp = t.feature_importances().unwrap();
        assert!(imp[0] > 0.9, "importances: {imp:?}");
        assert!((imp.iter().sum::<f64>() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn not_fitted_errors() {
        let t = DecisionTreeRegressor::default();
        assert!(matches!(
            t.predict(&Matrix::zeros(1, 1)).unwrap_err(),
            Error::NotFitted(_)
        ));
        assert!(t.feature_importances().is_err());
    }

    #[test]
    fn shape_errors() {
        let mut t = DecisionTreeRegressor::default();
        assert!(t.fit(&Matrix::zeros(2, 1), &[1.0]).is_err());
        assert!(t.fit(&Matrix::zeros(0, 1), &[]).is_err());
        let (x, y) = step_data();
        t.fit(&x, &y).unwrap();
        assert!(t.predict(&Matrix::zeros(1, 5)).is_err());
    }

    #[test]
    fn constant_target_single_leaf() {
        let (x, _) = step_data();
        let y = vec![2.5; 6];
        let mut t = DecisionTreeRegressor::default();
        t.fit(&x, &y).unwrap();
        assert_eq!(t.node_count(), 1);
        assert!(t.predict(&x).unwrap().iter().all(|&v| v == 2.5));
    }

    #[test]
    fn duplicate_feature_values_never_split_apart() {
        // Both rows have x=1 but different y; no threshold can separate.
        let x = Matrix::from_rows(&[vec![1.0], vec![1.0]]).unwrap();
        let y = vec![0.0, 10.0];
        let mut t = DecisionTreeRegressor::default();
        t.fit(&x, &y).unwrap();
        assert_eq!(t.node_count(), 1);
        assert_eq!(t.predict(&x).unwrap(), vec![5.0, 5.0]);
    }

    #[test]
    fn max_features_subsampling_still_learns() {
        // With max_features=1 of 2, repeated splits still find signal.
        let rows: Vec<Vec<f64>> = (0..40)
            .map(|i| vec![i as f64, (i * 7 % 13) as f64])
            .collect();
        let x = Matrix::from_rows(&rows).unwrap();
        let y: Vec<f64> = (0..40).map(|i| if i < 20 { 0.0 } else { 1.0 }).collect();
        let mut t = DecisionTreeRegressor::new(
            TreeParams {
                max_features: Some(1),
                ..Default::default()
            },
            7,
        );
        t.fit(&x, &y).unwrap();
        let pred = t.predict(&x).unwrap();
        let correct = pred
            .iter()
            .zip(&y)
            .filter(|(p, t)| (*p - **t).abs() < 0.5)
            .count();
        assert!(correct >= 35, "only {correct}/40 correct");
    }
}
