#![warn(missing_docs)]

//! Pipeline observability for the SUOD reproduction.
//!
//! SUOD's value claim is end-to-end speedup from three composable modules
//! (RP, PSA, BPS — paper §3), which makes the *time breakdown* of a fit a
//! first-class artifact: a practitioner tuning a pool needs to see where
//! the wall-clock actually went — projection, shared neighbour-graph
//! builds, individual detector fits, PSA distillation, scheduling, or
//! executor overhead. Following TOD's (Zhao et al., 2021) systems-level
//! profiling of outlier-detection pipelines, this crate defines a
//! low-overhead structured tracing/metrics layer that the whole workspace
//! threads through its hot paths.
//!
//! # Design
//!
//! * [`Observer`] — the instrumentation trait: span begin/end carrying a
//!   [`Stage`] plus model/task/worker attribution ([`SpanAttrs`]), and
//!   monotonic [`Counter`] events. Every method has an empty default
//!   body, so the no-op observer compiles to two virtual calls per span
//!   and touches no data — instrumented code is **bit-identical** to
//!   uninstrumented code by construction (enforced by the system tests).
//! * [`NoopObserver`] — the zero-cost default.
//! * [`RecordingObserver`] — a lock-sharded recorder capturing a
//!   deterministic trace: the set of spans (stage + model/task
//!   attribution) and deterministic counters are identical across worker
//!   counts; only wall-clock fields (timestamps, durations, worker ids,
//!   steal counts) vary.
//! * [`Trace`] — an immutable snapshot with latency histograms, exported
//!   to a stable JSON schema ([`export::to_json`]) or the Chrome
//!   `trace_event` format ([`export::to_chrome_trace`], loadable in
//!   `chrome://tracing` / Perfetto).
//!
//! # Example
//!
//! ```
//! use std::sync::Arc;
//! use suod_observe::{Counter, Observer, RecordingObserver, SpanAttrs, Stage};
//!
//! let recorder = Arc::new(RecordingObserver::new());
//! let observer: Arc<dyn Observer> = recorder.clone();
//! let span = observer.span_begin(Stage::ModelFit, SpanAttrs::model(3));
//! observer.counter(Counter::CacheHit, 1);
//! observer.span_end(span);
//!
//! let trace = recorder.trace();
//! assert_eq!(trace.spans().len(), 1);
//! assert_eq!(trace.counter(Counter::CacheHit), 1);
//! let json = suod_observe::export::to_json(&trace);
//! assert!(json.contains("\"model_fit\""));
//! ```

pub mod export;
pub mod json;
pub mod recording;

pub use recording::{HistogramRecord, RecordingObserver, SpanRecord, Trace};

/// A pipeline stage a span can belong to.
///
/// The variants cover every instrumented section of the SUOD pipeline;
/// [`Stage::name`] is the stable string used by both exporters and the
/// JSON schema.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
#[non_exhaustive]
pub enum Stage {
    /// Whole `Suod::fit` call (the root span of a fit trace).
    Fit,
    /// Per-model Johnson–Lindenstrauss projection of the training data.
    Projection,
    /// Neighbour-cache planning pass (grouping proximity models).
    NeighborPlan,
    /// One shared neighbour-graph build (index + leave-one-out sweep).
    NeighborBuild,
    /// The leave-one-out query sweep over a built neighbour index (the
    /// part an approximate backend accelerates, split out from
    /// [`Stage::NeighborBuild`] so recall/speed tradeoffs show up in
    /// traces).
    NeighborQuery,
    /// BPS cost forecasting and worker assignment.
    BpsPlan,
    /// One detector fit (first attempt), attributed to its pool index.
    ModelFit,
    /// One detector fit retry with a re-salted seed.
    ModelRetry,
    /// PSA distillation of one costly model into its approximator.
    PsaDistill,
    /// Score standardization + contamination-threshold learning.
    Threshold,
    /// Whole `decision_function` call (the root span of a predict trace).
    Predict,
    /// One (model × row-chunk) prediction task.
    PredictChunk,
    /// One model's full sequential scoring pass
    /// (`decision_function_observed`).
    ModelPredict,
    /// Executor task lifecycle: one task's execution on a worker.
    ExecutorTask,
    /// One request's admission into a scoring service's bounded queue
    /// (`suod-serve`).
    RequestEnqueue,
    /// Draining the admission queue into one micro-batch, including the
    /// deadline-shed pass (`suod-serve`).
    BatchAssemble,
    /// Survivor-only score combination of one served batch.
    Combine,
    /// Encoding a fitted pool into a `suod-pool/1` snapshot
    /// (`Suod::save`).
    SnapshotSave,
    /// Decoding and rebuilding a pool from a `suod-pool/1` snapshot
    /// (`Suod::load`), including deterministic index reconstruction.
    SnapshotLoad,
    /// Atomically swapping a serving pool for a reloaded one
    /// (`ScoreService::reload`).
    PoolReload,
    /// One client connection's lifetime on the serving front end, from
    /// hand-off to a connection worker until the socket closes
    /// (`suod-serve` network front end).
    Connection,
    /// Handling one framed wire request on an established connection:
    /// decode, lane admission, submit, respond (`suod-wire/1`).
    WireRequest,
}

/// Every stage, in export order.
pub const STAGES: &[Stage] = &[
    Stage::Fit,
    Stage::Projection,
    Stage::NeighborPlan,
    Stage::NeighborBuild,
    Stage::NeighborQuery,
    Stage::BpsPlan,
    Stage::ModelFit,
    Stage::ModelRetry,
    Stage::PsaDistill,
    Stage::Threshold,
    Stage::Predict,
    Stage::PredictChunk,
    Stage::ModelPredict,
    Stage::ExecutorTask,
    Stage::RequestEnqueue,
    Stage::BatchAssemble,
    Stage::Combine,
    Stage::SnapshotSave,
    Stage::SnapshotLoad,
    Stage::PoolReload,
    Stage::Connection,
    Stage::WireRequest,
];

impl Stage {
    /// Stable schema name of the stage.
    pub fn name(self) -> &'static str {
        match self {
            Stage::Fit => "fit",
            Stage::Projection => "projection",
            Stage::NeighborPlan => "neighbor_plan",
            Stage::NeighborBuild => "neighbor_build",
            Stage::NeighborQuery => "neighbor_query",
            Stage::BpsPlan => "bps_plan",
            Stage::ModelFit => "model_fit",
            Stage::ModelRetry => "model_retry",
            Stage::PsaDistill => "psa_distill",
            Stage::Threshold => "threshold",
            Stage::Predict => "predict",
            Stage::PredictChunk => "predict_chunk",
            Stage::ModelPredict => "model_predict",
            Stage::ExecutorTask => "executor_task",
            Stage::RequestEnqueue => "request_enqueue",
            Stage::BatchAssemble => "batch_assemble",
            Stage::Combine => "combine",
            Stage::SnapshotSave => "snapshot_save",
            Stage::SnapshotLoad => "snapshot_load",
            Stage::PoolReload => "pool_reload",
            Stage::Connection => "connection",
            Stage::WireRequest => "wire_request",
        }
    }

    /// Parses a stable schema name back into a stage.
    pub fn from_name(name: &str) -> Option<Self> {
        STAGES.iter().copied().find(|s| s.name() == name)
    }
}

impl std::fmt::Display for Stage {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// A monotonic counter the pipeline increments.
///
/// Deterministic counters ([`Counter::is_deterministic`]) take the same
/// value for a given `(data, pool, seed)` regardless of worker count;
/// scheduling counters (steals) and wall-clock counters (stragglers) are
/// excluded from that guarantee.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
#[non_exhaustive]
pub enum Counter {
    /// Neighbour-cache requests served from an existing shared graph.
    CacheHit,
    /// Neighbour-cache requests that had to build a graph (standalone
    /// detector fits count their private build here too, so pooled and
    /// standalone telemetry reconcile).
    CacheMiss,
    /// Successful work steals inside the executor (scheduling-dependent).
    Steal,
    /// Tasks that panicked or failed at the executor fault boundary.
    TaskFailure,
    /// Model fit re-executions granted after a failure.
    Retry,
    /// Models quarantined out of the ensemble after exhausting retries.
    Quarantine,
    /// Models flagged as stragglers against the BPS forecast
    /// (wall-clock-dependent).
    Straggler,
    /// Contiguous MR/NR panels packed by the GEMM distance kernels
    /// (logical count, derived from matrix shapes — thread-independent).
    PackedPanel,
    /// Register-blocked micro-kernel tile invocations in the GEMM
    /// distance kernels (logical count, derived from matrix shapes).
    GemmTile,
    /// Kernel requests the selected distance backend could not serve
    /// (e.g. a non-Euclidean metric on the gemm backend) and handed to a
    /// slower path.
    KernelFallback,
    /// GEMM kernel invocations that ran on an explicit SIMD lane (AVX2).
    /// Host-dependent (runtime feature detection picks the lane), so it
    /// is excluded from cross-host determinism — but it is still
    /// independent of worker count on a given host.
    SimdKernel,
    /// GEMM kernel invocations that ran on the scalar fallback lane.
    /// Host-dependent, like [`Counter::SimdKernel`].
    ScalarKernel,
    /// GEMM kernel invocations that ran in mixed precision (f32 packed
    /// storage, f64 accumulation). Config-derived and deterministic.
    MixedKernel,
    /// kNN queries answered by the approximate HNSW graph (request-
    /// derived, thread-independent — the graph is identical at any
    /// worker count for a fixed seed).
    AnnQuery,
    /// Requests for the approximate neighbor backend that routed to the
    /// exact path instead (small n or non-Euclidean metric) — the
    /// exactness-fallback counter.
    AnnFallback,
    /// Score requests accepted into a serving queue. Depends on queue
    /// occupancy at arrival time (wall-clock-class).
    Admitted,
    /// Score requests rejected with `Busy` because the bounded admission
    /// queue was full — the explicit backpressure signal
    /// (wall-clock-class).
    Rejected,
    /// Queued requests shed at batch assembly because their deadline had
    /// already passed — work the service refused to compute
    /// (wall-clock-class under the system clock; deterministic for a
    /// fixed arrival trace under a manual clock).
    Shed,
    /// Requests whose response was produced after their deadline (the
    /// batch was already in flight when the deadline expired, so the
    /// result is returned anyway). Wall-clock-class.
    DeadlineMissed,
    /// Models quarantined out of serving after exhausting their
    /// predict-time failure budget. The panic/NaN channels are
    /// seed-deterministic, but the timeout channel is wall-clock, so the
    /// counter as a whole is excluded from determinism guarantees.
    PredictQuarantined,
    /// Fitted pools encoded into `suod-pool/1` snapshots (call-derived
    /// and deterministic).
    SnapshotSave,
    /// Pools decoded from `suod-pool/1` snapshots (call-derived and
    /// deterministic).
    SnapshotLoad,
    /// Serving pools atomically swapped by a hot reload. Reloads are
    /// operator-initiated events, not data-derived, so the counter is
    /// excluded from determinism guarantees like the other serving
    /// counters.
    PoolReload,
    /// Client connections handed to a front-end connection worker
    /// (wall-clock-class, like every serve-front counter).
    ConnAccepted,
    /// Connections closed at accept time because the bounded hand-off
    /// queue to the worker pool was full — connection-level shed.
    ConnRejected,
    /// Keep-alive connections closed by the server because the client
    /// sent nothing for a full idle window.
    ConnIdleClosed,
    /// Transient `accept(2)` failures survived by the front end (logged,
    /// backed off, and retried instead of taking the listener down).
    AcceptRetry,
    /// Framed `suod-wire/1` requests decoded on the front end (every
    /// outcome: scored, busy, shed, or error).
    WireRequests,
    /// Wire requests turned away because their client identity was
    /// already at its in-flight quota.
    QuotaRejected,
    /// Normal-lane wire requests turned away because queue occupancy had
    /// crossed the lane headroom reserved for the high-priority lane.
    LaneRejected,
}

/// Every counter, in export order.
pub const COUNTERS: &[Counter] = &[
    Counter::CacheHit,
    Counter::CacheMiss,
    Counter::Steal,
    Counter::TaskFailure,
    Counter::Retry,
    Counter::Quarantine,
    Counter::Straggler,
    Counter::PackedPanel,
    Counter::GemmTile,
    Counter::KernelFallback,
    Counter::SimdKernel,
    Counter::ScalarKernel,
    Counter::MixedKernel,
    Counter::AnnQuery,
    Counter::AnnFallback,
    Counter::Admitted,
    Counter::Rejected,
    Counter::Shed,
    Counter::DeadlineMissed,
    Counter::PredictQuarantined,
    Counter::SnapshotSave,
    Counter::SnapshotLoad,
    Counter::PoolReload,
    Counter::ConnAccepted,
    Counter::ConnRejected,
    Counter::ConnIdleClosed,
    Counter::AcceptRetry,
    Counter::WireRequests,
    Counter::QuotaRejected,
    Counter::LaneRejected,
];

impl Counter {
    /// Stable schema name of the counter.
    pub fn name(self) -> &'static str {
        match self {
            Counter::CacheHit => "cache_hit",
            Counter::CacheMiss => "cache_miss",
            Counter::Steal => "steal",
            Counter::TaskFailure => "task_failure",
            Counter::Retry => "retry",
            Counter::Quarantine => "quarantine",
            Counter::Straggler => "straggler",
            Counter::PackedPanel => "packed_panel",
            Counter::GemmTile => "gemm_tile",
            Counter::KernelFallback => "kernel_fallback",
            Counter::SimdKernel => "simd_kernel",
            Counter::ScalarKernel => "scalar_kernel",
            Counter::MixedKernel => "mixed_kernel",
            Counter::AnnQuery => "ann_query",
            Counter::AnnFallback => "ann_fallback",
            Counter::Admitted => "admitted",
            Counter::Rejected => "rejected",
            Counter::Shed => "shed",
            Counter::DeadlineMissed => "deadline_missed",
            Counter::PredictQuarantined => "predict_quarantined",
            Counter::SnapshotSave => "snapshot_save",
            Counter::SnapshotLoad => "snapshot_load",
            Counter::PoolReload => "pool_reload",
            Counter::ConnAccepted => "conn_accepted",
            Counter::ConnRejected => "conn_rejected",
            Counter::ConnIdleClosed => "conn_idle_closed",
            Counter::AcceptRetry => "accept_retry",
            Counter::WireRequests => "wire_requests",
            Counter::QuotaRejected => "quota_rejected",
            Counter::LaneRejected => "lane_rejected",
        }
    }

    /// Parses a stable schema name back into a counter.
    pub fn from_name(name: &str) -> Option<Self> {
        COUNTERS.iter().copied().find(|c| c.name() == name)
    }

    /// `true` when the counter's value is independent of worker count,
    /// wall clock, and host hardware (part of the trace-determinism
    /// guarantee). The SIMD-lane counters are excluded: the lane is
    /// picked by runtime feature detection, so traces from hosts with
    /// different vector units legitimately differ there. The serving
    /// counters are all excluded — admission, shedding, and deadline
    /// accounting depend on arrival timing and queue occupancy, and the
    /// predict-quarantine counter has a wall-clock timeout channel.
    pub fn is_deterministic(self) -> bool {
        !matches!(
            self,
            Counter::Steal
                | Counter::Straggler
                | Counter::SimdKernel
                | Counter::ScalarKernel
                | Counter::Admitted
                | Counter::Rejected
                | Counter::Shed
                | Counter::DeadlineMissed
                | Counter::PredictQuarantined
                | Counter::PoolReload
                | Counter::ConnAccepted
                | Counter::ConnRejected
                | Counter::ConnIdleClosed
                | Counter::AcceptRetry
                | Counter::WireRequests
                | Counter::QuotaRejected
                | Counter::LaneRejected
        )
    }
}

impl std::fmt::Display for Counter {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Deterministic integrity signature over a byte payload.
///
/// FNV-1a 64-bit, rendered as `fnv1a64:<16 hex digits>`. The `suod-pool/1`
/// snapshot format stores this signature over its payload section; a
/// mismatch at load time means the bytes were corrupted or hand-edited
/// and surfaces as a typed `SnapshotCorrupt` error instead of a
/// silently-wrong pool. The hash is a pure function of the bytes — no
/// clocks, no host state — so it shares the determinism contract of the
/// [`Trace::deterministic_signature`](recording::Trace::deterministic_signature)
/// lines.
pub fn payload_signature(bytes: &[u8]) -> String {
    const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const FNV_PRIME: u64 = 0x1_0000_01b3;
    let mut hash = FNV_OFFSET;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(FNV_PRIME);
    }
    format!("fnv1a64:{hash:016x}")
}

/// Attribution attached to a span at begin time.
///
/// `model` and `task` are deterministic identities (pool index, task
/// index within a batch); `worker` is the executing worker thread and is
/// excluded from determinism guarantees, like timestamps.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SpanAttrs {
    /// Pool index of the model this span works on, if any.
    pub model: Option<usize>,
    /// Task index within the executor batch, if any.
    pub task: Option<usize>,
    /// Worker thread that executed the span (wall-clock-class field).
    pub worker: Option<usize>,
}

impl SpanAttrs {
    /// No attribution (stage-level span).
    pub fn none() -> Self {
        Self::default()
    }

    /// Attributes the span to pool model `i`.
    pub fn model(i: usize) -> Self {
        Self {
            model: Some(i),
            ..Self::default()
        }
    }

    /// Attributes the span to executor task `i`.
    pub fn task(i: usize) -> Self {
        Self {
            task: Some(i),
            ..Self::default()
        }
    }

    /// Adds a task index.
    pub fn with_task(mut self, i: usize) -> Self {
        self.task = Some(i);
        self
    }

    /// Adds the executing worker id.
    pub fn on_worker(mut self, w: usize) -> Self {
        self.worker = Some(w);
        self
    }
}

/// Opaque handle returned by [`Observer::span_begin`] and consumed by
/// [`Observer::span_end`]. The no-op observer returns [`SpanId::NONE`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpanId(pub(crate) u64);

impl SpanId {
    /// The null span id (no recording behind it).
    pub const NONE: SpanId = SpanId(0);

    /// Raw id value (0 = none; recording ids start at 1).
    pub fn raw(self) -> u64 {
        self.0
    }
}

/// The instrumentation sink the pipeline reports into.
///
/// All methods have empty defaults: an implementation overrides only what
/// it needs, and the default [`NoopObserver`] is free. Implementations
/// must be `Send + Sync` — spans begin and end on executor worker
/// threads.
///
/// Observers receive *notifications only*: no method can influence the
/// computation, which is how instrumented code stays bit-identical to
/// uninstrumented code.
pub trait Observer: Send + Sync {
    /// `true` when this observer records anything. Call sites may use
    /// this to skip building expensive attributes; they must not change
    /// any computed value based on it.
    fn enabled(&self) -> bool {
        false
    }

    /// Opens a span for `stage` with `attrs` attribution. The returned id
    /// must be passed to [`span_end`](Self::span_end) exactly once.
    fn span_begin(&self, stage: Stage, attrs: SpanAttrs) -> SpanId {
        let _ = (stage, attrs);
        SpanId::NONE
    }

    /// Closes the span opened as `id`. Unknown/`NONE` ids are ignored.
    fn span_end(&self, id: SpanId) {
        let _ = id;
    }

    /// Adds `delta` to `counter`.
    fn counter(&self, counter: Counter, delta: u64) {
        let _ = (counter, delta);
    }
}

/// The zero-cost default observer: records nothing, allocates nothing.
#[derive(Debug, Clone, Copy, Default)]
pub struct NoopObserver;

impl Observer for NoopObserver {}

use std::sync::Arc;

/// A shared no-op observer (the default for every instrumented API).
pub fn noop() -> Arc<dyn Observer> {
    Arc::new(NoopObserver)
}

/// RAII guard closing a span on drop. Created by [`span`].
pub struct SpanGuard<'a> {
    observer: &'a dyn Observer,
    id: SpanId,
}

impl Drop for SpanGuard<'_> {
    fn drop(&mut self) {
        self.observer.span_end(self.id);
    }
}

/// Opens a span that closes when the returned guard drops.
pub fn span(observer: &dyn Observer, stage: Stage, attrs: SpanAttrs) -> SpanGuard<'_> {
    SpanGuard {
        id: observer.span_begin(stage, attrs),
        observer,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stage_names_round_trip() {
        for &s in STAGES {
            assert_eq!(Stage::from_name(s.name()), Some(s));
        }
        assert_eq!(Stage::from_name("nope"), None);
    }

    #[test]
    fn counter_names_round_trip() {
        for &c in COUNTERS {
            assert_eq!(Counter::from_name(c.name()), Some(c));
        }
        assert_eq!(Counter::from_name("nope"), None);
    }

    #[test]
    fn scheduling_counters_are_not_deterministic() {
        assert!(!Counter::Steal.is_deterministic());
        assert!(!Counter::Straggler.is_deterministic());
        assert!(!Counter::Admitted.is_deterministic());
        assert!(!Counter::Rejected.is_deterministic());
        assert!(!Counter::Shed.is_deterministic());
        assert!(!Counter::DeadlineMissed.is_deterministic());
        assert!(!Counter::PredictQuarantined.is_deterministic());
        assert!(Counter::CacheHit.is_deterministic());
        assert!(Counter::Retry.is_deterministic());
        assert!(Counter::PackedPanel.is_deterministic());
        assert!(Counter::GemmTile.is_deterministic());
        assert!(Counter::KernelFallback.is_deterministic());
        assert!(Counter::AnnQuery.is_deterministic());
        assert!(Counter::AnnFallback.is_deterministic());
    }

    #[test]
    fn noop_observer_is_inert() {
        let obs = NoopObserver;
        assert!(!obs.enabled());
        let id = obs.span_begin(Stage::Fit, SpanAttrs::none());
        assert_eq!(id, SpanId::NONE);
        obs.span_end(id);
        obs.counter(Counter::Steal, 3);
    }

    #[test]
    fn span_guard_closes_on_drop() {
        let rec = RecordingObserver::new();
        {
            let _g = span(&rec, Stage::Fit, SpanAttrs::none());
        }
        let trace = rec.trace();
        assert_eq!(trace.spans().len(), 1);
        assert_eq!(trace.spans()[0].stage, Stage::Fit);
    }
}
