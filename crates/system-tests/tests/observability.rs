//! Observability transparency: instrumenting a pipeline must never
//! change a number, and the trace must be a faithful, deterministic
//! account of what ran.
//!
//! Contracts pinned here:
//! - attaching a `RecordingObserver` is bit-transparent — score matrices
//!   with and without an observer are identical at any worker count;
//! - the wall-clock-free `deterministic_signature()` of a fit+predict
//!   trace is identical across worker counts;
//! - the stable JSON export (`suod-trace/1`) round-trips losslessly for
//!   real pipeline traces, not just synthetic ones;
//! - trace counters reconcile *exactly* with `ExecutionReport` and
//!   `ModelHealth` — the legacy reports are views of the event stream;
//! - on a 20-model fit, child spans account for ≥95 % of the root
//!   `Fit` span's wall-clock.

use std::sync::Arc;
use suod::observe::export::{from_json, to_json};
use suod::observe::{Counter, Stage};
use suod::prelude::*;
use suod_datasets::registry;
use suod_linalg::Matrix;

fn pool() -> Vec<ModelSpec> {
    vec![
        ModelSpec::Knn {
            n_neighbors: 8,
            method: KnnMethod::Largest,
        },
        ModelSpec::Knn {
            n_neighbors: 12,
            method: KnnMethod::Mean,
        },
        ModelSpec::Lof {
            n_neighbors: 10,
            metric: Metric::Euclidean,
        },
        ModelSpec::Abod { n_neighbors: 6 },
        ModelSpec::Hbos {
            n_bins: 12,
            tolerance: 0.3,
        },
        ModelSpec::IForest {
            n_estimators: 20,
            max_features: 0.8,
        },
    ]
}

fn fit_and_score(
    observer: Option<Arc<RecordingObserver>>,
    n_workers: usize,
    x: &Matrix,
    queries: &Matrix,
) -> (Matrix, Matrix) {
    let mut builder = Suod::builder()
        .base_estimators(pool())
        .with_projection(true)
        .with_approximation(false)
        .with_bps(true)
        .with_neighbor_cache(true)
        .n_workers(n_workers)
        .seed(23);
    if let Some(rec) = observer {
        builder = builder.observer(rec);
    }
    let mut model = builder.build().expect("valid config");
    model.fit(x).expect("fit succeeds");
    let train = model.training_scores().expect("fitted");
    let query = model.decision_function(queries).expect("fitted");
    (train, query)
}

#[test]
fn observer_is_bit_transparent_at_any_worker_count() {
    let ds = registry::load_scaled("cardio", 29, 0.25).expect("registry dataset");
    let mut shifted = ds.x.clone();
    for v in shifted.as_mut_slice() {
        *v += 0.25;
    }
    let queries = ds.x.vstack(&shifted).expect("same width");

    let (train_plain, query_plain) = fit_and_score(None, 1, &ds.x, &queries);
    for workers in [1usize, 8] {
        let rec = Arc::new(RecordingObserver::new());
        let (train_obs, query_obs) = fit_and_score(Some(rec.clone()), workers, &ds.x, &queries);
        assert_eq!(
            train_plain.as_slice(),
            train_obs.as_slice(),
            "training scores drift under observation at n_workers={workers}"
        );
        assert_eq!(
            query_plain.as_slice(),
            query_obs.as_slice(),
            "prediction scores drift under observation at n_workers={workers}"
        );
        let trace = rec.trace();
        assert!(trace.spans_of(Stage::Fit).count() == 1, "one fit root span");
        assert!(trace.spans_of(Stage::ModelFit).count() == pool().len());
    }
}

#[test]
fn trace_signature_identical_across_worker_counts() {
    let ds = registry::load_scaled("cardio", 31, 0.25).expect("registry dataset");
    let signature_at = |workers: usize| {
        let rec = Arc::new(RecordingObserver::new());
        let (_, _) = fit_and_score(Some(rec.clone()), workers, &ds.x, &ds.x);
        rec.trace().deterministic_signature()
    };
    let base = signature_at(1);
    assert!(!base.is_empty());
    for workers in [2usize, 8] {
        assert_eq!(
            base,
            signature_at(workers),
            "trace signature differs at n_workers={workers}"
        );
    }
}

#[test]
fn real_pipeline_trace_round_trips_through_json() {
    let ds = registry::load_scaled("pima", 37, 0.4).expect("registry dataset");
    let rec = Arc::new(RecordingObserver::new());
    let (_, _) = fit_and_score(Some(rec.clone()), 4, &ds.x, &ds.x);
    let trace = rec.trace();

    let exported = to_json(&trace);
    let parsed = from_json(&exported).expect("export satisfies its own schema");
    assert_eq!(parsed, trace, "JSON round-trip must be lossless");
    assert_eq!(to_json(&parsed), exported, "re-export must be byte-stable");
}

#[test]
fn trace_counters_reconcile_with_execution_report() {
    let ds = registry::load_scaled("cardio", 41, 0.25).expect("registry dataset");
    let rec = Arc::new(RecordingObserver::new());
    let mut model = Suod::builder()
        .base_estimators(pool())
        .with_neighbor_cache(true)
        .with_projection(false)
        .n_workers(4)
        .seed(11)
        .observer(rec.clone())
        .build()
        .expect("valid config");
    model.fit(&ds.x).expect("fit succeeds");

    let trace = rec.trace();
    let diag = model.diagnostics().expect("fit emits telemetry");
    let exec = diag.execution();
    // The legacy report and the trace are views of one event stream:
    // every counter must agree exactly, not approximately.
    assert!(exec.cache_hits + exec.cache_misses > 0, "cache exercised");
    assert_eq!(trace.counter(Counter::CacheHit), exec.cache_hits);
    assert_eq!(trace.counter(Counter::CacheMiss), exec.cache_misses);
    assert_eq!(trace.counter(Counter::Retry), exec.retries as u64);
    assert_eq!(trace.counter(Counter::TaskFailure), exec.failures as u64);
    assert_eq!(
        trace.counter(Counter::Quarantine),
        diag.health().quarantined() as u64
    );
    // One closed ModelFit span per attempted model, each attributed.
    let model_fits: Vec<_> = trace.spans_of(Stage::ModelFit).collect();
    assert_eq!(model_fits.len(), pool().len());
    assert!(model_fits.iter().all(|s| s.model.is_some()));
}

#[test]
fn twenty_model_fit_spans_cover_95_percent_of_wall_clock() {
    let ds = registry::load_scaled("cardio", 43, 0.3).expect("registry dataset");
    let rec = Arc::new(RecordingObserver::new());
    let mut model = Suod::builder()
        .base_estimators(suod::random_pool(20, 43))
        .with_projection(true)
        .with_approximation(true)
        .with_bps(true)
        .n_workers(4)
        .seed(43)
        .observer(rec.clone())
        .build()
        .expect("valid config");
    model.fit(&ds.x).expect("fit succeeds");

    let trace = rec.trace();
    assert_eq!(trace.spans_of(Stage::ModelFit).count(), 20);
    let coverage = trace.coverage_of(Stage::Fit);
    assert!(
        coverage >= 0.95,
        "fit-stage spans cover only {:.1}% of the fit wall-clock",
        coverage * 100.0
    );
}
