//! Area under the ROC curve.

use crate::{check_lengths, Error, Result};
use suod_linalg::rank::average_ranks;

/// Area under the receiver-operating-characteristic curve.
///
/// Computed via the Mann–Whitney U statistic on average ranks, which
/// handles tied scores exactly the way scikit-learn does: AUC equals the
/// probability that a random outlier outscores a random inlier, counting
/// ties as half.
///
/// Labels are binary: non-zero means outlier. Higher scores must mean "more
/// outlying" (the PyOD convention used throughout this workspace).
///
/// # Errors
///
/// * [`Error::LengthMismatch`] when the vectors differ in length.
/// * [`Error::Empty`] on empty input.
/// * [`Error::Undefined`] when only one class is present.
/// * [`Error::NonFinite`] when any score is NaN or infinite — NaN has no
///   rank, so the AUC would silently depend on sort-order arbitraria.
///
/// # Example
///
/// ```
/// let auc = suod_metrics::roc_auc(&[0, 1], &[0.2, 0.9])?;
/// assert_eq!(auc, 1.0);
/// # Ok::<(), suod_metrics::Error>(())
/// ```
pub fn roc_auc(labels: &[i32], scores: &[f64]) -> Result<f64> {
    check_lengths(labels.len(), scores.len())?;
    if labels.is_empty() {
        return Err(Error::Empty("roc_auc"));
    }
    if scores.iter().any(|v| !v.is_finite()) {
        return Err(Error::NonFinite("roc_auc"));
    }
    let n_pos = labels.iter().filter(|&&l| l != 0).count();
    let n_neg = labels.len() - n_pos;
    if n_pos == 0 || n_neg == 0 {
        return Err(Error::Undefined("roc_auc requires both classes"));
    }
    let ranks = average_ranks(scores);
    let rank_sum_pos: f64 = labels
        .iter()
        .zip(&ranks)
        .filter(|(&l, _)| l != 0)
        .map(|(_, &r)| r)
        .sum();
    let u = rank_sum_pos - (n_pos * (n_pos + 1)) as f64 / 2.0;
    Ok(u / (n_pos as f64 * n_neg as f64))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_separation() {
        assert_eq!(roc_auc(&[0, 0, 1, 1], &[0.1, 0.2, 0.8, 0.9]).unwrap(), 1.0);
    }

    #[test]
    fn inverted_separation() {
        assert_eq!(roc_auc(&[1, 1, 0, 0], &[0.1, 0.2, 0.8, 0.9]).unwrap(), 0.0);
    }

    #[test]
    fn sklearn_reference_case() {
        // sklearn.metrics.roc_auc_score([0,0,1,1],[0.1,0.4,0.35,0.8]) == 0.75
        let auc = roc_auc(&[0, 0, 1, 1], &[0.1, 0.4, 0.35, 0.8]).unwrap();
        assert!((auc - 0.75).abs() < 1e-12);
    }

    #[test]
    fn all_ties_give_half() {
        let auc = roc_auc(&[0, 1, 0, 1], &[0.5, 0.5, 0.5, 0.5]).unwrap();
        assert!((auc - 0.5).abs() < 1e-12);
    }

    #[test]
    fn single_class_undefined() {
        assert!(matches!(
            roc_auc(&[0, 0], &[0.1, 0.2]).unwrap_err(),
            Error::Undefined(_)
        ));
        assert!(roc_auc(&[1, 1], &[0.1, 0.2]).is_err());
    }

    #[test]
    fn length_mismatch() {
        assert!(matches!(
            roc_auc(&[0, 1], &[0.5]).unwrap_err(),
            Error::LengthMismatch { .. }
        ));
    }

    #[test]
    fn empty_input() {
        assert!(matches!(roc_auc(&[], &[]).unwrap_err(), Error::Empty(_)));
    }

    #[test]
    fn non_finite_scores_rejected() {
        assert!(matches!(
            roc_auc(&[0, 1], &[f64::NAN, 0.5]).unwrap_err(),
            Error::NonFinite(_)
        ));
        assert!(roc_auc(&[0, 1], &[f64::INFINITY, 0.5]).is_err());
    }

    #[test]
    fn invariant_to_monotone_transform() {
        let labels = [0, 1, 0, 1, 1, 0];
        let scores = [0.2, 0.9, 0.1, 0.7, 0.4, 0.35];
        let a1 = roc_auc(&labels, &scores).unwrap();
        let transformed: Vec<f64> = scores.iter().map(|&s| (s * 10.0).exp()).collect();
        let a2 = roc_auc(&labels, &transformed).unwrap();
        assert!((a1 - a2).abs() < 1e-12);
    }
}
