#![warn(missing_docs)]

//! Offline shim for the subset of the `rand` 0.9 API this workspace uses.
//!
//! The build container has no access to a crates registry, so the
//! workspace vendors a minimal, dependency-free implementation of the
//! pieces it actually calls: [`rngs::StdRng`], [`SeedableRng::seed_from_u64`],
//! [`Rng::random`], and [`Rng::random_range`]. The generator is
//! xoshiro256++ seeded through splitmix64 — high-quality, fast, and fully
//! deterministic per seed, which is all the reproduction requires (no
//! cryptographic claims, and no stream compatibility with upstream
//! `rand`).

/// Random number generator engines.
pub mod rngs {
    /// A deterministic 64-bit generator (xoshiro256++).
    ///
    /// API-compatible stand-in for `rand::rngs::StdRng` at the call sites
    /// used in this workspace. Streams differ from upstream `StdRng`.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        pub(crate) s: [u64; 4],
    }
}

use rngs::StdRng;

#[inline]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl StdRng {
    #[inline]
    fn next(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }
}

/// Seedable construction, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

impl SeedableRng for StdRng {
    fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        let s = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        StdRng { s }
    }
}

/// Types producible by [`Rng::random`].
pub trait Standard: Sized {
    /// Draws one value from the generator.
    fn sample(rng: &mut StdRng) -> Self;
}

impl Standard for u64 {
    #[inline]
    fn sample(rng: &mut StdRng) -> Self {
        rng.next()
    }
}

impl Standard for u32 {
    #[inline]
    fn sample(rng: &mut StdRng) -> Self {
        (rng.next() >> 32) as u32
    }
}

impl Standard for f64 {
    /// Uniform in `[0, 1)` with 53 random bits.
    #[inline]
    fn sample(rng: &mut StdRng) -> Self {
        (rng.next() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for bool {
    #[inline]
    fn sample(rng: &mut StdRng) -> Self {
        rng.next() & 1 == 1
    }
}

/// Range arguments accepted by [`Rng::random_range`].
pub trait SampleRange {
    /// The value type the range produces.
    type Output;
    /// Draws one value uniformly from the range.
    ///
    /// # Panics
    ///
    /// Panics when the range is empty.
    fn sample_from(self, rng: &mut StdRng) -> Self::Output;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange for core::ops::Range<$t> {
            type Output = $t;
            #[inline]
            fn sample_from(self, rng: &mut StdRng) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = (rng.next() as u128) % span;
                (self.start as i128 + v as i128) as $t
            }
        }
        impl SampleRange for core::ops::RangeInclusive<$t> {
            type Output = $t;
            #[inline]
            fn sample_from(self, rng: &mut StdRng) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end as i128 - start as i128) as u128 + 1;
                let v = (rng.next() as u128) % span;
                (start as i128 + v as i128) as $t
            }
        }
    )*};
}

impl_int_range!(usize, u64, u32, i64, i32, i8);

impl SampleRange for core::ops::Range<f64> {
    type Output = f64;
    #[inline]
    fn sample_from(self, rng: &mut StdRng) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        let u = f64::sample(rng);
        self.start + u * (self.end - self.start)
    }
}

impl SampleRange for core::ops::RangeInclusive<f64> {
    type Output = f64;
    #[inline]
    fn sample_from(self, rng: &mut StdRng) -> f64 {
        let (start, end) = (*self.start(), *self.end());
        assert!(start <= end, "cannot sample empty range");
        let u = f64::sample(rng);
        start + u * (end - start)
    }
}

/// Value-drawing methods, mirroring the `rand::Rng` trait surface used in
/// this workspace.
pub trait Rng {
    /// Draws a value of type `T` (uniform over the type's natural domain;
    /// `f64` is uniform in `[0, 1)`).
    fn random<T: Standard>(&mut self) -> T;

    /// Draws a value uniformly from `range`.
    fn random_range<R: SampleRange>(&mut self, range: R) -> R::Output;

    /// Returns `true` with probability `p`.
    fn random_bool(&mut self, p: f64) -> bool;
}

impl Rng for StdRng {
    #[inline]
    fn random<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    #[inline]
    fn random_range<R: SampleRange>(&mut self, range: R) -> R::Output {
        range.sample_from(self)
    }

    #[inline]
    fn random_bool(&mut self, p: f64) -> bool {
        f64::sample(self) < p
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        let mut c = StdRng::seed_from_u64(43);
        let va: Vec<u64> = (0..8).map(|_| a.random::<u64>()).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.random::<u64>()).collect();
        let vc: Vec<u64> = (0..8).map(|_| c.random::<u64>()).collect();
        assert_eq!(va, vb);
        assert_ne!(va, vc);
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v: f64 = rng.random();
            assert!((0.0..1.0).contains(&v));
        }
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..1000 {
            let u = rng.random_range(3usize..10);
            assert!((3..10).contains(&u));
            let i = rng.random_range(-5i32..=5);
            assert!((-5..=5).contains(&i));
            let f = rng.random_range(-2.0f64..2.0);
            assert!((-2.0..2.0).contains(&f));
        }
    }

    #[test]
    fn mean_is_roughly_centered() {
        let mut rng = StdRng::seed_from_u64(3);
        let n = 20_000;
        let mean: f64 = (0..n).map(|_| rng.random::<f64>()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }
}
