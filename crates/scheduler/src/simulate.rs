//! Discrete-event makespan simulation.
//!
//! Given true per-task costs and an [`Assignment`], each worker's
//! completion time is simply the sum of its tasks' costs (workers run
//! their group sequentially, with no inter-task dependencies); the
//! ensemble finishes at the **makespan** — the maximum worker completion
//! time. This is exactly the quantity the paper's Table 3/4 wall-clock
//! measurements capture, and it is a pure function of `(costs,
//! assignment)`, so it reproduces multi-worker results faithfully on any
//! host (see DESIGN.md §4, substitution 2).

use crate::assignment::Assignment;
use crate::Result;

/// Result of [`simulate_makespan`].
#[derive(Debug, Clone, PartialEq)]
pub struct SimulationResult {
    /// Completion time per worker.
    pub worker_times: Vec<f64>,
    /// `max(worker_times)` — when the last worker finishes.
    pub makespan: f64,
    /// `sum(costs)` — single-worker (sequential) time for reference.
    pub sequential_time: f64,
}

impl SimulationResult {
    /// Parallel speedup over sequential execution.
    pub fn speedup(&self) -> f64 {
        if self.makespan <= 0.0 {
            return 1.0;
        }
        self.sequential_time / self.makespan
    }

    /// Load-balance efficiency in `[0, 1]`: mean worker time over
    /// makespan. 1 means perfectly balanced.
    pub fn efficiency(&self) -> f64 {
        if self.makespan <= 0.0 || self.worker_times.is_empty() {
            return 1.0;
        }
        suod_linalg::stats::mean(&self.worker_times) / self.makespan
    }
}

/// Computes worker completion times and the makespan for `costs` under
/// `assignment`.
///
/// # Errors
///
/// Returns [`crate::Error::BadAssignment`] when `costs.len()` does not
/// match the assignment's task count.
///
/// # Example
///
/// ```
/// use suod_scheduler::assignment::generic_schedule;
/// use suod_scheduler::simulate::simulate_makespan;
///
/// let costs = [3.0, 3.0, 1.0, 1.0];
/// let a = generic_schedule(4, 2).unwrap();
/// let r = simulate_makespan(&costs, &a).unwrap();
/// assert_eq!(r.makespan, 6.0); // worker 0 got both heavy tasks
/// assert_eq!(r.sequential_time, 8.0);
/// ```
pub fn simulate_makespan(costs: &[f64], assignment: &Assignment) -> Result<SimulationResult> {
    let worker_times = assignment.worker_loads(costs)?;
    let makespan = worker_times.iter().copied().fold(0.0f64, f64::max);
    Ok(SimulationResult {
        makespan,
        sequential_time: costs.iter().sum(),
        worker_times,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::assignment::{bps_schedule, generic_schedule, Assignment};

    #[test]
    fn makespan_is_max_worker_time() {
        let a = Assignment::new(vec![vec![0, 1], vec![2]]).unwrap();
        let r = simulate_makespan(&[1.0, 2.0, 10.0], &a).unwrap();
        assert_eq!(r.worker_times, vec![3.0, 10.0]);
        assert_eq!(r.makespan, 10.0);
        assert_eq!(r.sequential_time, 13.0);
    }

    #[test]
    fn speedup_and_efficiency() {
        let a = Assignment::new(vec![vec![0], vec![1]]).unwrap();
        let r = simulate_makespan(&[5.0, 5.0], &a).unwrap();
        assert_eq!(r.speedup(), 2.0);
        assert_eq!(r.efficiency(), 1.0);
        let skewed = Assignment::new(vec![vec![0, 1], vec![]]).unwrap();
        let r2 = simulate_makespan(&[5.0, 5.0], &skewed).unwrap();
        assert_eq!(r2.speedup(), 1.0);
        assert_eq!(r2.efficiency(), 0.5);
    }

    #[test]
    fn bps_never_worse_than_generic_on_sorted_blocks() {
        // Heavy-first ordering (the pathological case for generic).
        for t in [2usize, 4, 8] {
            let costs: Vec<f64> = (0..64).map(|i| if i < 16 { 20.0 } else { 1.0 }).collect();
            let g = simulate_makespan(&costs, &generic_schedule(64, t).unwrap()).unwrap();
            let b = simulate_makespan(&costs, &bps_schedule(&costs, t, 1.0).unwrap()).unwrap();
            assert!(
                b.makespan <= g.makespan + 1e-9,
                "t={t}: bps {} vs generic {}",
                b.makespan,
                g.makespan
            );
        }
    }

    #[test]
    fn zero_cost_tasks() {
        let a = generic_schedule(3, 2).unwrap();
        let r = simulate_makespan(&[0.0, 0.0, 0.0], &a).unwrap();
        assert_eq!(r.makespan, 0.0);
        assert_eq!(r.speedup(), 1.0);
    }

    #[test]
    fn length_mismatch_rejected() {
        let a = generic_schedule(3, 2).unwrap();
        assert!(simulate_makespan(&[1.0, 2.0], &a).is_err());
    }
}
