//! Property-based tests for the detector zoo: every detector must be
//! deterministic, produce finite scores of the right length, and rank an
//! injected far outlier above the median inlier.

use proptest::prelude::*;
use suod_detectors::{
    AbodDetector, CblofDetector, CofDetector, Detector, FeatureBagging, HbosDetector,
    IsolationForest, Kernel, KnnDetector, KnnMethod, LodaDetector, LofDetector, LoopDetector,
    OcsvmDetector, PcaDetector,
};
use suod_linalg::Matrix;

/// Builds one of each detector family with small, fast settings.
fn zoo(seed: u64) -> Vec<Box<dyn Detector>> {
    vec![
        Box::new(KnnDetector::new(3, KnnMethod::Largest).unwrap()),
        Box::new(KnnDetector::new(3, KnnMethod::Mean).unwrap()),
        Box::new(LofDetector::new(4).unwrap()),
        Box::new(AbodDetector::new(4).unwrap()),
        Box::new(HbosDetector::new(8, 0.2).unwrap()),
        Box::new(IsolationForest::new(25, seed).unwrap()),
        Box::new(CblofDetector::new(2, seed).unwrap()),
        Box::new(FeatureBagging::new(4, 3, seed).unwrap()),
        Box::new(LoopDetector::new(4).unwrap()),
        Box::new(CofDetector::new(4).unwrap()),
        Box::new(LodaDetector::new(30, 10, seed).unwrap()),
        Box::new(PcaDetector::new(0.9).unwrap()),
        Box::new(
            OcsvmDetector::new(0.2, Kernel::Rbf { gamma: 0.0 })
                .unwrap()
                .with_max_iter(2_000),
        ),
    ]
}

/// Cluster near the origin plus one far outlier at the last index. A tiny
/// deterministic spiral keeps cluster points distinct even when proptest
/// shrinks all jitter to zero — a window of exact duplicates makes every
/// angle/chaining statistic degenerate, which is not the property under
/// test.
fn cluster_with_far_point(jitter: &[f64], offset: f64) -> Matrix {
    let n = jitter.len() / 2;
    let mut rows: Vec<Vec<f64>> = (0..n)
        .map(|i| {
            let t = i as f64 * 0.618_033_988_749;
            vec![
                jitter[2 * i] * 0.5 + 0.05 * t.cos() * (1.0 + i as f64 * 0.01),
                jitter[2 * i + 1] * 0.5 + 0.05 * t.sin() * (1.0 + i as f64 * 0.01),
            ]
        })
        .collect();
    rows.push(vec![offset, offset]);
    Matrix::from_rows(&rows).unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn far_outlier_outranks_median_inlier(
        jitter in proptest::collection::vec(-1.0f64..1.0, 40..80),
        offset in 25.0f64..100.0,
        seed in 0u64..1000,
    ) {
        let jitter = &jitter[..(jitter.len() / 2) * 2];
        let x = cluster_with_far_point(jitter, offset);
        let outlier_idx = x.nrows() - 1;
        for mut det in zoo(seed) {
            // PCA scores deviation from the correlation structure, not
            // distance: a far point lying *along* the first principal
            // axis is invisible to the minor-component score by design,
            // so the universal far-outlier property does not apply.
            if det.name() == "pca" {
                continue;
            }
            det.fit(&x).unwrap();
            let s = det.training_scores().unwrap();
            prop_assert_eq!(s.len(), x.nrows());
            prop_assert!(s.iter().all(|v| v.is_finite()), "{} non-finite", det.name());
            let mut inliers: Vec<f64> = s[..outlier_idx].to_vec();
            inliers.sort_by(|a, b| a.partial_cmp(b).unwrap());
            let median = inliers[inliers.len() / 2];
            prop_assert!(
                s[outlier_idx] >= median,
                "{}: outlier {} below median {}",
                det.name(), s[outlier_idx], median
            );
        }
    }

    #[test]
    fn detectors_are_deterministic(
        jitter in proptest::collection::vec(-1.0f64..1.0, 40..60),
        seed in 0u64..100,
    ) {
        let jitter = &jitter[..(jitter.len() / 2) * 2];
        let x = cluster_with_far_point(jitter, 30.0);
        for (mut a, mut b) in zoo(seed).into_iter().zip(zoo(seed)) {
            a.fit(&x).unwrap();
            b.fit(&x).unwrap();
            prop_assert_eq!(
                a.training_scores().unwrap(),
                b.training_scores().unwrap(),
                "{} not deterministic", a.name()
            );
        }
    }

    #[test]
    fn decision_function_matches_length(
        jitter in proptest::collection::vec(-1.0f64..1.0, 40..60),
        queries in proptest::collection::vec((-5.0f64..5.0, -5.0f64..5.0), 1..10),
    ) {
        let jitter = &jitter[..(jitter.len() / 2) * 2];
        let x = cluster_with_far_point(jitter, 30.0);
        let q_rows: Vec<Vec<f64>> = queries.iter().map(|&(a, b)| vec![a, b]).collect();
        let q = Matrix::from_rows(&q_rows).unwrap();
        for mut det in zoo(7) {
            det.fit(&x).unwrap();
            let s = det.decision_function(&q).unwrap();
            prop_assert_eq!(s.len(), q.nrows(), "{}", det.name());
            prop_assert!(s.iter().all(|v| v.is_finite()), "{}", det.name());
        }
    }
}
