//! Local Outlier Factor (Breunig et al. 2000).
//!
//! LOF compares a point's local reachability density to that of its
//! neighbours: scores near 1 mean "as dense as the neighbourhood", larger
//! scores mean locally sparse, i.e. outlying. The paper's grid varies
//! `n_neighbors` and the distance metric.
//!
//! Training scores use the classic leave-one-out construction; scoring new
//! points reuses the training set's k-distances and local reachability
//! densities, mirroring scikit-learn's `novelty=True` mode.

use crate::{check_dims, Detector, Error, FitContext, Result};
use std::sync::Arc;
use suod_linalg::{DistanceMetric, KnnIndex, Matrix};

/// Local Outlier Factor detector.
///
/// # Example
///
/// ```
/// use suod_detectors::{Detector, LofDetector};
/// use suod_linalg::Matrix;
///
/// # fn main() -> Result<(), suod_detectors::Error> {
/// let x = Matrix::from_rows(&[
///     vec![0.0], vec![0.1], vec![0.2], vec![0.3], vec![5.0],
/// ]).unwrap();
/// let mut lof = LofDetector::new(2)?;
/// lof.fit(&x)?;
/// let s = lof.training_scores()?;
/// assert!(s[4] > s[0]);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct LofDetector {
    k: usize,
    metric: DistanceMetric,
    index: Option<Arc<KnnIndex>>,
    /// k-distance of each training point (leave-one-out).
    k_distances: Vec<f64>,
    /// Local reachability density of each training point.
    lrd: Vec<f64>,
    train_scores: Vec<f64>,
}

impl LofDetector {
    /// Creates an LOF detector with `k` neighbours.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidParameter`] when `k == 0`.
    pub fn new(k: usize) -> Result<Self> {
        if k == 0 {
            return Err(Error::InvalidParameter("n_neighbors must be >= 1".into()));
        }
        Ok(Self {
            k,
            metric: DistanceMetric::Euclidean,
            index: None,
            k_distances: Vec::new(),
            lrd: Vec::new(),
            train_scores: Vec::new(),
        })
    }

    /// Replaces the distance metric (default Euclidean).
    pub fn with_metric(mut self, metric: DistanceMetric) -> Self {
        self.metric = metric;
        self
    }

    /// Neighbourhood size.
    pub fn k(&self) -> usize {
        self.k
    }
}

impl Detector for LofDetector {
    fn fit(&mut self, x: &Matrix) -> Result<()> {
        self.fit_with_context(x, &FitContext::default())
    }

    fn fit_with_context(&mut self, x: &Matrix, ctx: &FitContext) -> Result<()> {
        let n = x.nrows();
        if n < 3 {
            return Err(Error::InsufficientData {
                needed: "at least 3 samples".into(),
                got: n,
            });
        }
        let k = self.k.min(n - 1);

        // Leave-one-out neighbour lists: a prefix view of the pool-shared
        // neighbour graph when `ctx` carries a cache, a direct sweep via
        // the symmetric-distance fast path otherwise.
        let (index, neighbors) = ctx.self_neighbors(x, self.metric, k)?;

        // k-distance of each point = distance to its k-th neighbour.
        let k_distances: Vec<f64> = neighbors
            .iter()
            .map(|nn| nn.last().map_or(0.0, |l| l.distance))
            .collect();

        // Local reachability density.
        let lrd: Vec<f64> = neighbors
            .iter()
            .map(|nn| {
                let reach_sum: f64 = nn
                    .iter()
                    .map(|nb| nb.distance.max(k_distances[nb.index]))
                    .sum();
                if reach_sum <= 1e-300 {
                    // Duplicated points: infinite density, cap it.
                    1e12
                } else {
                    nn.len() as f64 / reach_sum
                }
            })
            .collect();

        // LOF score: mean neighbour lrd over own lrd.
        let train_scores: Vec<f64> = (0..n)
            .map(|i| {
                let nn = neighbors.get(i);
                let mean_nb_lrd: f64 =
                    nn.iter().map(|nb| lrd[nb.index]).sum::<f64>() / nn.len().max(1) as f64;
                mean_nb_lrd / lrd[i].max(1e-300)
            })
            .collect();

        self.k_distances = k_distances;
        self.lrd = lrd;
        self.train_scores = train_scores;
        self.index = Some(index);
        Ok(())
    }

    fn decision_function(&self, x: &Matrix) -> Result<Vec<f64>> {
        let index = self.index.as_ref().ok_or(Error::NotFitted("LofDetector"))?;
        check_dims(index.train_data().ncols(), x)?;
        let k = self.k.min(index.len());
        // Batched neighbour lookup hits the tiled brute-force fast path
        // on blocked/gemm indexes; results equal per-row queries exactly.
        let batch = index.query_batch(x, k)?;
        let mut scores = Vec::with_capacity(x.nrows());
        for nn in &batch {
            let reach_sum: f64 = nn
                .iter()
                .map(|nb| nb.distance.max(self.k_distances[nb.index]))
                .sum();
            let lrd_q = if reach_sum <= 1e-300 {
                1e12
            } else {
                nn.len() as f64 / reach_sum
            };
            let mean_nb_lrd: f64 =
                nn.iter().map(|nb| self.lrd[nb.index]).sum::<f64>() / nn.len().max(1) as f64;
            scores.push(mean_nb_lrd / lrd_q.max(1e-300));
        }
        Ok(scores)
    }

    fn training_scores(&self) -> Result<Vec<f64>> {
        if self.index.is_none() {
            return Err(Error::NotFitted("LofDetector"));
        }
        Ok(self.train_scores.clone())
    }

    fn name(&self) -> &'static str {
        "lof"
    }

    fn is_fitted(&self) -> bool {
        self.index.is_some()
    }

    fn snapshot_write(&self, w: &mut suod_linalg::SnapshotWriter) -> Result<()> {
        w.write_usize(self.k);
        w.write_metric(self.metric);
        crate::write_opt_index(self.index.as_deref(), w);
        w.write_f64s(&self.k_distances);
        w.write_f64s(&self.lrd);
        w.write_f64s(&self.train_scores);
        Ok(())
    }
}

impl LofDetector {
    /// Reads a detector written by [`Detector::snapshot_write`].
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidParameter`] on truncated or malformed state.
    pub fn snapshot_read(
        r: &mut suod_linalg::SnapshotReader<'_>,
        n_threads: usize,
    ) -> Result<Self> {
        Ok(Self {
            k: r.read_usize()?,
            metric: r.read_metric()?,
            index: crate::read_opt_index(r, n_threads)?,
            k_distances: r.read_f64s()?,
            lrd: r.read_f64s()?,
            train_scores: r.read_f64s()?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dense_cluster_with_outlier() -> Matrix {
        let mut rows: Vec<Vec<f64>> = (0..20)
            .map(|i| vec![(i % 5) as f64 * 0.1, (i / 5) as f64 * 0.1])
            .collect();
        rows.push(vec![5.0, 5.0]);
        Matrix::from_rows(&rows).unwrap()
    }

    #[test]
    fn outlier_has_max_lof() {
        let mut det = LofDetector::new(5).unwrap();
        det.fit(&dense_cluster_with_outlier()).unwrap();
        let s = det.training_scores().unwrap();
        assert_eq!(suod_linalg::rank::argsort_desc(&s)[0], 20);
        assert!(s[20] > 2.0, "outlier LOF {}", s[20]);
    }

    #[test]
    fn inlier_scores_near_one() {
        // Uniform grid: every interior point has LOF ~ 1.
        let rows: Vec<Vec<f64>> = (0..25)
            .map(|i| vec![(i % 5) as f64, (i / 5) as f64])
            .collect();
        let x = Matrix::from_rows(&rows).unwrap();
        let mut det = LofDetector::new(4).unwrap();
        det.fit(&x).unwrap();
        let s = det.training_scores().unwrap();
        // Central point (index 12) is surrounded symmetrically.
        assert!((s[12] - 1.0).abs() < 0.2, "central LOF {}", s[12]);
    }

    #[test]
    fn new_point_scoring_consistent() {
        let x = dense_cluster_with_outlier();
        let mut det = LofDetector::new(5).unwrap();
        det.fit(&x).unwrap();
        let q = Matrix::from_rows(&[vec![0.2, 0.1], vec![10.0, 10.0]]).unwrap();
        let s = det.decision_function(&q).unwrap();
        assert!(s[1] > 3.0 * s[0], "far query not flagged: {s:?}");
        assert!(s[0] < 1.6, "in-cluster query too outlying: {}", s[0]);
    }

    #[test]
    fn duplicates_do_not_blow_up() {
        let rows = vec![vec![1.0, 1.0]; 6];
        let x = Matrix::from_rows(&rows).unwrap();
        let mut det = LofDetector::new(3).unwrap();
        det.fit(&x).unwrap();
        let s = det.training_scores().unwrap();
        assert!(s.iter().all(|v| v.is_finite()));
    }

    #[test]
    fn validates_inputs() {
        assert!(LofDetector::new(0).is_err());
        let mut det = LofDetector::new(2).unwrap();
        assert!(det.fit(&Matrix::zeros(2, 2)).is_err());
        assert!(det.decision_function(&Matrix::zeros(1, 2)).is_err());
        assert!(det.training_scores().is_err());
        det.fit(&dense_cluster_with_outlier()).unwrap();
        assert!(det.decision_function(&Matrix::zeros(1, 5)).is_err());
    }

    #[test]
    fn metric_variants_run() {
        let x = dense_cluster_with_outlier();
        for metric in [
            DistanceMetric::Euclidean,
            DistanceMetric::Manhattan,
            DistanceMetric::Minkowski(3.0),
        ] {
            let mut det = LofDetector::new(4).unwrap().with_metric(metric);
            det.fit(&x).unwrap();
            let s = det.training_scores().unwrap();
            assert_eq!(suod_linalg::rank::argsort_desc(&s)[0], 20);
        }
    }
}
