//! Dataset meta-features for the cost predictor.
//!
//! The paper's cost predictor forecasts model execution time "given the
//! meta-features (descriptive features) of a dataset ... including input
//! data size, input data dimension, the algorithm embedding, etc."
//! (§3.5). [`DatasetMeta`] captures the size/shape/statistics part; the
//! algorithm embedding is appended by
//! [`TaskDescriptor::feature_vector`](crate::cost::TaskDescriptor).

use suod_linalg::stats;
use suod_linalg::Matrix;

/// Descriptive statistics of a dataset, cheap to extract.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DatasetMeta {
    /// Number of samples.
    pub n_samples: usize,
    /// Number of features.
    pub n_features: usize,
    /// Mean of per-column standard deviations.
    pub mean_std: f64,
    /// Mean of per-column skewness.
    pub mean_skewness: f64,
    /// Mean of per-column excess kurtosis.
    pub mean_kurtosis: f64,
}

impl DatasetMeta {
    /// Extracts meta-features from a data matrix.
    pub fn extract(x: &Matrix) -> Self {
        let d = x.ncols();
        let mut stds = Vec::with_capacity(d);
        let mut skews = Vec::with_capacity(d);
        let mut kurts = Vec::with_capacity(d);
        for c in 0..d {
            let col = x.col(c);
            stds.push(stats::std_dev(&col));
            skews.push(stats::skewness(&col));
            kurts.push(stats::kurtosis(&col));
        }
        Self {
            n_samples: x.nrows(),
            n_features: d,
            mean_std: stats::mean(&stds),
            mean_skewness: stats::mean(&skews),
            mean_kurtosis: stats::mean(&kurts),
        }
    }

    /// Synthesizes meta-features from shape alone (used when only the
    /// shape is known, e.g. cost forecasting before data materializes).
    pub fn from_shape(n_samples: usize, n_features: usize) -> Self {
        Self {
            n_samples,
            n_features,
            mean_std: 1.0,
            mean_skewness: 0.0,
            mean_kurtosis: 0.0,
        }
    }

    /// Size-derived feature vector: `[n, d, n*d, log n, log d, n log n,
    /// log(n^2 d), mean_std, mean_skew, mean_kurt]`. The `log(n^2 d)`
    /// entry matters for tree-based cost predictors: proximity-family fit
    /// costs are `~ c * n^2 d`, i.e. *linear* in that single feature on
    /// the log scale, which a tree can split on directly but could not
    /// synthesize from `log n` and `log d`.
    pub fn feature_vector(&self) -> Vec<f64> {
        let n = self.n_samples as f64;
        let d = self.n_features as f64;
        vec![
            n,
            d,
            n * d,
            n.max(1.0).ln(),
            d.max(1.0).ln(),
            n * n.max(1.0).ln(),
            (n * n * d).max(1.0).ln(),
            self.mean_std,
            self.mean_skewness,
            self.mean_kurtosis,
        ]
    }

    /// Length of [`feature_vector`](Self::feature_vector).
    pub const FEATURE_LEN: usize = 10;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn extract_shapes() {
        let x = Matrix::from_rows(&[vec![0.0, 10.0], vec![2.0, 10.0], vec![4.0, 10.0]]).unwrap();
        let m = DatasetMeta::extract(&x);
        assert_eq!(m.n_samples, 3);
        assert_eq!(m.n_features, 2);
        // Column 1 constant: its std contributes 0.
        assert!(m.mean_std > 0.0 && m.mean_std < 2.0);
    }

    #[test]
    fn feature_vector_layout() {
        let m = DatasetMeta::from_shape(100, 10);
        let v = m.feature_vector();
        assert_eq!(v.len(), DatasetMeta::FEATURE_LEN);
        assert_eq!(v[0], 100.0);
        assert_eq!(v[1], 10.0);
        assert_eq!(v[2], 1000.0);
        assert!((v[3] - 100f64.ln()).abs() < 1e-12);
        assert!((v[6] - (100.0f64 * 100.0 * 10.0).ln()).abs() < 1e-12);
    }

    #[test]
    fn from_shape_defaults() {
        let m = DatasetMeta::from_shape(50, 5);
        assert_eq!(m.mean_std, 1.0);
        assert_eq!(m.mean_skewness, 0.0);
    }
}
