//! Ensemble analysis: heterogeneous pools, combiners, and the worth of
//! many models over one.
//!
//! Samples a random Table B.1 pool, fits SUOD, and compares single-model
//! ROC against the `Average` and `Maximum-of-Average` ensemble combiners
//! — the reliability argument that motivates SUOD in the paper's
//! introduction.
//!
//! Run with:
//! ```sh
//! cargo run --release -p suod --example ensemble_analysis
//! ```

use suod::prelude::*;
use suod_datasets::{registry, train_test_split};
use suod_metrics::roc_auc;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let ds = registry::load_scaled("satellite", 11, 0.25)?;
    let split = train_test_split(&ds, 0.4, 11)?;

    // A heterogeneous pool sampled from the paper's Table B.1 ranges,
    // with neighbourhood sizes clamped to the scaled-down dataset.
    let pool: Vec<ModelSpec> = suod::random_pool(16, 11)
        .into_iter()
        .map(|spec| match spec {
            ModelSpec::Abod { n_neighbors } => ModelSpec::Abod {
                n_neighbors: n_neighbors.min(30),
            },
            ModelSpec::Knn {
                n_neighbors,
                method,
            } => ModelSpec::Knn {
                n_neighbors: n_neighbors.min(30),
                method,
            },
            ModelSpec::Lof {
                n_neighbors,
                metric,
            } => ModelSpec::Lof {
                n_neighbors: n_neighbors.min(30),
                metric,
            },
            ModelSpec::FeatureBagging { n_estimators } => ModelSpec::FeatureBagging {
                n_estimators: n_estimators.min(20),
            },
            other => other,
        })
        .collect();

    println!("pool of {} heterogeneous models:", pool.len());
    for spec in &pool {
        println!("  - {spec:?}");
    }

    let mut clf = Suod::builder()
        .base_estimators(pool)
        .with_projection(true)
        .with_approximation(true)
        .seed(11)
        .build()?;
    clf.fit(&split.x_train)?;

    // Per-model test AUCs from the raw score matrix.
    let score_matrix = clf.decision_function(&split.x_test)?;
    let mut per_model = Vec::new();
    for c in 0..score_matrix.ncols() {
        let col = score_matrix.col(c);
        per_model.push(roc_auc(&split.y_test, &col)?);
    }
    per_model.sort_by(|a, b| a.partial_cmp(b).expect("finite AUC"));

    let avg = clf.combined_scores(&split.x_test)?;
    let moa = clf.combined_scores_moa(&split.x_test, 4)?;
    let auc_avg = roc_auc(&split.y_test, &avg)?;
    let auc_moa = roc_auc(&split.y_test, &moa)?;

    println!(
        "\nsingle-model test ROC range : {:.3} .. {:.3}",
        per_model[0],
        per_model[per_model.len() - 1]
    );
    println!(
        "single-model test ROC median: {:.3}",
        per_model[per_model.len() / 2]
    );
    println!("ensemble Average ROC        : {auc_avg:.3}");
    println!("ensemble MOA (4 buckets) ROC: {auc_moa:.3}");
    println!("\n(The ensemble should sit near the top of the single-model range —");
    println!(" using one unsupervised model is a gamble; combining many is not.)");
    Ok(())
}
