//! Work-stealing execution on top of BPS placement.
//!
//! The paper's BPS module (§3.5) is a *static* schedule: it forecasts
//! per-model cost, balances discounted-rank sums, and then each worker
//! runs its group to completion. When the cost model mispredicts a
//! straggler — the exact failure mode the Spearman-validated predictor
//! cannot fully remove — every other worker goes idle while one grinds.
//!
//! [`WorkStealingExecutor`] keeps the paper's placement as the *initial
//! hint*: per-worker deques are seeded from the [`Assignment`] in group
//! order, so with a perfect cost model execution is identical to the
//! static schedule. Whenever a worker drains its own deque it steals one
//! task from the **tail** of the most-loaded peer (the tail holds the
//! peer's latest-scheduled — under LPT, cheapest — work, which minimizes
//! disruption of the placement).
//!
//! Two properties the rest of the workspace relies on:
//!
//! * **Determinism of results.** Every task runs exactly once and results
//!   are merged back into task order from per-worker buffers, so the
//!   output vector is independent of which worker ran what and of the
//!   steal interleaving. Only timing varies.
//! * **Telemetry.** Each run emits an [`ExecutionReport`] (per-task wall
//!   time, per-worker busy time, steal count) so the cost model's
//!   forecasts can be validated against *measured* runtimes with the
//!   Spearman machinery in `suod-metrics`.
//!
//! # Fault isolation
//!
//! Heterogeneous detector pools are numerically fragile: one ABOD on
//! degenerate variance or one non-converging OCSVM must not abort the
//! other 199 fits. The pool therefore offers two execution modes:
//!
//! * [`run_with_report`](WorkStealingExecutor::run_with_report) — the
//!   fail-fast mode: the first task panic aborts the batch and is
//!   re-raised on the submitting thread (remaining tasks may be
//!   abandoned).
//! * [`run_with_report_isolated`](WorkStealingExecutor::run_with_report_isolated)
//!   — the fault-isolated mode: every task's panic is caught
//!   individually and surfaces as a per-task `Err(`[`TaskFailure`]`)`
//!   while all other tasks run to completion. The report counts
//!   failures, and the pool stays healthy for subsequent batches either
//!   way.
//!
//! All internal locks are poison-tolerant (`PoisonError::into_inner`):
//! tasks execute under `catch_unwind`, so a poisoned mutex can only mean
//! a *prior* panic already being propagated — it must never cascade into
//! unrelated batches.
//!
//! Unlike [`ThreadPoolExecutor`](crate::executor::ThreadPoolExecutor),
//! the pool threads are **persistent**: one executor can serve many
//! `run` calls (e.g. a fit followed by thousands of predict batches)
//! without respawning OS threads. Tasks must therefore be `'static`
//! (move their inputs, e.g. via `Arc`).

use crate::assignment::Assignment;
use crate::{Error, Result};
use std::any::Any;
use std::collections::VecDeque;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, PoisonError};
use std::time::{Duration, Instant};
use suod_observe::{Counter, Observer, SpanAttrs, Stage};

/// Locks a mutex, ignoring poisoning. Tasks run under `catch_unwind`, so
/// poison can only be left behind by a panic that is already being
/// reported through another channel; refusing the lock would turn one
/// task failure into a pool-wide denial of service.
fn lock_ignore_poison<T>(mutex: &Mutex<T>) -> MutexGuard<'_, T> {
    mutex.lock().unwrap_or_else(PoisonError::into_inner)
}

/// A task that panicked under fault-isolated execution.
///
/// The panic payload is flattened to its string form (the common
/// `panic!("...")` cases); non-string payloads are described generically.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TaskFailure {
    /// Human-readable panic message.
    pub message: String,
}

impl TaskFailure {
    fn from_payload(payload: Box<dyn Any + Send>) -> Self {
        let message = if let Some(s) = payload.downcast_ref::<&str>() {
            (*s).to_string()
        } else if let Some(s) = payload.downcast_ref::<String>() {
            s.clone()
        } else {
            "task panicked with a non-string payload".to_string()
        };
        TaskFailure { message }
    }
}

impl std::fmt::Display for TaskFailure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "task panicked: {}", self.message)
    }
}

impl std::error::Error for TaskFailure {}

/// Telemetry from one [`WorkStealingExecutor::run_with_report`] call.
#[derive(Debug, Clone, Default)]
pub struct ExecutionReport {
    /// Measured wall time of each task, indexed like the input task list.
    /// For failed tasks this is the time until the panic unwound.
    pub task_times: Vec<Duration>,
    /// Sum of task times executed by each worker.
    pub worker_busy: Vec<Duration>,
    /// Number of tasks each worker executed.
    pub worker_tasks: Vec<usize>,
    /// Total successful steals across the run.
    pub steals: usize,
    /// End-to-end wall time of the batch.
    pub wall_time: Duration,
    /// Neighbour-cache hits during the batch (tasks served an existing
    /// shared neighbour graph). Zero when no cache was in play; filled in
    /// by the orchestrator after the run.
    pub cache_hits: u64,
    /// Neighbour-cache misses (graphs that had to be built).
    pub cache_misses: u64,
    /// Total wall time spent building shared neighbour graphs.
    pub cache_build_time: Duration,
    /// Tasks that panicked during this batch (fault-isolated runs only;
    /// fail-fast runs re-raise the first panic instead of counting it).
    pub failures: usize,
    /// Task re-executions performed on top of this batch. Zero for a
    /// plain run; filled in by the orchestrator when it retries failed
    /// tasks (e.g. `Suod::fit`'s bounded per-model retry).
    pub retries: usize,
    /// Task indices whose measured runtime exceeded the soft deadline
    /// derived from the cost model's forecast. Filled in by the
    /// orchestrator, which owns the forecast.
    pub stragglers: Vec<usize>,
}

impl ExecutionReport {
    /// Per-task measured runtimes in seconds — the "true cost" vector to
    /// correlate against the scheduler's forecasts (e.g. with
    /// `suod_metrics::spearman`).
    pub fn task_seconds(&self) -> Vec<f64> {
        self.task_times.iter().map(Duration::as_secs_f64).collect()
    }

    /// Mean worker utilization: busy time over `workers * wall_time`.
    /// 1.0 means no worker ever idled.
    pub fn utilization(&self) -> f64 {
        let wall = self.wall_time.as_secs_f64();
        if wall <= 0.0 || self.worker_busy.is_empty() {
            return 1.0;
        }
        let busy: f64 = self.worker_busy.iter().map(Duration::as_secs_f64).sum();
        (busy / (wall * self.worker_busy.len() as f64)).min(1.0)
    }
}

/// What one worker accumulated during a batch.
struct WorkerLog<T> {
    /// `(task index, outcome, task wall time)` triples, in execution
    /// order. Failed outcomes only occur under fault-isolated execution.
    out: Vec<(usize, std::result::Result<T, TaskFailure>, Duration)>,
    busy: Duration,
    steals: usize,
}

impl<T> Default for WorkerLog<T> {
    fn default() -> Self {
        WorkerLog {
            out: Vec::new(),
            busy: Duration::ZERO,
            steals: 0,
        }
    }
}

/// Type-erased batch the persistent workers execute.
trait BatchExec: Send + Sync {
    fn execute(&self, worker: usize);
}

/// One submitted batch: tasks, per-worker deques, per-worker logs.
struct Batch<F, T> {
    /// Task cells; the deque protocol guarantees each is taken once.
    tasks: Vec<Mutex<Option<F>>>,
    /// Per-worker deques of task indices. Owners pop from the front,
    /// thieves steal from the back.
    queues: Vec<Mutex<VecDeque<usize>>>,
    /// Tasks not yet finished (including in-flight).
    remaining: AtomicUsize,
    /// Per-worker result buffers — no shared result table.
    logs: Vec<Mutex<WorkerLog<T>>>,
    /// First panic payload from a task, propagated to the submitter
    /// (fail-fast mode only).
    panic: Mutex<Option<Box<dyn Any + Send>>>,
    panicked: AtomicBool,
    /// Fault-isolated mode: catch each task's panic individually and
    /// record it as a per-task failure instead of poisoning the batch.
    isolate: bool,
    /// Instrumentation sink: each task execution is wrapped in an
    /// [`Stage::ExecutorTask`] span; steals and fault-boundary failures
    /// emit [`Counter`] events. The no-op observer makes this free.
    observer: Arc<dyn Observer>,
}

impl<F, T> Batch<F, T>
where
    F: FnOnce() -> T + Send + 'static,
    T: Send + 'static,
{
    /// Pops work for `worker`: its own front first, then the tail of the
    /// most-loaded peer. Returns `(index, was_steal)`.
    fn find_work(&self, worker: usize) -> Option<(usize, bool)> {
        if let Some(i) = lock_ignore_poison(&self.queues[worker]).pop_front() {
            return Some((i, false));
        }
        // Pick the currently longest peer queue. The length probe is
        // racy by design: stealing needs only a heuristic victim.
        let victim = (0..self.queues.len())
            .filter(|&w| w != worker)
            .map(|w| (lock_ignore_poison(&self.queues[w]).len(), w))
            .max()
            .filter(|&(len, _)| len > 0)
            .map(|(_, w)| w)?;
        lock_ignore_poison(&self.queues[victim])
            .pop_back()
            .map(|i| (i, true))
    }
}

impl<F, T> BatchExec for Batch<F, T>
where
    F: FnOnce() -> T + Send + 'static,
    T: Send + 'static,
{
    fn execute(&self, worker: usize) {
        let mut log = WorkerLog::default();
        loop {
            if self.panicked.load(Ordering::Acquire) {
                break;
            }
            let Some((index, stolen)) = self.find_work(worker) else {
                if self.remaining.load(Ordering::Acquire) == 0 {
                    break;
                }
                // Peers still have tasks in flight; nothing to steal yet.
                std::thread::sleep(Duration::from_micros(50));
                continue;
            };
            if stolen {
                log.steals += 1;
                self.observer.counter(Counter::Steal, 1);
            }
            let task = lock_ignore_poison(&self.tasks[index])
                .take()
                .expect("deque protocol hands out each task once");
            let span = self.observer.span_begin(
                Stage::ExecutorTask,
                SpanAttrs::task(index).on_worker(worker),
            );
            let start = Instant::now();
            match catch_unwind(AssertUnwindSafe(task)) {
                Ok(out) => {
                    let elapsed = start.elapsed();
                    self.observer.span_end(span);
                    log.out.push((index, Ok(out), elapsed));
                    log.busy += elapsed;
                    self.remaining.fetch_sub(1, Ordering::AcqRel);
                }
                Err(payload) if self.isolate => {
                    // Per-task fault boundary: record the failure and keep
                    // draining the deques — the rest of the batch is
                    // unaffected.
                    let elapsed = start.elapsed();
                    self.observer.span_end(span);
                    self.observer.counter(Counter::TaskFailure, 1);
                    log.out
                        .push((index, Err(TaskFailure::from_payload(payload)), elapsed));
                    log.busy += elapsed;
                    self.remaining.fetch_sub(1, Ordering::AcqRel);
                }
                Err(payload) => {
                    self.observer.span_end(span);
                    self.observer.counter(Counter::TaskFailure, 1);
                    let mut slot = lock_ignore_poison(&self.panic);
                    if slot.is_none() {
                        *slot = Some(payload);
                    }
                    self.panicked.store(true, Ordering::Release);
                    self.remaining.fetch_sub(1, Ordering::AcqRel);
                    break;
                }
            }
        }
        *lock_ignore_poison(&self.logs[worker]) = log;
    }
}

/// Coordination state between the submitter and the persistent workers.
struct PoolState {
    /// The batch currently being executed, if any.
    batch: Option<Arc<dyn BatchExec>>,
    /// Bumped per submission so workers join each batch exactly once.
    epoch: u64,
    /// Workers that finished the current epoch.
    done: usize,
    shutdown: bool,
}

struct PoolShared {
    state: Mutex<PoolState>,
    work_ready: Condvar,
    batch_done: Condvar,
}

/// A persistent work-stealing thread pool seeded from BPS placements.
///
/// See the [module docs](self) for the design. Construct once, reuse for
/// every fit/predict batch; threads are joined on drop.
///
/// # Example
///
/// ```
/// use suod_scheduler::assignment::bps_schedule;
/// use suod_scheduler::work_stealing::WorkStealingExecutor;
///
/// let pool = WorkStealingExecutor::new(2).unwrap();
/// let costs = [4.0, 1.0, 1.0, 1.0];
/// let assignment = bps_schedule(&costs, 2, 1.0).unwrap();
/// let tasks: Vec<Box<dyn FnOnce() -> usize + Send>> =
///     (0usize..4).map(|i| Box::new(move || i * 10) as _).collect();
/// let (results, report) = pool.run_with_report(tasks, &assignment).unwrap();
/// assert_eq!(results, vec![0, 10, 20, 30]);
/// assert_eq!(report.task_times.len(), 4);
/// ```
pub struct WorkStealingExecutor {
    shared: Arc<PoolShared>,
    handles: Vec<std::thread::JoinHandle<()>>,
    /// Serializes `run` calls: one batch occupies the pool at a time.
    submit: Mutex<()>,
    n_workers: usize,
}

impl std::fmt::Debug for WorkStealingExecutor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WorkStealingExecutor")
            .field("n_workers", &self.n_workers)
            .finish_non_exhaustive()
    }
}

impl WorkStealingExecutor {
    /// Spawns a pool of `n_workers` persistent worker threads.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidParameter`] when `n_workers == 0`.
    pub fn new(n_workers: usize) -> Result<Self> {
        if n_workers == 0 {
            return Err(Error::InvalidParameter(
                "work-stealing pool needs at least 1 worker".into(),
            ));
        }
        let shared = Arc::new(PoolShared {
            state: Mutex::new(PoolState {
                batch: None,
                epoch: 0,
                done: 0,
                shutdown: false,
            }),
            work_ready: Condvar::new(),
            batch_done: Condvar::new(),
        });
        let handles = (0..n_workers)
            .map(|worker| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("suod-steal-{worker}"))
                    .spawn(move || worker_loop(&shared, worker))
                    .expect("failed to spawn pool worker")
            })
            .collect();
        Ok(Self {
            shared,
            handles,
            submit: Mutex::new(()),
            n_workers,
        })
    }

    /// Number of persistent workers.
    pub fn n_workers(&self) -> usize {
        self.n_workers
    }

    /// Shared body of the fail-fast and fault-isolated run paths.
    fn run_batch<T, F>(
        &self,
        tasks: Vec<F>,
        assignment: &Assignment,
        isolate: bool,
        observer: Arc<dyn Observer>,
    ) -> Result<(Vec<std::result::Result<T, TaskFailure>>, ExecutionReport)>
    where
        T: Send + 'static,
        F: FnOnce() -> T + Send + 'static,
    {
        if assignment.n_tasks() != tasks.len() {
            return Err(Error::BadAssignment(format!(
                "assignment covers {} tasks but {} were provided",
                assignment.n_tasks(),
                tasks.len()
            )));
        }
        let n = tasks.len();
        if n == 0 {
            return Ok((
                Vec::new(),
                ExecutionReport {
                    worker_busy: vec![Duration::ZERO; self.n_workers],
                    worker_tasks: vec![0; self.n_workers],
                    ..ExecutionReport::default()
                },
            ));
        }

        // Seed deques from the assignment: the static placement is the
        // initial hint; stealing only reshuffles when it mispredicts.
        let mut queues: Vec<VecDeque<usize>> =
            (0..self.n_workers).map(|_| VecDeque::new()).collect();
        for (g, group) in assignment.groups().iter().enumerate() {
            queues[g % self.n_workers].extend(group.iter().copied());
        }

        let batch: Arc<Batch<F, T>> = Arc::new(Batch {
            tasks: tasks.into_iter().map(|t| Mutex::new(Some(t))).collect(),
            queues: queues.into_iter().map(Mutex::new).collect(),
            remaining: AtomicUsize::new(n),
            logs: (0..self.n_workers)
                .map(|_| Mutex::new(WorkerLog::default()))
                .collect(),
            panic: Mutex::new(None),
            panicked: AtomicBool::new(false),
            isolate,
            observer,
        });

        let start = Instant::now();
        // Poisoning is recoverable here: the guard only serializes
        // submissions, and a previous batch's task panic (re-raised below
        // while this lock was held) must not brick the pool.
        let _guard = lock_ignore_poison(&self.submit);
        {
            let mut state = lock_ignore_poison(&self.shared.state);
            state.batch = Some(Arc::clone(&batch) as Arc<dyn BatchExec>);
            state.epoch += 1;
            state.done = 0;
            self.shared.work_ready.notify_all();
        }
        {
            let mut state = lock_ignore_poison(&self.shared.state);
            while state.done < self.n_workers {
                state = self
                    .shared
                    .batch_done
                    .wait(state)
                    .unwrap_or_else(PoisonError::into_inner);
            }
            state.batch = None;
        }
        let wall_time = start.elapsed();

        if let Some(payload) = lock_ignore_poison(&batch.panic).take() {
            resume_unwind(payload);
        }

        let mut slots: Vec<Option<std::result::Result<T, TaskFailure>>> = Vec::with_capacity(n);
        slots.resize_with(n, || None);
        let mut report = ExecutionReport {
            task_times: vec![Duration::ZERO; n],
            worker_busy: vec![Duration::ZERO; self.n_workers],
            worker_tasks: vec![0; self.n_workers],
            wall_time,
            ..ExecutionReport::default()
        };
        for (w, log) in batch.logs.iter().enumerate() {
            let log = std::mem::take(&mut *lock_ignore_poison(log));
            report.worker_busy[w] = log.busy;
            report.worker_tasks[w] = log.out.len();
            report.steals += log.steals;
            for (i, out, elapsed) in log.out {
                report.task_times[i] = elapsed;
                if out.is_err() {
                    report.failures += 1;
                }
                slots[i] = Some(out);
            }
        }
        let results = slots
            .into_iter()
            .map(|s| s.expect("every task produced an outcome"))
            .collect();
        Ok((results, report))
    }

    /// Runs `tasks`, seeding per-worker deques from `assignment`, and
    /// returns results **in task order** plus the run's telemetry.
    ///
    /// Worker `w`'s deque is seeded with assignment group `w` in group
    /// order (groups beyond the pool size wrap around). Idle workers
    /// steal from the tail of the most-loaded peer, so a mispredicted
    /// straggler no longer gates the batch.
    ///
    /// # Errors
    ///
    /// Returns [`Error::BadAssignment`] when the assignment does not
    /// cover exactly `tasks.len()` tasks.
    ///
    /// # Panics
    ///
    /// Propagates the first panicking task's payload (remaining tasks may
    /// be abandoned; the pool itself stays usable). Use
    /// [`run_with_report_isolated`](Self::run_with_report_isolated) to
    /// contain panics per task instead.
    pub fn run_with_report<T, F>(
        &self,
        tasks: Vec<F>,
        assignment: &Assignment,
    ) -> Result<(Vec<T>, ExecutionReport)>
    where
        T: Send + 'static,
        F: FnOnce() -> T + Send + 'static,
    {
        self.run_with_report_observed(tasks, assignment, suod_observe::noop())
    }

    /// Like [`run_with_report`](Self::run_with_report) with an explicit
    /// instrumentation sink: each task execution becomes a
    /// [`Stage::ExecutorTask`] span (task index + worker attribution) and
    /// successful steals emit [`Counter::Steal`]. Passing the no-op
    /// observer is equivalent to `run_with_report`.
    ///
    /// # Errors
    ///
    /// Same as [`run_with_report`](Self::run_with_report).
    ///
    /// # Panics
    ///
    /// Same as [`run_with_report`](Self::run_with_report).
    pub fn run_with_report_observed<T, F>(
        &self,
        tasks: Vec<F>,
        assignment: &Assignment,
        observer: Arc<dyn Observer>,
    ) -> Result<(Vec<T>, ExecutionReport)>
    where
        T: Send + 'static,
        F: FnOnce() -> T + Send + 'static,
    {
        let (outcomes, report) = self.run_batch(tasks, assignment, false, observer)?;
        let results = outcomes
            .into_iter()
            .map(|o| o.expect("fail-fast mode re-raises panics before collecting"))
            .collect();
        Ok((results, report))
    }

    /// Like [`run_with_report`](Self::run_with_report) but with a
    /// **per-task fault boundary**: each task's panic is caught
    /// individually and returned as `Err(`[`TaskFailure`]`)` in that
    /// task's slot while every other task still runs to completion.
    ///
    /// `report.failures` counts the failed tasks; `report.task_times` for
    /// a failed task measures the time until its panic unwound. The pool
    /// stays healthy regardless of how many tasks fail.
    ///
    /// # Errors
    ///
    /// Returns [`Error::BadAssignment`] when the assignment does not
    /// cover exactly `tasks.len()` tasks. Task panics are **not** errors
    /// at this level — they surface in the per-task results.
    pub fn run_with_report_isolated<T, F>(
        &self,
        tasks: Vec<F>,
        assignment: &Assignment,
    ) -> Result<(Vec<std::result::Result<T, TaskFailure>>, ExecutionReport)>
    where
        T: Send + 'static,
        F: FnOnce() -> T + Send + 'static,
    {
        self.run_batch(tasks, assignment, true, suod_observe::noop())
    }

    /// Like [`run_with_report_isolated`](Self::run_with_report_isolated)
    /// with an explicit instrumentation sink: task executions become
    /// [`Stage::ExecutorTask`] spans, steals emit [`Counter::Steal`], and
    /// tasks caught at the fault boundary emit [`Counter::TaskFailure`].
    ///
    /// # Errors
    ///
    /// Same as [`run_with_report_isolated`](Self::run_with_report_isolated).
    pub fn run_with_report_isolated_observed<T, F>(
        &self,
        tasks: Vec<F>,
        assignment: &Assignment,
        observer: Arc<dyn Observer>,
    ) -> Result<(Vec<std::result::Result<T, TaskFailure>>, ExecutionReport)>
    where
        T: Send + 'static,
        F: FnOnce() -> T + Send + 'static,
    {
        self.run_batch(tasks, assignment, true, observer)
    }

    /// Like [`run_with_report_isolated`](Self::run_with_report_isolated),
    /// discarding the telemetry.
    ///
    /// # Errors
    ///
    /// Same as [`run_with_report_isolated`](Self::run_with_report_isolated).
    pub fn run_isolated<T, F>(
        &self,
        tasks: Vec<F>,
        assignment: &Assignment,
    ) -> Result<Vec<std::result::Result<T, TaskFailure>>>
    where
        T: Send + 'static,
        F: FnOnce() -> T + Send + 'static,
    {
        self.run_with_report_isolated(tasks, assignment)
            .map(|(r, _)| r)
    }

    /// Like [`run_with_report`](Self::run_with_report), discarding the
    /// telemetry. Drop-in replacement for
    /// [`ThreadPoolExecutor::run`](crate::executor::ThreadPoolExecutor::run)
    /// for `'static` tasks.
    ///
    /// # Errors
    ///
    /// Same as [`run_with_report`](Self::run_with_report).
    pub fn run<T, F>(&self, tasks: Vec<F>, assignment: &Assignment) -> Result<Vec<T>>
    where
        T: Send + 'static,
        F: FnOnce() -> T + Send + 'static,
    {
        self.run_with_report(tasks, assignment).map(|(r, _)| r)
    }

    /// Like [`run`](Self::run) with an explicit instrumentation sink,
    /// discarding the telemetry report.
    ///
    /// # Errors
    ///
    /// Same as [`run`](Self::run).
    ///
    /// # Panics
    ///
    /// Same as [`run`](Self::run).
    pub fn run_observed<T, F>(
        &self,
        tasks: Vec<F>,
        assignment: &Assignment,
        observer: Arc<dyn Observer>,
    ) -> Result<Vec<T>>
    where
        T: Send + 'static,
        F: FnOnce() -> T + Send + 'static,
    {
        self.run_with_report_observed(tasks, assignment, observer)
            .map(|(r, _)| r)
    }
}

impl Drop for WorkStealingExecutor {
    fn drop(&mut self) {
        {
            let mut state = lock_ignore_poison(&self.shared.state);
            state.shutdown = true;
            self.shared.work_ready.notify_all();
        }
        for handle in self.handles.drain(..) {
            let _ = handle.join();
        }
    }
}

fn worker_loop(shared: &PoolShared, worker: usize) {
    let mut seen_epoch = 0u64;
    loop {
        let batch = {
            let mut state = lock_ignore_poison(&shared.state);
            loop {
                if state.shutdown {
                    return;
                }
                if state.epoch != seen_epoch {
                    if let Some(batch) = state.batch.clone() {
                        seen_epoch = state.epoch;
                        break batch;
                    }
                }
                state = shared
                    .work_ready
                    .wait(state)
                    .unwrap_or_else(PoisonError::into_inner);
            }
        };
        batch.execute(worker);
        drop(batch);
        let mut state = lock_ignore_poison(&shared.state);
        state.done += 1;
        shared.batch_done.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::assignment::{bps_schedule, generic_schedule};
    use std::sync::atomic::AtomicUsize;

    fn boxed_tasks(n: usize) -> Vec<Box<dyn FnOnce() -> usize + Send>> {
        (0..n).map(|i| Box::new(move || i * i) as _).collect()
    }

    #[test]
    fn results_in_task_order() {
        let pool = WorkStealingExecutor::new(3).unwrap();
        let a = generic_schedule(10, 3).unwrap();
        let out = pool.run(boxed_tasks(10), &a).unwrap();
        assert_eq!(out, (0..10).map(|i| i * i).collect::<Vec<_>>());
    }

    #[test]
    fn pool_survives_many_batches() {
        let pool = WorkStealingExecutor::new(2).unwrap();
        for round in 0..20 {
            let a = generic_schedule(6, 2).unwrap();
            let tasks: Vec<Box<dyn FnOnce() -> usize + Send>> =
                (0..6).map(|i| Box::new(move || i + round) as _).collect();
            let out = pool.run(tasks, &a).unwrap();
            assert_eq!(out, (0..6).map(|i| i + round).collect::<Vec<_>>());
        }
    }

    #[test]
    fn all_tasks_run_exactly_once() {
        static COUNTER: AtomicUsize = AtomicUsize::new(0);
        let pool = WorkStealingExecutor::new(4).unwrap();
        let tasks: Vec<Box<dyn FnOnce() + Send>> = (0..25)
            .map(|_| {
                Box::new(|| {
                    COUNTER.fetch_add(1, Ordering::SeqCst);
                }) as _
            })
            .collect();
        let a = generic_schedule(25, 4).unwrap();
        pool.run(tasks, &a).unwrap();
        assert_eq!(COUNTER.load(Ordering::SeqCst), 25);
    }

    #[test]
    fn report_accounts_every_task_and_worker() {
        let pool = WorkStealingExecutor::new(3).unwrap();
        let a = generic_schedule(9, 3).unwrap();
        let (_, report) = pool.run_with_report(boxed_tasks(9), &a).unwrap();
        assert_eq!(report.task_times.len(), 9);
        assert_eq!(report.worker_busy.len(), 3);
        assert_eq!(report.worker_tasks.iter().sum::<usize>(), 9);
        assert_eq!(report.task_seconds().len(), 9);
        assert!(report.utilization() > 0.0 && report.utilization() <= 1.0);
        assert_eq!(report.failures, 0);
    }

    /// The straggler regression the static schedule cannot fix: a
    /// deliberately wrong cost vector plants one 50x task alongside the
    /// bulk of the cheap ones on the same worker. Stealing must (a) run
    /// every task exactly once, (b) keep results in task order, and (c)
    /// actually steal.
    #[test]
    fn straggler_under_wrong_costs_triggers_steals() {
        static RUNS: AtomicUsize = AtomicUsize::new(0);
        let n = 17;
        // Wrong forecast: claims task 0 is only 2x the rest when it is
        // really ~50x. BPS trusts the forecast, places task 0 first on one
        // worker and balances the cheap tasks behind it — so that worker's
        // deque holds cheap work the idle peer must steal.
        let mut wrong_costs = vec![1.0; n];
        wrong_costs[0] = 2.0;
        let assignment = bps_schedule(&wrong_costs, 2, 1.0).unwrap();

        let tasks: Vec<Box<dyn FnOnce() -> usize + Send>> = (0..n)
            .map(|i| {
                Box::new(move || {
                    RUNS.fetch_add(1, Ordering::SeqCst);
                    // Task 0 is really ~50x the rest.
                    let ms = if i == 0 { 100 } else { 2 };
                    std::thread::sleep(Duration::from_millis(ms));
                    i
                }) as _
            })
            .collect();

        let pool = WorkStealingExecutor::new(2).unwrap();
        let (out, report) = pool.run_with_report(tasks, &assignment).unwrap();
        assert_eq!(out, (0..n).collect::<Vec<_>>(), "results in task order");
        assert_eq!(RUNS.load(Ordering::SeqCst), n, "every task exactly once");
        assert!(
            report.steals > 0,
            "idle worker should have stolen from the straggler's deque: {report:?}"
        );
        assert_eq!(report.task_times.iter().filter(|t| t.is_zero()).count(), 0);
    }

    #[test]
    #[should_panic(expected = "task exploded")]
    fn task_panic_propagates_and_pool_survives() {
        let pool = WorkStealingExecutor::new(2).unwrap();
        let a = generic_schedule(2, 2).unwrap();
        let tasks: Vec<Box<dyn FnOnce() -> usize + Send>> =
            vec![Box::new(|| 1), Box::new(|| panic!("task exploded"))];
        let _ = pool.run(tasks, &a);
    }

    #[test]
    fn pool_usable_after_task_panic() {
        let pool = WorkStealingExecutor::new(2).unwrap();
        let a = generic_schedule(2, 2).unwrap();
        let tasks: Vec<Box<dyn FnOnce() -> usize + Send>> =
            vec![Box::new(|| 1), Box::new(|| panic!("first batch dies"))];
        assert!(catch_unwind(AssertUnwindSafe(|| pool.run(tasks, &a))).is_err());
        // The pool must still execute subsequent batches.
        let a = generic_schedule(4, 2).unwrap();
        let out = pool.run(boxed_tasks(4), &a).unwrap();
        assert_eq!(out, vec![0, 1, 4, 9]);
    }

    #[test]
    fn isolated_run_contains_each_panic() {
        let pool = WorkStealingExecutor::new(2).unwrap();
        let a = generic_schedule(5, 2).unwrap();
        let tasks: Vec<Box<dyn FnOnce() -> usize + Send>> = vec![
            Box::new(|| 10),
            Box::new(|| panic!("boom one")),
            Box::new(|| 30),
            Box::new(|| panic!("boom two")),
            Box::new(|| 50),
        ];
        let (out, report) = pool.run_with_report_isolated(tasks, &a).unwrap();
        assert_eq!(out.len(), 5);
        assert_eq!(*out[0].as_ref().unwrap(), 10);
        assert_eq!(*out[2].as_ref().unwrap(), 30);
        assert_eq!(*out[4].as_ref().unwrap(), 50);
        assert_eq!(out[1].as_ref().unwrap_err().message, "boom one");
        assert_eq!(out[3].as_ref().unwrap_err().message, "boom two");
        assert_eq!(report.failures, 2);
        assert_eq!(report.worker_tasks.iter().sum::<usize>(), 5);
    }

    #[test]
    fn isolated_run_with_all_panics_keeps_pool_healthy() {
        let pool = WorkStealingExecutor::new(2).unwrap();
        let a = generic_schedule(4, 2).unwrap();
        let tasks: Vec<Box<dyn FnOnce() -> usize + Send>> = (0..4)
            .map(|i| Box::new(move || -> usize { panic!("task {i} exploded") }) as _)
            .collect();
        let (out, report) = pool.run_with_report_isolated(tasks, &a).unwrap();
        assert!(out.iter().all(|o| o.is_err()));
        assert_eq!(report.failures, 4);
        // The pool must still execute subsequent fail-fast batches.
        let a = generic_schedule(4, 2).unwrap();
        let out = pool.run(boxed_tasks(4), &a).unwrap();
        assert_eq!(out, vec![0, 1, 4, 9]);
    }

    #[test]
    fn isolated_failure_message_formats() {
        let pool = WorkStealingExecutor::new(1).unwrap();
        let a = generic_schedule(1, 1).unwrap();
        let tasks: Vec<Box<dyn FnOnce() -> usize + Send>> =
            vec![Box::new(|| panic!("formatted {}", 42))];
        let out = pool.run_isolated(tasks, &a).unwrap();
        let failure = out[0].as_ref().unwrap_err();
        assert_eq!(failure.message, "formatted 42");
        assert!(failure.to_string().contains("task panicked"));
    }

    #[test]
    fn mismatched_assignment_rejected() {
        let pool = WorkStealingExecutor::new(2).unwrap();
        let a = generic_schedule(3, 1).unwrap();
        assert!(pool.run(boxed_tasks(2), &a).is_err());
        assert!(pool.run_isolated(boxed_tasks(2), &a).is_err());
    }

    #[test]
    fn zero_workers_rejected() {
        assert!(WorkStealingExecutor::new(0).is_err());
    }

    #[test]
    fn more_groups_than_workers_wraps() {
        let pool = WorkStealingExecutor::new(2).unwrap();
        let a = generic_schedule(8, 4).unwrap();
        let out = pool.run(boxed_tasks(8), &a).unwrap();
        assert_eq!(out, (0..8).map(|i| i * i).collect::<Vec<_>>());
    }

    #[test]
    fn observed_run_traces_every_task_and_reconciles_with_report() {
        use suod_observe::RecordingObserver;
        let pool = WorkStealingExecutor::new(3).unwrap();
        let a = generic_schedule(9, 3).unwrap();
        let rec = Arc::new(RecordingObserver::new());
        let (out, report) = pool
            .run_with_report_observed(boxed_tasks(9), &a, rec.clone())
            .unwrap();
        assert_eq!(out, (0..9).map(|i| i * i).collect::<Vec<_>>());
        let trace = rec.trace();
        let spans: Vec<_> = trace.spans_of(Stage::ExecutorTask).collect();
        assert_eq!(spans.len(), 9, "one span per task");
        let mut tasks: Vec<usize> = spans.iter().map(|s| s.task.unwrap()).collect();
        tasks.sort_unstable();
        assert_eq!(tasks, (0..9).collect::<Vec<_>>());
        assert!(spans.iter().all(|s| s.worker.is_some()));
        assert_eq!(trace.counter(Counter::Steal), report.steals as u64);
        assert_eq!(trace.counter(Counter::TaskFailure), 0);
    }

    #[test]
    fn observed_isolated_run_counts_failures() {
        use suod_observe::RecordingObserver;
        let pool = WorkStealingExecutor::new(2).unwrap();
        let a = generic_schedule(4, 2).unwrap();
        let rec = Arc::new(RecordingObserver::new());
        let tasks: Vec<Box<dyn FnOnce() -> usize + Send>> = vec![
            Box::new(|| 1),
            Box::new(|| panic!("boom")),
            Box::new(|| 3),
            Box::new(|| panic!("bang")),
        ];
        let (out, report) = pool
            .run_with_report_isolated_observed(tasks, &a, rec.clone())
            .unwrap();
        assert_eq!(out.iter().filter(|o| o.is_err()).count(), 2);
        let trace = rec.trace();
        assert_eq!(trace.counter(Counter::TaskFailure), report.failures as u64);
        assert_eq!(trace.spans_of(Stage::ExecutorTask).count(), 4);
        // Failed tasks still close their spans.
        assert!(trace.spans().iter().all(|s| s.id != 0));
    }

    #[test]
    fn single_worker_runs_everything_without_steals() {
        let pool = WorkStealingExecutor::new(1).unwrap();
        let a = generic_schedule(5, 1).unwrap();
        let (out, report) = pool.run_with_report(boxed_tasks(5), &a).unwrap();
        assert_eq!(out, vec![0, 1, 4, 9, 16]);
        assert_eq!(report.steals, 0);
        assert_eq!(report.worker_tasks, vec![5]);
    }
}
