//! Figure 3 reproduction: decision surfaces of unsupervised detectors and
//! their pseudo-supervised approximators.
//!
//! Recreates the paper's 200-point 2-D toy dataset (160 uniform inliers,
//! 40 Gaussian outliers), fits the six detectors of Fig. 3 (ABOD, CBLOF,
//! Feature Bagging, kNN, average kNN, LOF) plus a random-forest
//! approximator for each, evaluates both on a 60x60 grid, and writes the
//! score surfaces as CSV (the figure's raw data). Also prints the
//! training-point error counts shown in the figure's subtitles.

use suod::prelude::*;
use suod_bench::CsvSink;
use suod_datasets::synthetic::fig3_points;
use suod_detectors::labels_from_scores;
use suod_supervised::{RandomForestRegressor, Regressor};

fn models() -> Vec<(&'static str, ModelSpec)> {
    vec![
        ("abod", ModelSpec::Abod { n_neighbors: 10 }),
        ("cblof", ModelSpec::Cblof { n_clusters: 3 }),
        (
            "feature_bagging",
            ModelSpec::FeatureBagging { n_estimators: 10 },
        ),
        (
            "knn",
            ModelSpec::Knn {
                n_neighbors: 10,
                method: KnnMethod::Largest,
            },
        ),
        (
            "aknn",
            ModelSpec::Knn {
                n_neighbors: 10,
                method: KnnMethod::Mean,
            },
        ),
        (
            "lof",
            ModelSpec::Lof {
                n_neighbors: 10,
                metric: Metric::Euclidean,
            },
        ),
    ]
}

/// 60x60 evaluation grid over the data's bounding box.
fn grid(lo: f64, hi: f64) -> Matrix {
    const STEPS: usize = 60;
    let mut rows = Vec::with_capacity(STEPS * STEPS);
    for i in 0..STEPS {
        for j in 0..STEPS {
            let x = lo + (hi - lo) * i as f64 / (STEPS - 1) as f64;
            let y = lo + (hi - lo) * j as f64 / (STEPS - 1) as f64;
            rows.push(vec![x, y]);
        }
    }
    Matrix::from_rows(&rows).expect("fixed-size rows")
}

fn errors(labels_true: &[i32], scores: &[f64], contamination: f64) -> usize {
    let predicted = labels_from_scores(scores, contamination).expect("valid scores");
    labels_true
        .iter()
        .zip(&predicted)
        .filter(|(t, p)| t != p)
        .count()
}

fn main() {
    let ds = fig3_points(42);
    let contamination = ds.contamination();
    let mesh = grid(-15.0, 15.0);
    let mut surface_csv = CsvSink::create("fig3_surfaces", "model,kind,x,y,score");
    let mut summary_csv = CsvSink::create("fig3_errors", "model,orig_errors,appr_errors");

    println!("Figure 3: decision surfaces, detector vs RF approximator (200 points, 40 outliers)");
    println!(
        "{:<16} {:>12} {:>12}",
        "model", "orig errors", "appr errors"
    );

    for (name, spec) in models() {
        let mut det = spec.build(7).expect("valid spec");
        det.fit(&ds.x).expect("fit on toy data");
        let train_scores = det.training_scores().expect("fitted");

        // Distill into the paper's approximator: a random forest regressor.
        let mut rf = RandomForestRegressor::new(100, 7).with_max_depth(10);
        rf.fit(&ds.x, &train_scores).expect("approximator fit");
        let appr_train = rf.predict(&ds.x).expect("predict train");

        let orig_err = errors(&ds.y, &train_scores, contamination);
        let appr_err = errors(&ds.y, &appr_train, contamination);
        println!("{name:<16} {orig_err:>12} {appr_err:>12}");
        summary_csv.row(&format!("{name},{orig_err},{appr_err}"));

        // Surfaces over the mesh.
        let orig_surface = det.decision_function(&mesh).expect("score mesh");
        let appr_surface = rf.predict(&mesh).expect("score mesh");
        for (row, (&o, &a)) in mesh.rows_iter().zip(orig_surface.iter().zip(&appr_surface)) {
            surface_csv.row(&format!("{name},orig,{},{},{o:.6}", row[0], row[1]));
            surface_csv.row(&format!("{name},appr,{},{},{a:.6}", row[0], row[1]));
        }
    }
    println!(
        "\nwrote {} and {}",
        surface_csv.path().display(),
        summary_csv.path().display()
    );
    println!("(expected shape: approximators show equal or fewer errors for the");
    println!(" proximity models; ABOD's coarse surface approximates worst.)");
}
