#![warn(missing_docs)]

//! Dataset infrastructure for the SUOD reproduction.
//!
//! The paper evaluates on ODDS/DAMI benchmark datasets (Appendix A,
//! Table A.1) plus a proprietary IQVIA claims dataset. Neither source is
//! available offline, so this crate provides **seeded synthetic analogs**:
//!
//! * [`synthetic`] — the generator core: Gaussian cluster inliers with
//!   global/local outliers and optional pure-noise dimensions.
//! * [`registry`] — named analogs matching every Table A.1 dataset's
//!   size `n`, dimensionality `d`, and outlier fraction.
//! * [`claims`] — a synthetic pharmacy-claims generator matching the
//!   published IQVIA statistics (123,720 x 35, 15.38 % fraud).
//! * [`split`] — deterministic stratified train/test splitting (the paper
//!   uses 60/40 splits for PSA and full-system experiments).
//! * [`csv`] — minimal numeric-CSV loader for user-supplied datasets.
//!
//! See `DESIGN.md` §4 for why these substitutions preserve the behaviours
//! the paper's experiments measure.
//!
//! # Example
//!
//! ```
//! use suod_datasets::registry;
//!
//! let ds = registry::load_scaled("cardio", 42, 0.25).unwrap();
//! assert_eq!(ds.x.ncols(), 21);
//! assert!(ds.n_outliers() > 0);
//! ```

pub mod claims;
pub mod csv;
pub mod registry;
pub mod split;
pub mod synthetic;

pub use registry::{load, load_scaled, names as registry_names, DatasetInfo};
pub use split::{train_test_split, TrainTestSplit};
pub use synthetic::{Dataset, OutlierKind, SyntheticConfig};

use std::fmt;

/// Errors produced by dataset generation and splitting.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum Error {
    /// A configuration value was outside its valid domain.
    InvalidConfig(String),
    /// The requested registry dataset does not exist.
    UnknownDataset(String),
    /// Propagated matrix-construction failure.
    Linalg(suod_linalg::Error),
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::InvalidConfig(msg) => write!(f, "invalid dataset config: {msg}"),
            Error::UnknownDataset(name) => write!(f, "unknown dataset `{name}`"),
            Error::Linalg(e) => write!(f, "linear algebra error: {e}"),
        }
    }
}

impl std::error::Error for Error {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Error::Linalg(e) => Some(e),
            _ => None,
        }
    }
}

impl From<suod_linalg::Error> for Error {
    fn from(e: suod_linalg::Error) -> Self {
        Error::Linalg(e)
    }
}

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, Error>;
