//! Packed, register-blocked GEMM micro-kernels and kernel configuration.
//!
//! TOD (Zhao et al., 2021) shows that outlier-detection primitives go
//! fast when they are reformulated as batched tensor contractions; on a
//! CPU that means one thing — keep the working set in registers and the
//! nearest cache level, and express everything as a GEMM. This module is
//! the compute core behind the [`distance`](crate::distance) backends:
//!
//! * [`matmul_packed`] / [`gram`] — a cache-aware matrix product built
//!   from an `MR x NR` (4x8) register-blocked inner kernel over
//!   contiguous **packed panels**: `MR`-row interleaved panels of `A` and
//!   `NR`-wide interleaved panels of `B` (columns for `matmul_packed`,
//!   rows for [`gram`], which computes `A · Bᵀ`).
//! * [`DistanceBackend`] — selects how pairwise distances are evaluated
//!   (`naive` | `blocked` | `gemm`); threaded from `SuodBuilder` through
//!   `FitContext`/`NeighborCache` into every proximity detector.
//! * [`KernelConfig`] — backend plus the KD-tree-vs-brute-force
//!   crossover tuning consumed by
//!   [`KnnIndex::build_with`](crate::distance::KnnIndex::build_with).
//! * [`SimdLane`] — which micro-kernel implementation runs: the explicit
//!   AVX2 lane (runtime feature detection) or the always-available scalar
//!   lane. Selected once per kernel invocation and recorded in
//!   [`KernelStats`] so traces show which hardware path produced a run.
//! * [`Precision`] — opt-in mixed-precision mode for the distance paths:
//!   f32 packed storage with f64 accumulation, halving panel memory
//!   traffic in exchange for a documented error bound
//!   ([`mixed_distance_error_bound`]).
//! * [`KernelStats`] — packed-panel / GEMM-tile / fallback / lane
//!   counters the observability layer exports so traces attribute time
//!   to the kernels.
//!
//! # Determinism
//!
//! Every output element `c[i][j]` is accumulated in its **own** register
//! over the reduction index `k` in strictly ascending order, exactly the
//! order the scalar reference [`dot`](crate::matrix::dot) uses. Panel
//! packing and tile shapes change *which* elements a thread computes,
//! never the reduction order of any one element, so results are
//! **bit-identical across thread counts and tile boundaries** — the
//! invariant the determinism system tests pin down.
//!
//! The SIMD lanes preserve the same contract *across lanes*:
//!
//! * In f64 mode the AVX2 lane uses separate multiply and add
//!   instructions (never FMA — fusing would skip the intermediate
//!   rounding the scalar lane performs) with the identical ascending-`k`
//!   order per element, so the SIMD and scalar lanes are **bitwise
//!   identical** and lane selection is invisible in the output.
//! * In mixed mode both lanes widen each f32 operand to f64 before
//!   multiplying. The widening is exact and the product of two
//!   f32-representable values fits in an f64 mantissa (24 + 24 ≤ 53
//!   bits), so the multiply is exact and a fused multiply-add rounds
//!   exactly like multiply-then-add: the AVX2 mixed lane may use FMA and
//!   still match the scalar mixed lane **bitwise**.

use crate::hnsw::NeighborBackend;
use crate::{Error, Matrix, Result};
use std::ops::Range;
use std::sync::atomic::{AtomicU64, AtomicU8, Ordering};
use std::sync::OnceLock;

/// Micro-kernel height: rows of `A` per packed panel.
pub const MR: usize = 4;
/// Micro-kernel width: columns of the output per packed `B` panel.
///
/// 8 rather than 4 so the AVX2 lane carries `MR * NR / 4 = 8`
/// independent 4-wide accumulator chains — enough to cover the
/// `vaddpd` latency x throughput product (4 cycles x 2 ports) and keep
/// both FP ports busy. Tile shape never changes any output bit: each
/// output element is still its own strictly-ascending-`k` reduction.
pub const NR: usize = 8;

/// `A` panels per cache block (`64 * MR = 256` output rows): bounds the
/// output window a `B` block sweeps before moving on, keeping writes
/// inside a few hundred pages instead of striding the whole matrix.
const GRAM_A_BLOCK_PANELS: usize = 64;
/// `B` panels per cache block (`128 * NR = 1024` packed rows, i.e.
/// `1024 * d * 8` bytes): stays L2-resident while an `A` block streams
/// through it, so large-`n` products read each `B` panel from cache
/// `GRAM_A_BLOCK_PANELS` times instead of from memory every time.
const GRAM_B_BLOCK_PANELS: usize = 128;

/// Default KD-tree-vs-brute-force crossover dimensionality.
///
/// A KD-tree prunes well only while the dimensionality is small; beyond
/// the crossover the blocked/GEMM brute-force sweep wins. The historical
/// hardcoded constant was 15; the `kernel_report` crossover sweep
/// (single-threaded, 10k train / 1k queries, see `BENCH_kernels.json`)
/// shows the tree winning decisively through d = 6 and the tiled brute
/// path overtaking it by d = 8, so the tuned default is 6. Override per
/// estimator via `SuodBuilder::kdtree_crossover_dim` or per index via
/// [`KernelConfig`].
pub const DEFAULT_KDTREE_CROSSOVER_DIM: usize = 6;

/// Minimum row count for the KD-tree backend to engage (tree build and
/// traversal overhead dominate below this).
pub const DEFAULT_KDTREE_MIN_ROWS: usize = 128;

/// How pairwise distances and brute-force neighbour sweeps are computed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum DistanceBackend {
    /// Scalar per-pair loops, one query row against the full training
    /// matrix at a time. The reference implementation every other
    /// backend is validated against.
    Naive,
    /// The same per-pair arithmetic as `Naive` — identical formula,
    /// identical reduction order, **bit-identical results** — but tiled
    /// over pair blocks so a panel of `B` rows stays resident in cache
    /// while a block of `A` rows streams through it. The default.
    #[default]
    Blocked,
    /// Euclidean distances via the norm trick
    /// `d²(x, y) = ‖x‖² + ‖y‖² − 2·x·y` over a packed-panel GEMM, with
    /// the squared distance clamped at zero before the square root.
    /// Fastest, but *not* bit-identical to `Naive` (see
    /// [`DistanceBackend::is_bit_identical_to_naive`]); non-Euclidean
    /// metrics fall back to `Blocked` (recorded as a fallback hit).
    Gemm,
}

impl DistanceBackend {
    /// Stable config/CLI name (`naive` | `blocked` | `gemm`).
    pub fn name(self) -> &'static str {
        match self {
            DistanceBackend::Naive => "naive",
            DistanceBackend::Blocked => "blocked",
            DistanceBackend::Gemm => "gemm",
        }
    }

    /// Parses a stable name back into a backend.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidParameter`] for unknown names.
    pub fn parse(name: &str) -> Result<Self> {
        match name {
            "naive" => Ok(DistanceBackend::Naive),
            "blocked" => Ok(DistanceBackend::Blocked),
            "gemm" => Ok(DistanceBackend::Gemm),
            other => Err(Error::InvalidParameter(format!(
                "unknown distance backend `{other}` (expected naive|blocked|gemm)"
            ))),
        }
    }

    /// `true` when the backend produces the same bits as `Naive` for
    /// every metric. `Blocked` reorders only *which* pairs are evaluated
    /// when, never the arithmetic of a pair, so it qualifies; `Gemm`
    /// algebraically rearranges `Σ(xᵢ−yᵢ)²` into `‖x‖²+‖y‖²−2x·y` and
    /// does not.
    pub fn is_bit_identical_to_naive(self) -> bool {
        !matches!(self, DistanceBackend::Gemm)
    }
}

impl std::fmt::Display for DistanceBackend {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Which micro-kernel implementation executes a GEMM invocation.
///
/// The lane is selected **once per kernel invocation** (a [`gram`],
/// [`matmul_packed`], pairwise-distance, or batched-kNN call), never per
/// tile, via [`SimdLane::detect`]: a programmatic override
/// ([`set_simd_lane_override`], used by benches and CI) wins, then the
/// `SUOD_SIMD_LANE` environment variable (`scalar` | `avx2`), then
/// runtime CPU feature detection. Requesting `avx2` on a host without
/// AVX2+FMA silently degrades to `Scalar` — the scalar lane is the
/// always-available fallback, and in f64 mode the two lanes are bitwise
/// identical anyway (see the [module docs](self)).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SimdLane {
    /// Portable scalar micro-kernel (the pre-SIMD reference). Always
    /// available; what the compiler auto-vectorizes it to depends on the
    /// build target, but its arithmetic order is fixed.
    Scalar,
    /// Explicit AVX2 micro-kernel (`std::arch` intrinsics, 4 × f64 per
    /// vector). Requires AVX2 and FMA at runtime; FMA is only *used* by
    /// the mixed-precision kernel, where it is exact (see the
    /// [module docs](self)).
    Avx2,
}

/// Programmatic lane override: 0 = none, 1 = scalar, 2 = avx2.
static SIMD_LANE_OVERRIDE: AtomicU8 = AtomicU8::new(0);

/// Forces every subsequent [`SimdLane::detect`] to the given lane
/// (`None` clears the override and returns to env/CPU detection).
///
/// Intended for benchmarks and CI lane-matrix jobs; an `Avx2` request on
/// a host without AVX2+FMA still degrades to `Scalar` at detection time,
/// so forcing can never make a kernel execute unsupported instructions.
pub fn set_simd_lane_override(lane: Option<SimdLane>) {
    let code = match lane {
        None => 0,
        Some(SimdLane::Scalar) => 1,
        Some(SimdLane::Avx2) => 2,
    };
    SIMD_LANE_OVERRIDE.store(code, Ordering::Relaxed);
}

/// `SUOD_SIMD_LANE` parsed once (unknown values are ignored).
fn env_lane() -> Option<SimdLane> {
    static ENV: OnceLock<Option<SimdLane>> = OnceLock::new();
    *ENV.get_or_init(|| {
        std::env::var("SUOD_SIMD_LANE")
            .ok()
            .and_then(|v| SimdLane::parse(&v).ok())
    })
}

impl SimdLane {
    /// Stable config/CLI name (`scalar` | `avx2`).
    pub fn name(self) -> &'static str {
        match self {
            SimdLane::Scalar => "scalar",
            SimdLane::Avx2 => "avx2",
        }
    }

    /// Parses a stable name back into a lane.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidParameter`] for unknown names.
    pub fn parse(name: &str) -> Result<Self> {
        match name {
            "scalar" => Ok(SimdLane::Scalar),
            "avx2" => Ok(SimdLane::Avx2),
            other => Err(Error::InvalidParameter(format!(
                "unknown SIMD lane `{other}` (expected scalar|avx2)"
            ))),
        }
    }

    /// Best lane the current CPU supports (ignores overrides).
    pub fn supported() -> Self {
        #[cfg(target_arch = "x86_64")]
        {
            if is_x86_feature_detected!("avx2") && is_x86_feature_detected!("fma") {
                return SimdLane::Avx2;
            }
        }
        SimdLane::Scalar
    }

    /// The lane kernels will run on right now: programmatic override,
    /// then `SUOD_SIMD_LANE`, then [`SimdLane::supported`] — with any
    /// unsupported request degraded to `Scalar`.
    pub fn detect() -> Self {
        let requested = match SIMD_LANE_OVERRIDE.load(Ordering::Relaxed) {
            1 => Some(SimdLane::Scalar),
            2 => Some(SimdLane::Avx2),
            _ => env_lane(),
        };
        match requested {
            Some(SimdLane::Scalar) => SimdLane::Scalar,
            Some(SimdLane::Avx2) => Self::supported(),
            None => Self::supported(),
        }
    }
}

impl std::fmt::Display for SimdLane {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Numeric precision of the packed distance kernels.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Precision {
    /// f64 packed storage, f64 accumulation — the exact mode. Scores are
    /// bit-identical to the pre-SIMD kernels at any thread count and on
    /// either lane. The default.
    #[default]
    F64,
    /// f32 packed storage, f64 accumulation. Panels shrink 2x (more of
    /// the training matrix stays cache-resident) and the AVX2 lane can
    /// use FMA exactly. Distances are computed between the f32-rounded
    /// rows, so they differ from the f64 reference by at most
    /// [`mixed_distance_error_bound`]; opt in when that bound is
    /// acceptable (standardized data, detection-quality workloads).
    Mixed,
}

impl Precision {
    /// Stable config/CLI name (`f64` | `mixed`).
    pub fn name(self) -> &'static str {
        match self {
            Precision::F64 => "f64",
            Precision::Mixed => "mixed",
        }
    }

    /// Parses a stable name back into a precision.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidParameter`] for unknown names.
    pub fn parse(name: &str) -> Result<Self> {
        match name {
            "f64" => Ok(Precision::F64),
            "mixed" => Ok(Precision::Mixed),
            other => Err(Error::InvalidParameter(format!(
                "unknown precision `{other}` (expected f64|mixed)"
            ))),
        }
    }
}

impl std::fmt::Display for Precision {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Unit roundoff of IEEE-754 binary32: `2^-24`. Rounding a normal-range
/// f64 value `v` to f32 perturbs it by at most `F32_UNIT_ROUNDOFF * |v|`.
pub const F32_UNIT_ROUNDOFF: f64 = 5.960_464_477_539_063e-8;

/// Guaranteed error bound of a [`Precision::Mixed`] Euclidean distance
/// against the exact f64 distance, given the L2 norms of the two rows.
///
/// # Derivation
///
/// The mixed kernel computes the distance **between the f32-rounded
/// rows** `fl(x)`, `fl(y)` (norms, Gram entries, and single-query dot
/// products are all taken over the rounded values — see
/// [`dot_mixed`](self)), with all accumulation in f64. Rounding each
/// coordinate perturbs it by at most `u·|x_k|` (`u = 2^-24`) in the
/// normal f32 range, so `‖fl(x) − x‖ ≤ u·‖x‖`, and the triangle
/// inequality gives
///
/// ```text
/// |d(fl(x), fl(y)) − d(x, y)| ≤ u·(‖x‖ + ‖y‖)
/// ```
///
/// The remaining f64 accumulation error is `O(d · 2^-53 · ‖x‖·‖y‖)` —
/// orders of magnitude below the f32 term for any realistic `d` — and
/// the norm-trick cancellation near `d ≈ 0` only *shrinks* the computed
/// value toward the clamp at zero. A 4x safety factor absorbs both, and
/// an absolute floor of `1e-40` covers coordinates in the f32 subnormal
/// range (where rounding error is bounded by `2^-149` absolutely, not
/// relatively) and f64 values below `~1.4e-45` that flush to zero in
/// f32.
///
/// **Out of contract:** coordinates with magnitude above `f32::MAX`
/// (~3.4e38) overflow to infinity in mixed mode. Standardize or scale
/// such data, or stay on [`Precision::F64`].
pub fn mixed_distance_error_bound(norm_a: f64, norm_b: f64) -> f64 {
    4.0 * F32_UNIT_ROUNDOFF * (norm_a + norm_b) + 1e-40
}

/// Kernel tuning threaded from the estimator config down to every
/// [`KnnIndex`](crate::distance::KnnIndex) and pairwise-distance call.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct KernelConfig {
    /// Distance/GEMM backend for brute-force paths.
    pub backend: DistanceBackend,
    /// Numeric precision of the packed distance kernels (f64 exact or
    /// f32-storage mixed). Only the [`DistanceBackend::Gemm`] distance
    /// paths honour `Mixed`; the bit-identical backends always run f64.
    pub precision: Precision,
    /// Maximum dimensionality at which the KD-tree backend engages
    /// (replaces the old hardcoded `d <= 15`); see
    /// [`DEFAULT_KDTREE_CROSSOVER_DIM`] for how the default was derived.
    pub kdtree_crossover_dim: usize,
    /// Minimum row count for the KD-tree backend to engage.
    pub kdtree_min_rows: usize,
    /// Which neighbour index answers kNN queries: the exact backends
    /// (default) or the approximate seeded HNSW graph. Euclidean indexes
    /// with at least [`HnswParams::min_rows`](crate::hnsw::HnswParams)
    /// rows honour [`NeighborBackend::Hnsw`]; everything else falls back
    /// to the exact path with an
    /// [`ann_fallback_hits`](KernelCounters::ann_fallback_hits) count.
    pub neighbor: NeighborBackend,
}

impl Default for KernelConfig {
    fn default() -> Self {
        Self {
            backend: DistanceBackend::default(),
            precision: Precision::default(),
            kdtree_crossover_dim: DEFAULT_KDTREE_CROSSOVER_DIM,
            kdtree_min_rows: DEFAULT_KDTREE_MIN_ROWS,
            neighbor: NeighborBackend::Exact,
        }
    }
}

impl KernelConfig {
    /// Returns the config with the distance/GEMM backend replaced.
    pub fn with_backend(mut self, backend: DistanceBackend) -> Self {
        self.backend = backend;
        self
    }

    /// Returns the config with the packed-kernel precision replaced.
    pub fn with_precision(mut self, precision: Precision) -> Self {
        self.precision = precision;
        self
    }

    /// Returns the config with the KD-tree crossover dimensionality
    /// replaced (0 forces brute force everywhere).
    pub fn with_kdtree_crossover_dim(mut self, dims: usize) -> Self {
        self.kdtree_crossover_dim = dims;
        self
    }

    /// Returns the config with the KD-tree minimum row count replaced.
    pub fn with_kdtree_min_rows(mut self, rows: usize) -> Self {
        self.kdtree_min_rows = rows;
        self
    }

    /// Returns the config with the neighbour backend replaced.
    pub fn with_neighbor(mut self, neighbor: NeighborBackend) -> Self {
        self.neighbor = neighbor;
        self
    }

    /// `true` when an index over `rows x dims` data should use the
    /// KD-tree backend under this config.
    pub fn uses_kdtree(&self, rows: usize, dims: usize) -> bool {
        dims <= self.kdtree_crossover_dim && rows >= self.kdtree_min_rows
    }
}

/// Monotonic kernel-work counters (thread-safe, shared by reference).
///
/// The shape-derived counts (`packed_panels`, `gemm_tiles`,
/// `fallback_hits`, `mixed_invocations`) are **deterministic**: they are
/// derived from matrix shapes, the fixed panel/tile geometry, and the
/// configured precision, so a given sequence of kernel calls produces
/// the same counts at every thread count. The lane counts
/// (`simd_invocations` / `scalar_invocations`) record which micro-kernel
/// lane [`SimdLane::detect`] picked and are therefore **host-dependent**
/// — still worker-count-independent on a given host, but excluded from
/// cross-host determinism signatures. The observability layer snapshots
/// all of them around neighbour-graph builds.
#[derive(Debug, Default)]
pub struct KernelStats {
    packed_panels: AtomicU64,
    gemm_tiles: AtomicU64,
    fallback_hits: AtomicU64,
    simd_invocations: AtomicU64,
    scalar_invocations: AtomicU64,
    mixed_invocations: AtomicU64,
    ann_queries: AtomicU64,
    ann_fallback_hits: AtomicU64,
}

impl KernelStats {
    /// Fresh zeroed counters.
    pub fn new() -> Self {
        Self::default()
    }

    /// Point-in-time copy of the counters.
    pub fn snapshot(&self) -> KernelCounters {
        KernelCounters {
            packed_panels: self.packed_panels.load(Ordering::Relaxed),
            gemm_tiles: self.gemm_tiles.load(Ordering::Relaxed),
            fallback_hits: self.fallback_hits.load(Ordering::Relaxed),
            simd_invocations: self.simd_invocations.load(Ordering::Relaxed),
            scalar_invocations: self.scalar_invocations.load(Ordering::Relaxed),
            mixed_invocations: self.mixed_invocations.load(Ordering::Relaxed),
            ann_queries: self.ann_queries.load(Ordering::Relaxed),
            ann_fallback_hits: self.ann_fallback_hits.load(Ordering::Relaxed),
        }
    }

    /// Records one GEMM invocation over an `a_rows x b_rows` output:
    /// `ceil(a_rows/MR) + ceil(b_rows/NR)` logical packed panels,
    /// `ceil(a_rows/MR) * ceil(b_rows/NR)` micro-kernel tiles, and the
    /// lane/precision the invocation ran with.
    pub(crate) fn record_gemm(
        &self,
        a_rows: usize,
        b_rows: usize,
        lane: SimdLane,
        precision: Precision,
    ) {
        let ap = a_rows.div_ceil(MR) as u64;
        let bp = b_rows.div_ceil(NR) as u64;
        self.packed_panels.fetch_add(ap + bp, Ordering::Relaxed);
        self.gemm_tiles.fetch_add(ap * bp, Ordering::Relaxed);
        match lane {
            SimdLane::Avx2 => self.simd_invocations.fetch_add(1, Ordering::Relaxed),
            SimdLane::Scalar => self.scalar_invocations.fetch_add(1, Ordering::Relaxed),
        };
        if precision == Precision::Mixed {
            self.mixed_invocations.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Records one request the selected backend could not serve (e.g. a
    /// non-Euclidean metric under [`DistanceBackend::Gemm`]).
    pub(crate) fn record_fallback(&self) {
        self.fallback_hits.fetch_add(1, Ordering::Relaxed);
    }

    /// Records `n` queries answered by the approximate HNSW graph
    /// (request-derived, so the count is thread-count-independent).
    pub(crate) fn record_ann_query(&self, n: u64) {
        self.ann_queries.fetch_add(n, Ordering::Relaxed);
    }

    /// Records one index build that requested [`NeighborBackend::Hnsw`]
    /// but had to take the exact path (small n or a non-Euclidean
    /// metric) — the ANN analogue of [`record_fallback`](Self::record_fallback).
    pub(crate) fn record_ann_fallback(&self) {
        self.ann_fallback_hits.fetch_add(1, Ordering::Relaxed);
    }
}

/// Immutable snapshot of [`KernelStats`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct KernelCounters {
    /// Contiguous `MR`/`NR` panels packed (logical: derived from shapes).
    pub packed_panels: u64,
    /// Micro-kernel tile invocations.
    pub gemm_tiles: u64,
    /// Requests the selected backend had to hand to a slower path.
    pub fallback_hits: u64,
    /// Kernel invocations that ran on the explicit AVX2 lane
    /// (host-dependent; see [`KernelStats`]).
    pub simd_invocations: u64,
    /// Kernel invocations that ran on the scalar fallback lane
    /// (host-dependent; see [`KernelStats`]).
    pub scalar_invocations: u64,
    /// Kernel invocations that ran in mixed precision (config-derived,
    /// deterministic).
    pub mixed_invocations: u64,
    /// Queries answered by the approximate HNSW graph (request-derived,
    /// deterministic).
    pub ann_queries: u64,
    /// Index builds that requested [`NeighborBackend::Hnsw`] but routed
    /// to the exact path (small n or non-Euclidean metric) — the
    /// exactness-fallback counter (deterministic).
    pub ann_fallback_hits: u64,
}

impl KernelCounters {
    /// Counter-wise difference `self - earlier` (saturating).
    pub fn since(&self, earlier: &KernelCounters) -> KernelCounters {
        KernelCounters {
            packed_panels: self.packed_panels.saturating_sub(earlier.packed_panels),
            gemm_tiles: self.gemm_tiles.saturating_sub(earlier.gemm_tiles),
            fallback_hits: self.fallback_hits.saturating_sub(earlier.fallback_hits),
            simd_invocations: self
                .simd_invocations
                .saturating_sub(earlier.simd_invocations),
            scalar_invocations: self
                .scalar_invocations
                .saturating_sub(earlier.scalar_invocations),
            mixed_invocations: self
                .mixed_invocations
                .saturating_sub(earlier.mixed_invocations),
            ann_queries: self.ann_queries.saturating_sub(earlier.ann_queries),
            ann_fallback_hits: self
                .ann_fallback_hits
                .saturating_sub(earlier.ann_fallback_hits),
        }
    }
}

/// Rows of a matrix packed into `width`-wide interleaved panels.
///
/// Panel `p` holds source rows `p*width .. p*width+width` laid out as
/// `panel[k*width + r]` — the micro-kernel streams it with unit stride.
/// Short trailing panels are zero-padded, so every panel has the same
/// byte length and the kernel never branches on edges along the packed
/// axis. Generic over the storage element: `f64` for the exact path,
/// `f32` for [`Precision::Mixed`] (identical layout, half the bytes).
pub(crate) struct Panels<T> {
    data: Vec<T>,
    n_rows: usize,
    d: usize,
    width: usize,
}

/// The exact-path panels (f64 storage).
pub(crate) type PackedPanels = Panels<f64>;
/// Mixed-precision panels: each element is the source value rounded to
/// f32. The micro-kernel widens back to f64 before accumulating.
pub(crate) type PackedPanelsF32 = Panels<f32>;

impl<T: Copy + Default> Panels<T> {
    /// Packs the rows in `range` into `width`-wide panels, converting
    /// each element through `conv`.
    fn from_row_range_with(
        m: &Matrix,
        range: Range<usize>,
        width: usize,
        conv: impl Fn(f64) -> T,
    ) -> Self {
        let n_rows = range.len();
        let d = m.ncols();
        let n_panels = n_rows.div_ceil(width.max(1)).max(usize::from(n_rows > 0));
        let mut data = vec![T::default(); n_panels * d * width];
        for (local, src) in range.enumerate() {
            let panel = local / width;
            let lane = local % width;
            let row = m.row(src);
            let base = panel * d * width;
            for (k, &v) in row.iter().enumerate() {
                data[base + k * width + lane] = conv(v);
            }
        }
        Self {
            data,
            n_rows,
            d,
            width,
        }
    }

    /// Number of packed entities (rows or columns).
    pub(crate) fn len(&self) -> usize {
        self.n_rows
    }

    fn panel(&self, p: usize) -> &[T] {
        let stride = self.d * self.width;
        &self.data[p * stride..(p + 1) * stride]
    }
}

impl PackedPanels {
    /// Packs every row of `m` (used for [`gram`]: `B`'s rows are `Bᵀ`'s
    /// columns).
    pub(crate) fn from_rows(m: &Matrix) -> Self {
        Self::from_row_range(m, 0..m.nrows(), NR)
    }

    /// Packs the rows in `range` into `width`-wide panels.
    pub(crate) fn from_row_range(m: &Matrix, range: Range<usize>, width: usize) -> Self {
        Self::from_row_range_with(m, range, width, |v| v)
    }

    /// Packs the *columns* of `m` (used for [`matmul_packed`], where the
    /// reduction runs down `B`'s rows).
    pub(crate) fn from_cols(m: &Matrix) -> Self {
        let n_rows = m.ncols(); // packed axis = B's columns
        let d = m.nrows(); // reduction axis = B's rows
        let width = NR;
        let n_panels = n_rows.div_ceil(width).max(usize::from(n_rows > 0));
        let mut data = vec![0.0; n_panels * d * width];
        for k in 0..d {
            let row = m.row(k);
            for (c, &v) in row.iter().enumerate() {
                let panel = c / width;
                let lane = c % width;
                data[panel * d * width + k * width + lane] = v;
            }
        }
        Self {
            data,
            n_rows,
            d,
            width,
        }
    }
}

impl PackedPanelsF32 {
    /// Packs every row of `m`, rounding each element to f32.
    pub(crate) fn from_rows(m: &Matrix) -> Self {
        Self::from_row_range(m, 0..m.nrows(), NR)
    }

    /// Packs the rows in `range` into `width`-wide f32 panels.
    pub(crate) fn from_row_range(m: &Matrix, range: Range<usize>, width: usize) -> Self {
        Self::from_row_range_with(m, range, width, |v| v as f32)
    }
}

/// The 4x8 register-blocked inner kernel: `acc[i][j] += Σ_k a[k][i] *
/// b[k][j]` with `k` strictly ascending and one accumulator per output
/// element (the determinism contract). `chunks_exact` hands the
/// optimiser fixed-size lanes — no bounds checks in the hot loop — and
/// iterates the chunks (one per `k`) in ascending order.
#[inline]
fn microkernel(apanel: &[f64], bpanel: &[f64], acc: &mut [f64; MR * NR]) {
    for (a, b) in apanel.chunks_exact(MR).zip(bpanel.chunks_exact(NR)) {
        for i in 0..MR {
            let ai = a[i];
            for j in 0..NR {
                acc[i * NR + j] += ai * b[j];
            }
        }
    }
}

/// Scalar lane of the mixed-precision micro-kernel: f32 panels widened
/// to f64 per element, accumulated in f64 with the same ascending-`k`,
/// one-accumulator-per-element order as [`microkernel`]. The widening is
/// exact and each product of two widened f32s is exactly representable
/// in f64, so this lane and the AVX2 FMA lane agree bitwise (see the
/// [module docs](self)).
#[inline]
fn microkernel_mixed(apanel: &[f32], bpanel: &[f32], acc: &mut [f64; MR * NR]) {
    for (a, b) in apanel.chunks_exact(MR).zip(bpanel.chunks_exact(NR)) {
        for i in 0..MR {
            let ai = f64::from(a[i]);
            for j in 0..NR {
                acc[i * NR + j] += ai * f64::from(b[j]);
            }
        }
    }
}

/// Explicit AVX2 micro-kernels (`x86_64` only; callers dispatch through
/// [`SimdLane`], which never selects these on hosts without AVX2+FMA).
#[cfg(target_arch = "x86_64")]
mod x86 {
    use super::{MR, NR};
    use std::arch::x86_64::*;

    /// AVX2 lane of the f64 micro-kernel. Two `__m256d` accumulators
    /// per `A` row (the 4x8 tile = 8 independent add chains, covering
    /// the `vaddpd` latency x throughput product), reduction index `k`
    /// strictly ascending, and — deliberately — separate `mul` and
    /// `add` instructions rather than FMA: each output element sees
    /// exactly the per-`k` round-to-nearest sequence the scalar lane
    /// performs, so the two lanes are bitwise identical.
    ///
    /// # Safety
    ///
    /// Caller must ensure the CPU supports AVX2 (guaranteed when
    /// [`super::SimdLane::detect`] returned `Avx2`).
    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn microkernel_f64(apanel: &[f64], bpanel: &[f64], acc: &mut [f64; MR * NR]) {
        debug_assert_eq!(MR, 4);
        debug_assert_eq!(NR, 8);
        let mut acc0l = _mm256_loadu_pd(acc.as_ptr());
        let mut acc0h = _mm256_loadu_pd(acc.as_ptr().add(4));
        let mut acc1l = _mm256_loadu_pd(acc.as_ptr().add(NR));
        let mut acc1h = _mm256_loadu_pd(acc.as_ptr().add(NR + 4));
        let mut acc2l = _mm256_loadu_pd(acc.as_ptr().add(2 * NR));
        let mut acc2h = _mm256_loadu_pd(acc.as_ptr().add(2 * NR + 4));
        let mut acc3l = _mm256_loadu_pd(acc.as_ptr().add(3 * NR));
        let mut acc3h = _mm256_loadu_pd(acc.as_ptr().add(3 * NR + 4));
        let depth = apanel.len() / MR;
        debug_assert_eq!(bpanel.len(), depth * NR);
        for k in 0..depth {
            let bl = _mm256_loadu_pd(bpanel.as_ptr().add(k * NR));
            let bh = _mm256_loadu_pd(bpanel.as_ptr().add(k * NR + 4));
            let a = apanel.as_ptr().add(k * MR);
            let a0 = _mm256_set1_pd(*a);
            acc0l = _mm256_add_pd(acc0l, _mm256_mul_pd(a0, bl));
            acc0h = _mm256_add_pd(acc0h, _mm256_mul_pd(a0, bh));
            let a1 = _mm256_set1_pd(*a.add(1));
            acc1l = _mm256_add_pd(acc1l, _mm256_mul_pd(a1, bl));
            acc1h = _mm256_add_pd(acc1h, _mm256_mul_pd(a1, bh));
            let a2 = _mm256_set1_pd(*a.add(2));
            acc2l = _mm256_add_pd(acc2l, _mm256_mul_pd(a2, bl));
            acc2h = _mm256_add_pd(acc2h, _mm256_mul_pd(a2, bh));
            let a3 = _mm256_set1_pd(*a.add(3));
            acc3l = _mm256_add_pd(acc3l, _mm256_mul_pd(a3, bl));
            acc3h = _mm256_add_pd(acc3h, _mm256_mul_pd(a3, bh));
        }
        _mm256_storeu_pd(acc.as_mut_ptr(), acc0l);
        _mm256_storeu_pd(acc.as_mut_ptr().add(4), acc0h);
        _mm256_storeu_pd(acc.as_mut_ptr().add(NR), acc1l);
        _mm256_storeu_pd(acc.as_mut_ptr().add(NR + 4), acc1h);
        _mm256_storeu_pd(acc.as_mut_ptr().add(2 * NR), acc2l);
        _mm256_storeu_pd(acc.as_mut_ptr().add(2 * NR + 4), acc2h);
        _mm256_storeu_pd(acc.as_mut_ptr().add(3 * NR), acc3l);
        _mm256_storeu_pd(acc.as_mut_ptr().add(3 * NR + 4), acc3h);
    }

    /// AVX2+FMA lane of the mixed-precision micro-kernel: f32 panels
    /// widened lane-wise (`cvtps_pd`, exact) and accumulated with
    /// `fmadd`. The product of two widened f32s is exact in f64, so the
    /// fused rounding equals multiply-then-add and this lane matches the
    /// scalar mixed lane bitwise.
    ///
    /// # Safety
    ///
    /// Caller must ensure the CPU supports AVX2 and FMA (guaranteed when
    /// [`super::SimdLane::detect`] returned `Avx2`).
    #[target_feature(enable = "avx2,fma")]
    pub(super) unsafe fn microkernel_mixed(
        apanel: &[f32],
        bpanel: &[f32],
        acc: &mut [f64; MR * NR],
    ) {
        debug_assert_eq!(MR, 4);
        debug_assert_eq!(NR, 8);
        let mut acc0l = _mm256_loadu_pd(acc.as_ptr());
        let mut acc0h = _mm256_loadu_pd(acc.as_ptr().add(4));
        let mut acc1l = _mm256_loadu_pd(acc.as_ptr().add(NR));
        let mut acc1h = _mm256_loadu_pd(acc.as_ptr().add(NR + 4));
        let mut acc2l = _mm256_loadu_pd(acc.as_ptr().add(2 * NR));
        let mut acc2h = _mm256_loadu_pd(acc.as_ptr().add(2 * NR + 4));
        let mut acc3l = _mm256_loadu_pd(acc.as_ptr().add(3 * NR));
        let mut acc3h = _mm256_loadu_pd(acc.as_ptr().add(3 * NR + 4));
        let depth = apanel.len() / MR;
        debug_assert_eq!(bpanel.len(), depth * NR);
        for k in 0..depth {
            let bl = _mm256_cvtps_pd(_mm_loadu_ps(bpanel.as_ptr().add(k * NR)));
            let bh = _mm256_cvtps_pd(_mm_loadu_ps(bpanel.as_ptr().add(k * NR + 4)));
            let a = apanel.as_ptr().add(k * MR);
            let a0 = _mm256_set1_pd(f64::from(*a));
            acc0l = _mm256_fmadd_pd(a0, bl, acc0l);
            acc0h = _mm256_fmadd_pd(a0, bh, acc0h);
            let a1 = _mm256_set1_pd(f64::from(*a.add(1)));
            acc1l = _mm256_fmadd_pd(a1, bl, acc1l);
            acc1h = _mm256_fmadd_pd(a1, bh, acc1h);
            let a2 = _mm256_set1_pd(f64::from(*a.add(2)));
            acc2l = _mm256_fmadd_pd(a2, bl, acc2l);
            acc2h = _mm256_fmadd_pd(a2, bh, acc2h);
            let a3 = _mm256_set1_pd(f64::from(*a.add(3)));
            acc3l = _mm256_fmadd_pd(a3, bl, acc3l);
            acc3h = _mm256_fmadd_pd(a3, bh, acc3h);
        }
        _mm256_storeu_pd(acc.as_mut_ptr(), acc0l);
        _mm256_storeu_pd(acc.as_mut_ptr().add(4), acc0h);
        _mm256_storeu_pd(acc.as_mut_ptr().add(NR), acc1l);
        _mm256_storeu_pd(acc.as_mut_ptr().add(NR + 4), acc1h);
        _mm256_storeu_pd(acc.as_mut_ptr().add(2 * NR), acc2l);
        _mm256_storeu_pd(acc.as_mut_ptr().add(2 * NR + 4), acc2h);
        _mm256_storeu_pd(acc.as_mut_ptr().add(3 * NR), acc3l);
        _mm256_storeu_pd(acc.as_mut_ptr().add(3 * NR + 4), acc3h);
    }
}

/// Euclidean distance from cached squared norms and a Gram entry:
/// `sqrt(max(0, ‖a‖² + ‖b‖² − 2·a·b))`. The clamp keeps near-duplicate
/// rows (where cancellation can drive the algebraic identity slightly
/// negative) from producing NaN. Every gemm-backend path — batched,
/// single-query, and the fused tile epilogue below — combines its terms
/// through this one function, in this argument order, so the backend is
/// self-consistent to the bit.
#[inline]
pub(crate) fn dist_from_gram(na: f64, nb: f64, g: f64) -> f64 {
    (na + nb - 2.0 * g).max(0.0).sqrt()
}

/// Cache-blocked panel sweep: runs `kernel` over every
/// `(A panel, B panel)` tile and writes
/// `finish(absolute_a_row, packed_index, gram_value)` into `out`. The
/// block loops change only *when* a tile is computed (B blocks stay
/// L2-resident across an A block), never the per-element reduction —
/// results are bitwise independent of the blocking. Generic over the
/// panel element type (f64 exact / f32 mixed) and the micro-kernel lane.
#[inline]
fn gram_blocks<T: Copy + Default>(
    apanels: &Panels<T>,
    packed: &Panels<T>,
    a_start: usize,
    kernel: impl Fn(&[T], &[T], &mut [f64; MR * NR]),
    out: &mut [f64],
    mut finish: impl FnMut(usize, usize, f64) -> f64,
) {
    let a_rows = apanels.len();
    let n_out = packed.len();
    let n_ap = a_rows.div_ceil(MR);
    let n_bp = n_out.div_ceil(NR);
    for ab in (0..n_ap).step_by(GRAM_A_BLOCK_PANELS) {
        let ab_hi = (ab + GRAM_A_BLOCK_PANELS).min(n_ap);
        for bb in (0..n_bp).step_by(GRAM_B_BLOCK_PANELS) {
            let bb_hi = (bb + GRAM_B_BLOCK_PANELS).min(n_bp);
            for ap in ab..ab_hi {
                let i_hi = (ap * MR + MR).min(a_rows);
                let apanel = apanels.panel(ap);
                for bp in bb..bb_hi {
                    let j_hi = (bp * NR + NR).min(n_out);
                    let mut acc = [0.0f64; MR * NR];
                    kernel(apanel, packed.panel(bp), &mut acc);
                    for i in ap * MR..i_hi {
                        let li = i - ap * MR;
                        let row = &mut out[i * n_out..(i + 1) * n_out];
                        for j in bp * NR..j_hi {
                            row[j] = finish(a_start + i, j, acc[li * NR + (j - bp * NR)]);
                        }
                    }
                }
            }
        }
    }
}

/// f64 panel sweep on the selected lane. Lane dispatch happens once per
/// call (one branch), not per tile; either lane produces identical bits
/// in f64 mode, so the choice only affects speed.
#[inline]
fn gram_rows_apply(
    a: &Matrix,
    a_range: Range<usize>,
    packed: &PackedPanels,
    lane: SimdLane,
    out: &mut [f64],
    finish: impl FnMut(usize, usize, f64) -> f64,
) {
    debug_assert_eq!(a.ncols(), packed.d);
    debug_assert_eq!(out.len(), a_range.len() * packed.len());
    if a_range.is_empty() || packed.len() == 0 {
        return;
    }
    let apanels = PackedPanels::from_row_range(a, a_range.clone(), MR);
    match lane {
        #[cfg(target_arch = "x86_64")]
        SimdLane::Avx2 => gram_blocks(
            &apanels,
            packed,
            a_range.start,
            // SAFETY: `Avx2` is only selected when runtime detection
            // confirmed AVX2 support.
            |ap, bp, acc| unsafe { x86::microkernel_f64(ap, bp, acc) },
            out,
            finish,
        ),
        #[cfg(not(target_arch = "x86_64"))]
        SimdLane::Avx2 => gram_blocks(&apanels, packed, a_range.start, microkernel, out, finish),
        SimdLane::Scalar => gram_blocks(&apanels, packed, a_range.start, microkernel, out, finish),
    }
}

/// Mixed-precision panel sweep: `a`'s rows are packed (and rounded) to
/// f32 panels to match the pre-packed f32 `B` panels.
#[inline]
fn gram_rows_apply_mixed(
    a: &Matrix,
    a_range: Range<usize>,
    packed: &PackedPanelsF32,
    lane: SimdLane,
    out: &mut [f64],
    finish: impl FnMut(usize, usize, f64) -> f64,
) {
    debug_assert_eq!(a.ncols(), packed.d);
    debug_assert_eq!(out.len(), a_range.len() * packed.len());
    if a_range.is_empty() || packed.len() == 0 {
        return;
    }
    let apanels = PackedPanelsF32::from_row_range(a, a_range.clone(), MR);
    match lane {
        #[cfg(target_arch = "x86_64")]
        SimdLane::Avx2 => gram_blocks(
            &apanels,
            packed,
            a_range.start,
            // SAFETY: `Avx2` is only selected when runtime detection
            // confirmed AVX2 and FMA support.
            |ap, bp, acc| unsafe { x86::microkernel_mixed(ap, bp, acc) },
            out,
            finish,
        ),
        #[cfg(not(target_arch = "x86_64"))]
        SimdLane::Avx2 => gram_blocks(
            &apanels,
            packed,
            a_range.start,
            microkernel_mixed,
            out,
            finish,
        ),
        SimdLane::Scalar => gram_blocks(
            &apanels,
            packed,
            a_range.start,
            microkernel_mixed,
            out,
            finish,
        ),
    }
}

/// Computes `out[r][c] = a_row(a_range.start + r) · packed[c]` for every
/// packed entity `c`, writing into the row-major `out` slice
/// (`a_range.len() * packed.len()` elements).
pub(crate) fn gram_rows_into(
    a: &Matrix,
    a_range: Range<usize>,
    packed: &PackedPanels,
    lane: SimdLane,
    out: &mut [f64],
) {
    gram_rows_apply(a, a_range, packed, lane, out, |_, _, g| g);
}

/// Mixed-precision [`gram_rows_into`]: dot products of the f32-rounded
/// rows, accumulated in f64.
pub(crate) fn gram_rows_into_mixed(
    a: &Matrix,
    a_range: Range<usize>,
    packed: &PackedPanelsF32,
    lane: SimdLane,
    out: &mut [f64],
) {
    gram_rows_apply_mixed(a, a_range, packed, lane, out, |_, _, g| g);
}

/// [`gram_rows_into`] with the norm-trick epilogue fused into the tile
/// write-back: `out[r][c] = dist_from_gram(na[row], nb[c], gram)`. The
/// distance matrix is produced in one pass — no intermediate Gram
/// allocation, no second read-modify-write sweep over the (potentially
/// multi-gigabyte) output. `na` is indexed by absolute `a` row, `nb` by
/// packed index.
pub(crate) fn gram_rows_dist_into(
    a: &Matrix,
    a_range: Range<usize>,
    packed: &PackedPanels,
    lane: SimdLane,
    na: &[f64],
    nb: &[f64],
    out: &mut [f64],
) {
    gram_rows_apply(a, a_range, packed, lane, out, |i, j, g| {
        dist_from_gram(na[i], nb[j], g)
    });
}

/// Mixed-precision [`gram_rows_dist_into`]. `na`/`nb` must be the
/// **f32-rounded** squared norms ([`row_sq_norms_mixed`]) so that every
/// term of the norm trick refers to the same rounded rows — that is what
/// makes self-distances exactly zero and keeps the batched path bitwise
/// consistent with the single-query mixed path.
pub(crate) fn gram_rows_dist_into_mixed(
    a: &Matrix,
    a_range: Range<usize>,
    packed: &PackedPanelsF32,
    lane: SimdLane,
    na: &[f64],
    nb: &[f64],
    out: &mut [f64],
) {
    gram_rows_apply_mixed(a, a_range, packed, lane, out, |i, j, g| {
        dist_from_gram(na[i], nb[j], g)
    });
}

/// Gram-style product `A · Bᵀ` (`a.nrows() x b.nrows()`) over packed
/// panels — the contraction behind the norm-trick distance path. Both
/// operands are row-major, so packing reads are unit-stride.
///
/// Bit-identical across `n_threads` (see the [module docs](self)).
///
/// # Errors
///
/// Returns [`Error::ShapeMismatch`] when column counts differ.
pub fn gram(
    a: &Matrix,
    b: &Matrix,
    n_threads: usize,
    stats: Option<&KernelStats>,
) -> Result<Matrix> {
    if a.ncols() != b.ncols() {
        return Err(Error::ShapeMismatch {
            op: "gram",
            lhs: a.shape(),
            rhs: b.shape(),
        });
    }
    let lane = SimdLane::detect();
    if let Some(s) = stats {
        s.record_gemm(a.nrows(), b.nrows(), lane, Precision::F64);
    }
    let packed = PackedPanels::from_rows(b);
    let mut out = Matrix::zeros(a.nrows(), b.nrows());
    let cols = b.nrows();
    crate::parallel::par_row_blocks(out.as_mut_slice(), cols.max(1), n_threads, |rows, block| {
        gram_rows_into(a, rows, &packed, lane, block);
    });
    Ok(out)
}

/// Packed blocked matrix product `A · B`: `B`'s columns are packed into
/// `NR`-wide panels once, then each thread's row block runs the 4x8
/// micro-kernel over its `MR`-row panels of `A`.
///
/// Bit-identical across `n_threads`; matches [`Matrix::matmul`] within
/// floating-point reassociation noise (the per-element reduction order is
/// the same ascending `k`, but `matmul` skips exact-zero `a` terms).
///
/// # Errors
///
/// Returns [`Error::ShapeMismatch`] when `a.ncols() != b.nrows()`.
pub fn matmul_packed(
    a: &Matrix,
    b: &Matrix,
    n_threads: usize,
    stats: Option<&KernelStats>,
) -> Result<Matrix> {
    if a.ncols() != b.nrows() {
        return Err(Error::ShapeMismatch {
            op: "matmul_packed",
            lhs: a.shape(),
            rhs: b.shape(),
        });
    }
    let lane = SimdLane::detect();
    if let Some(s) = stats {
        s.record_gemm(a.nrows(), b.ncols(), lane, Precision::F64);
    }
    let packed = PackedPanels::from_cols(b);
    let mut out = Matrix::zeros(a.nrows(), b.ncols());
    let cols = b.ncols();
    crate::parallel::par_row_blocks(out.as_mut_slice(), cols.max(1), n_threads, |rows, block| {
        gram_rows_into(a, rows, &packed, lane, block);
    });
    Ok(out)
}

/// Squared Euclidean norm of every row (the cached `‖x‖²` terms of the
/// norm trick).
pub fn row_sq_norms(m: &Matrix) -> Vec<f64> {
    m.rows_iter().map(crate::matrix::norm_sq).collect()
}

/// Mixed-precision dot product: both operands rounded to f32, widened
/// back to f64, and accumulated in f64 over ascending `k` with a single
/// accumulator — exactly the arithmetic the mixed micro-kernel performs
/// per output element, so the single-query path agrees bitwise with the
/// batched tiles.
#[inline]
pub(crate) fn dot_mixed(a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len());
    let mut acc = 0.0f64;
    for (&x, &y) in a.iter().zip(b) {
        acc += f64::from(x as f32) * f64::from(y as f32);
    }
    acc
}

/// Mixed-precision squared norm: [`dot_mixed`] of a row with itself —
/// the `‖x‖²` term every mixed norm-trick path must use so that
/// self-distances cancel to exactly zero.
#[inline]
pub(crate) fn norm_sq_mixed(a: &[f64]) -> f64 {
    dot_mixed(a, a)
}

/// [`row_sq_norms`] over the f32-rounded rows (the cached `‖x‖²` terms
/// of the mixed-precision norm trick).
pub fn row_sq_norms_mixed(m: &Matrix) -> Vec<f64> {
    m.rows_iter().map(norm_sq_mixed).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn random_matrix(rows: usize, cols: usize, seed: u64) -> Matrix {
        let mut s = seed;
        let mut next = move || {
            s = s
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (s >> 11) as f64 / (1u64 << 53) as f64 * 4.0 - 2.0
        };
        Matrix::from_vec(rows, cols, (0..rows * cols).map(|_| next()).collect()).unwrap()
    }

    fn assert_close(got: &Matrix, want: &Matrix, what: &str) {
        assert_eq!(got.shape(), want.shape(), "{what}");
        for (g, w) in got.as_slice().iter().zip(want.as_slice()) {
            let tol = 1e-9 * (1.0 + w.abs());
            assert!((g - w).abs() <= tol, "{what}: {g} vs {w}");
        }
    }

    #[test]
    fn backend_names_round_trip() {
        for b in [
            DistanceBackend::Naive,
            DistanceBackend::Blocked,
            DistanceBackend::Gemm,
        ] {
            assert_eq!(DistanceBackend::parse(b.name()).unwrap(), b);
        }
        assert!(DistanceBackend::parse("cuda").is_err());
    }

    #[test]
    fn config_crossover_governs_tree_choice() {
        let cfg = KernelConfig {
            kdtree_crossover_dim: 6,
            kdtree_min_rows: 10,
            ..KernelConfig::default()
        };
        assert!(cfg.uses_kdtree(100, 6));
        assert!(!cfg.uses_kdtree(100, 7));
        assert!(!cfg.uses_kdtree(9, 3));
    }

    #[test]
    fn matmul_packed_matches_naive() {
        // Shapes straddling panel boundaries: exact multiples of 4,
        // off-by-one, tiny, and degenerate-thin.
        for (m, k, n) in [
            (8, 8, 8),
            (7, 5, 9),
            (33, 70, 21),
            (1, 200, 1),
            (4, 1, 5),
            (13, 16, 4),
        ] {
            let a = random_matrix(m, k, (m * 100 + n) as u64);
            let b = random_matrix(k, n, (k * 7 + 3) as u64);
            let want = a.matmul(&b).unwrap();
            for threads in [1usize, 2, 4] {
                let got = matmul_packed(&a, &b, threads, None).unwrap();
                assert_close(&got, &want, &format!("({m},{k},{n}) t={threads}"));
            }
        }
    }

    #[test]
    fn matmul_packed_bit_identical_across_threads() {
        let a = random_matrix(37, 19, 1);
        let b = random_matrix(19, 23, 2);
        let base = matmul_packed(&a, &b, 1, None).unwrap();
        for threads in [2usize, 3, 8] {
            let par = matmul_packed(&a, &b, threads, None).unwrap();
            assert_eq!(par.as_slice(), base.as_slice(), "threads={threads}");
        }
    }

    #[test]
    fn gram_matches_matmul_transpose() {
        let a = random_matrix(11, 6, 5);
        let b = random_matrix(14, 6, 9);
        let want = a.matmul(&b.transpose()).unwrap();
        for threads in [1usize, 2, 4] {
            let got = gram(&a, &b, threads, None).unwrap();
            assert_close(&got, &want, &format!("gram t={threads}"));
        }
    }

    #[test]
    fn gram_diagonal_equals_scalar_dot_bitwise() {
        // One accumulator per element, ascending k: the packed kernel's
        // dot products carry the same bits as the scalar reference.
        let a = random_matrix(9, 13, 3);
        let g = gram(&a, &a, 1, None).unwrap();
        for i in 0..a.nrows() {
            assert_eq!(g.get(i, i), crate::matrix::norm_sq(a.row(i)));
            for j in 0..a.nrows() {
                assert_eq!(g.get(i, j), crate::matrix::dot(a.row(i), a.row(j)));
            }
        }
    }

    #[test]
    fn shape_errors() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 4);
        assert!(gram(&a, &b, 1, None).is_err());
        assert!(matmul_packed(&a, &b, 1, None).is_err());
        assert!(matmul_packed(&a, &Matrix::zeros(3, 4), 1, None).is_ok());
    }

    #[test]
    fn zero_width_inputs() {
        let a = Matrix::zeros(3, 0);
        let g = gram(&a, &a, 1, None).unwrap();
        assert_eq!(g.shape(), (3, 3));
        assert!(g.as_slice().iter().all(|&v| v == 0.0));
    }

    #[test]
    fn stats_count_deterministically() {
        let a = random_matrix(10, 5, 1);
        let b = random_matrix(7, 5, 2);
        let s1 = KernelStats::new();
        gram(&a, &b, 1, Some(&s1)).unwrap();
        let s4 = KernelStats::new();
        gram(&a, &b, 4, Some(&s4)).unwrap();
        // Shape-derived counters are identical at any thread count. The
        // lane counters are host-dependent (and another test toggles the
        // process-wide lane override concurrently), so only their sum —
        // one invocation per call — is asserted.
        for c in [s1.snapshot(), s4.snapshot()] {
            // ceil(10/4)=3 a-panels + ceil(7/8)=1 b-panel; 3*1 tiles.
            assert_eq!(c.packed_panels, 4);
            assert_eq!(c.gemm_tiles, 3);
            assert_eq!(c.fallback_hits, 0);
            assert_eq!(c.simd_invocations + c.scalar_invocations, 1);
            assert_eq!(c.mixed_invocations, 0);
        }
    }

    #[test]
    fn counters_since_computes_delta() {
        let s = KernelStats::new();
        let before = s.snapshot();
        s.record_gemm(8, 8, SimdLane::Avx2, Precision::Mixed);
        s.record_fallback();
        let delta = s.snapshot().since(&before);
        // ceil(8/4)=2 a-panels + ceil(8/8)=1 b-panel; 2*1 tiles.
        assert_eq!(delta.packed_panels, 3);
        assert_eq!(delta.gemm_tiles, 2);
        assert_eq!(delta.fallback_hits, 1);
        assert_eq!(delta.simd_invocations, 1);
        assert_eq!(delta.scalar_invocations, 0);
        assert_eq!(delta.mixed_invocations, 1);
    }

    #[test]
    fn lane_and_precision_names_round_trip() {
        for lane in [SimdLane::Scalar, SimdLane::Avx2] {
            assert_eq!(SimdLane::parse(lane.name()).unwrap(), lane);
        }
        assert!(SimdLane::parse("neon").is_err());
        for p in [Precision::F64, Precision::Mixed] {
            assert_eq!(Precision::parse(p.name()).unwrap(), p);
        }
        assert!(Precision::parse("f16").is_err());
    }

    #[test]
    fn lane_override_degrades_unsupported_requests() {
        // Whatever the host supports, forcing `scalar` must stick, and
        // forcing `avx2` must never exceed what the CPU offers.
        set_simd_lane_override(Some(SimdLane::Scalar));
        assert_eq!(SimdLane::detect(), SimdLane::Scalar);
        set_simd_lane_override(Some(SimdLane::Avx2));
        assert_eq!(SimdLane::detect(), SimdLane::supported());
        set_simd_lane_override(None);
        assert_eq!(SimdLane::detect(), SimdLane::supported());
    }

    /// Adversarial inputs for the lane-equivalence property tests:
    /// denormals (f64 subnormals that flush to zero in f32), extreme
    /// ±1e±6 scaling, exactly colinear rows, and duplicate rows — the
    /// inputs where reassociation or rounding differences would surface
    /// first.
    fn adversarial_matrices() -> Vec<(Matrix, Matrix)> {
        let mut cases = Vec::new();
        // Denormals and tiny magnitudes mixed with ordinary values.
        let tiny = Matrix::from_rows(&[
            vec![1e-308, 5e-324, -1e-310, 2.0],
            vec![1e-320, -5e-324, 1.0, -3.0],
            vec![0.0, 1e-300, -1e-305, 0.5],
            vec![4.9e-324, 0.0, 1e-290, -0.25],
            vec![-1e-315, 2e-312, 3e-318, 1.5],
        ])
        .unwrap();
        cases.push((tiny.clone(), tiny));
        // Extreme scaling: rows spanning ±1e±6.
        let mut scaled = random_matrix(13, 7, 42);
        for (idx, v) in scaled.as_mut_slice().iter_mut().enumerate() {
            let scale = match idx % 4 {
                0 => 1e6,
                1 => -1e6,
                2 => 1e-6,
                _ => -1e-6,
            };
            *v *= scale;
        }
        let scaled_b = random_matrix(9, 7, 43);
        cases.push((scaled, scaled_b));
        // Colinear and duplicate rows (norm-trick cancellation).
        let base = vec![0.3, -1.7, 2.2, 0.0, 5.5];
        let double: Vec<f64> = base.iter().map(|v| v * 2.0).collect();
        let neg: Vec<f64> = base.iter().map(|v| -v).collect();
        let colinear = Matrix::from_rows(&[
            base.clone(),
            base.clone(),
            double,
            neg,
            base.clone(),
            vec![1e-6, 1e6, -1e-6, -1e6, 0.0],
        ])
        .unwrap();
        cases.push((colinear.clone(), colinear));
        cases
    }

    #[test]
    fn simd_lane_matches_scalar_bitwise_in_f64_mode() {
        if SimdLane::supported() != SimdLane::Avx2 {
            eprintln!("skipping: host has no AVX2+FMA");
            return;
        }
        let mut cases = adversarial_matrices();
        cases.push((random_matrix(37, 19, 7), random_matrix(23, 19, 8)));
        for (a, b) in &cases {
            if a.ncols() != b.ncols() {
                continue;
            }
            let packed = PackedPanels::from_rows(b);
            let mut scalar = vec![0.0; a.nrows() * b.nrows()];
            let mut simd = vec![0.0; a.nrows() * b.nrows()];
            gram_rows_into(a, 0..a.nrows(), &packed, SimdLane::Scalar, &mut scalar);
            gram_rows_into(a, 0..a.nrows(), &packed, SimdLane::Avx2, &mut simd);
            assert_eq!(scalar, simd, "f64 lanes diverged");
            // And against the scalar reference dot, element by element.
            for i in 0..a.nrows() {
                for j in 0..b.nrows() {
                    assert_eq!(
                        simd[i * b.nrows() + j],
                        crate::matrix::dot(a.row(i), b.row(j)),
                        "simd gram != scalar dot at ({i},{j})"
                    );
                }
            }
        }
    }

    #[test]
    fn mixed_lanes_agree_bitwise_and_match_dot_mixed() {
        let mut cases = adversarial_matrices();
        cases.push((random_matrix(29, 11, 9), random_matrix(17, 11, 10)));
        for (a, b) in &cases {
            if a.ncols() != b.ncols() {
                continue;
            }
            let packed = PackedPanelsF32::from_rows(b);
            let mut scalar = vec![0.0; a.nrows() * b.nrows()];
            gram_rows_into_mixed(a, 0..a.nrows(), &packed, SimdLane::Scalar, &mut scalar);
            if SimdLane::supported() == SimdLane::Avx2 {
                let mut simd = vec![0.0; a.nrows() * b.nrows()];
                gram_rows_into_mixed(a, 0..a.nrows(), &packed, SimdLane::Avx2, &mut simd);
                assert_eq!(scalar, simd, "mixed lanes diverged");
            }
            // FMA-exactness argument checked in practice: the tile value
            // must equal the scalar mixed dot bit for bit.
            for i in 0..a.nrows() {
                for j in 0..b.nrows() {
                    assert_eq!(
                        scalar[i * b.nrows() + j],
                        dot_mixed(a.row(i), b.row(j)),
                        "mixed gram != dot_mixed at ({i},{j})"
                    );
                }
            }
        }
    }

    #[test]
    fn mixed_distances_stay_within_documented_bound() {
        let mut cases = adversarial_matrices();
        cases.push((random_matrix(41, 13, 11), random_matrix(19, 13, 12)));
        for (a, b) in &cases {
            if a.ncols() != b.ncols() {
                continue;
            }
            let na = row_sq_norms_mixed(a);
            let nb = row_sq_norms_mixed(b);
            let packed = PackedPanelsF32::from_rows(b);
            let mut dist = vec![0.0; a.nrows() * b.nrows()];
            gram_rows_dist_into_mixed(
                a,
                0..a.nrows(),
                &packed,
                SimdLane::detect(),
                &na,
                &nb,
                &mut dist,
            );
            for i in 0..a.nrows() {
                for j in 0..b.nrows() {
                    let exact =
                        crate::distance::DistanceMetric::Euclidean.distance(a.row(i), b.row(j));
                    let bound = mixed_distance_error_bound(
                        crate::matrix::norm_sq(a.row(i)).sqrt(),
                        crate::matrix::norm_sq(b.row(j)).sqrt(),
                    );
                    let got = dist[i * b.nrows() + j];
                    assert!(
                        (got - exact).abs() <= bound,
                        "mixed distance {got} vs exact {exact} exceeds bound {bound} at ({i},{j})"
                    );
                }
            }
        }
    }

    #[test]
    fn mixed_self_distance_is_exactly_zero() {
        let (a, _) = adversarial_matrices().remove(2);
        let na = row_sq_norms_mixed(&a);
        let packed = PackedPanelsF32::from_rows(&a);
        let mut dist = vec![0.0; a.nrows() * a.nrows()];
        gram_rows_dist_into_mixed(
            &a,
            0..a.nrows(),
            &packed,
            SimdLane::detect(),
            &na,
            &na,
            &mut dist,
        );
        for i in 0..a.nrows() {
            assert_eq!(dist[i * a.nrows() + i], 0.0, "self-distance at row {i}");
        }
        // Duplicate rows (0, 1, 4 are identical) must also be exactly 0.
        assert_eq!(dist[1], 0.0);
        assert_eq!(dist[4], 0.0);
    }
}
