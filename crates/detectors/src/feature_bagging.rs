//! Feature Bagging meta-ensemble (Lazarevic & Kumar 2005).
//!
//! Trains `n_estimators` base detectors (LOF, as in the original paper and
//! PyOD's default), each on a random feature subset of size between
//! `d/2` and `d`, and combines their standardized scores by averaging.
//! Feature Bagging is itself one of the "costly" families SUOD
//! approximates (it multiplies LOF's cost by the ensemble size).

use crate::lof::LofDetector;
use crate::{Detector, Error, Result};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use suod_linalg::stats::zscore_in_place;
use suod_linalg::Matrix;

/// Feature Bagging detector over LOF base estimators.
///
/// # Example
///
/// ```
/// use suod_detectors::{Detector, FeatureBagging};
/// use suod_linalg::Matrix;
///
/// # fn main() -> Result<(), suod_detectors::Error> {
/// let mut rows: Vec<Vec<f64>> = (0..30)
///     .map(|i| vec![(i % 6) as f64 * 0.1, (i / 6) as f64 * 0.1, 0.0])
///     .collect();
/// rows.push(vec![5.0, 5.0, 5.0]);
/// let x = Matrix::from_rows(&rows).unwrap();
/// let mut det = FeatureBagging::new(10, 5, 42)?;
/// det.fit(&x)?;
/// let s = det.training_scores()?;
/// assert_eq!(suod_linalg::rank::argsort_desc(&s)[0], 30);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct FeatureBagging {
    n_estimators: usize,
    base_k: usize,
    seed: u64,
    members: Vec<(Vec<usize>, LofDetector)>,
    train_scores: Vec<f64>,
}

impl FeatureBagging {
    /// Creates a feature-bagging ensemble of `n_estimators` LOF detectors
    /// with `base_k` neighbours each.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidParameter`] when either count is zero.
    pub fn new(n_estimators: usize, base_k: usize, seed: u64) -> Result<Self> {
        if n_estimators == 0 {
            return Err(Error::InvalidParameter("n_estimators must be >= 1".into()));
        }
        if base_k == 0 {
            return Err(Error::InvalidParameter("base_k must be >= 1".into()));
        }
        Ok(Self {
            n_estimators,
            base_k,
            seed,
            members: Vec::new(),
            train_scores: Vec::new(),
        })
    }

    /// Ensemble size.
    pub fn n_estimators(&self) -> usize {
        self.n_estimators
    }

    fn combine(score_columns: Vec<Vec<f64>>) -> Vec<f64> {
        let n = score_columns[0].len();
        let mut acc = vec![0.0; n];
        let m = score_columns.len() as f64;
        for mut col in score_columns {
            zscore_in_place(&mut col);
            for (a, v) in acc.iter_mut().zip(col) {
                *a += v / m;
            }
        }
        acc
    }
}

impl Detector for FeatureBagging {
    fn fit(&mut self, x: &Matrix) -> Result<()> {
        let n = x.nrows();
        let d = x.ncols();
        if n < 3 {
            return Err(Error::InsufficientData {
                needed: "at least 3 samples".into(),
                got: n,
            });
        }
        let mut rng = StdRng::seed_from_u64(self.seed);
        let mut members = Vec::with_capacity(self.n_estimators);
        let mut columns = Vec::with_capacity(self.n_estimators);
        for _ in 0..self.n_estimators {
            // Subset size uniform in [ceil(d/2), d] (the original paper's rule).
            let lo = d.div_ceil(2).max(1);
            let size = rng.random_range(lo..=d);
            let mut pool: Vec<usize> = (0..d).collect();
            for i in 0..size {
                let j = rng.random_range(i..d);
                pool.swap(i, j);
            }
            pool.truncate(size);
            pool.sort_unstable();

            let sub = x.select_cols(&pool);
            let mut base = LofDetector::new(self.base_k)?;
            base.fit(&sub)?;
            columns.push(base.training_scores()?);
            members.push((pool, base));
        }
        self.train_scores = Self::combine(columns);
        self.members = members;
        Ok(())
    }

    fn decision_function(&self, x: &Matrix) -> Result<Vec<f64>> {
        if self.members.is_empty() {
            return Err(Error::NotFitted("FeatureBagging"));
        }
        let d = self
            .members
            .iter()
            .flat_map(|(f, _)| f.iter().copied())
            .max()
            .expect("non-empty members")
            + 1;
        // The true fitted dimensionality is at least the max used index;
        // enforce exact width via the widest member when all features used.
        check_dims_at_least(d, x)?;
        let columns: Result<Vec<Vec<f64>>> = self
            .members
            .iter()
            .map(|(features, base)| base.decision_function(&x.select_cols(features)))
            .collect();
        Ok(Self::combine(columns?))
    }

    fn training_scores(&self) -> Result<Vec<f64>> {
        if self.members.is_empty() {
            return Err(Error::NotFitted("FeatureBagging"));
        }
        Ok(self.train_scores.clone())
    }

    fn name(&self) -> &'static str {
        "feature_bagging"
    }

    fn is_fitted(&self) -> bool {
        !self.members.is_empty()
    }

    fn snapshot_write(&self, w: &mut suod_linalg::SnapshotWriter) -> Result<()> {
        w.write_usize(self.n_estimators);
        w.write_usize(self.base_k);
        w.write_u64(self.seed);
        w.write_usize(self.members.len());
        for (features, base) in &self.members {
            w.write_usizes(features);
            base.snapshot_write(w)?;
        }
        w.write_f64s(&self.train_scores);
        Ok(())
    }
}

impl FeatureBagging {
    /// Reads a detector written by [`Detector::snapshot_write`].
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidParameter`] on truncated or malformed state.
    pub fn snapshot_read(
        r: &mut suod_linalg::SnapshotReader<'_>,
        n_threads: usize,
    ) -> Result<Self> {
        let n_estimators = r.read_usize()?;
        let base_k = r.read_usize()?;
        let seed = r.read_u64()?;
        let count = r.read_usize()?;
        let mut members = Vec::new();
        for _ in 0..count {
            let features = r.read_usizes()?;
            let base = LofDetector::snapshot_read(r, n_threads)?;
            members.push((features, base));
        }
        Ok(Self {
            n_estimators,
            base_k,
            seed,
            members,
            train_scores: r.read_f64s()?,
        })
    }
}

fn check_dims_at_least(min_cols: usize, x: &Matrix) -> Result<()> {
    if x.ncols() < min_cols {
        return Err(Error::DimensionMismatch {
            expected: min_cols,
            actual: x.ncols(),
        });
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grid_with_outlier() -> Matrix {
        let mut rows: Vec<Vec<f64>> = (0..36)
            .map(|i| vec![(i % 6) as f64 * 0.1, (i / 6) as f64 * 0.1, 1.0])
            .collect();
        rows.push(vec![4.0, 4.0, -3.0]);
        Matrix::from_rows(&rows).unwrap()
    }

    #[test]
    fn detects_outlier() {
        let mut det = FeatureBagging::new(8, 5, 0).unwrap();
        det.fit(&grid_with_outlier()).unwrap();
        let s = det.training_scores().unwrap();
        assert_eq!(suod_linalg::rank::argsort_desc(&s)[0], 36);
    }

    #[test]
    fn deterministic_per_seed() {
        let x = grid_with_outlier();
        let mut a = FeatureBagging::new(5, 4, 3).unwrap();
        let mut b = FeatureBagging::new(5, 4, 3).unwrap();
        a.fit(&x).unwrap();
        b.fit(&x).unwrap();
        assert_eq!(a.training_scores().unwrap(), b.training_scores().unwrap());
        let mut c = FeatureBagging::new(5, 4, 4).unwrap();
        c.fit(&x).unwrap();
        assert_ne!(a.training_scores().unwrap(), c.training_scores().unwrap());
    }

    #[test]
    fn decision_function_on_new_points() {
        let mut det = FeatureBagging::new(6, 5, 1).unwrap();
        det.fit(&grid_with_outlier()).unwrap();
        let q = Matrix::from_rows(&[vec![0.25, 0.25, 1.0], vec![10.0, -10.0, 10.0]]).unwrap();
        let s = det.decision_function(&q).unwrap();
        assert!(s[1] > s[0]);
    }

    #[test]
    fn members_use_distinct_subsets() {
        let mut det = FeatureBagging::new(12, 4, 2).unwrap();
        det.fit(&grid_with_outlier()).unwrap();
        let distinct: std::collections::HashSet<Vec<usize>> =
            det.members.iter().map(|(f, _)| f.clone()).collect();
        assert!(distinct.len() > 1, "all members saw identical features");
        // Every subset has at least ceil(d/2) = 2 features.
        assert!(det.members.iter().all(|(f, _)| f.len() >= 2));
    }

    #[test]
    fn validates_inputs() {
        assert!(FeatureBagging::new(0, 5, 0).is_err());
        assert!(FeatureBagging::new(5, 0, 0).is_err());
        let mut det = FeatureBagging::new(3, 2, 0).unwrap();
        assert!(det.fit(&Matrix::zeros(2, 3)).is_err());
        assert!(det.decision_function(&Matrix::zeros(1, 3)).is_err());
        det.fit(&grid_with_outlier()).unwrap();
        assert!(det.decision_function(&Matrix::zeros(1, 1)).is_err());
    }

    #[test]
    fn single_feature_dataset_works() {
        let mut rows: Vec<Vec<f64>> = (0..20).map(|i| vec![(i % 5) as f64]).collect();
        rows.push(vec![50.0]);
        let x = Matrix::from_rows(&rows).unwrap();
        let mut det = FeatureBagging::new(4, 3, 0).unwrap();
        det.fit(&x).unwrap();
        let s = det.training_scores().unwrap();
        assert_eq!(suod_linalg::rank::argsort_desc(&s)[0], 20);
    }
}
