//! PCA projection baseline (paper §2.2 / Table 1).
//!
//! Projects onto the top-`k` eigenvectors of the training covariance.
//! The paper argues PCA is *not* suited to heterogeneous OD ensembles:
//! being deterministic, every base model would see the same subspace, so
//! diversity is lost — and Table 1 indeed shows PCA trailing the JL
//! variants on accuracy. It is implemented here as the comparison point.

use crate::{check_target_dim, Error, Projector, Result};
use suod_linalg::{symmetric_eigen, Matrix};

/// PCA projector to the top-`k` principal components.
///
/// # Example
///
/// ```
/// use suod_linalg::Matrix;
/// use suod_projection::{PcaProjector, Projector};
///
/// # fn main() -> Result<(), suod_projection::Error> {
/// // Data varies along (1, 1) only; one component captures it.
/// let x = Matrix::from_rows(&[
///     vec![0.0, 0.0], vec![1.0, 1.0], vec![2.0, 2.0], vec![3.0, 3.0],
/// ]).unwrap();
/// let mut pca = PcaProjector::new(1)?;
/// pca.fit(&x)?;
/// let z = pca.transform(&x)?;
/// assert_eq!(z.shape(), (4, 1));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct PcaProjector {
    k: usize,
    /// Column means subtracted before projection.
    means: Vec<f64>,
    /// `d x k` matrix of leading eigenvectors.
    components: Option<Matrix>,
    /// Explained variance per retained component.
    explained_variance: Vec<f64>,
}

impl PcaProjector {
    /// Creates a PCA projector retaining `k` components.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidParameter`] when `k == 0`.
    pub fn new(k: usize) -> Result<Self> {
        if k == 0 {
            return Err(Error::InvalidParameter(
                "target dimension must be >= 1".into(),
            ));
        }
        Ok(Self {
            k,
            means: Vec::new(),
            components: None,
            explained_variance: Vec::new(),
        })
    }

    /// Eigenvalues (variances) of the retained components, descending.
    ///
    /// # Errors
    ///
    /// Returns [`Error::NotFitted`] before `fit`.
    pub fn explained_variance(&self) -> Result<&[f64]> {
        if self.components.is_none() {
            return Err(Error::NotFitted("PcaProjector"));
        }
        Ok(&self.explained_variance)
    }
}

impl Projector for PcaProjector {
    fn fit(&mut self, x: &Matrix) -> Result<()> {
        let (n, d) = x.shape();
        check_target_dim(self.k, d)?;
        if n < 2 {
            return Err(Error::InvalidParameter(
                "PCA requires at least 2 samples".into(),
            ));
        }
        self.means = suod_linalg::stats::column_means(x);

        // Covariance matrix (d x d).
        let mut cov = Matrix::zeros(d, d);
        for r in 0..n {
            let row = x.row(r);
            for i in 0..d {
                let xi = row[i] - self.means[i];
                for j in i..d {
                    let xj = row[j] - self.means[j];
                    cov.set(i, j, cov.get(i, j) + xi * xj);
                }
            }
        }
        let denom = (n - 1) as f64;
        for i in 0..d {
            for j in i..d {
                let v = cov.get(i, j) / denom;
                cov.set(i, j, v);
                cov.set(j, i, v);
            }
        }

        let eig = symmetric_eigen(&cov)?;
        let cols: Vec<usize> = (0..self.k).collect();
        self.components = Some(eig.vectors.select_cols(&cols));
        self.explained_variance = eig.values[..self.k].to_vec();
        Ok(())
    }

    fn transform(&self, x: &Matrix) -> Result<Matrix> {
        let comp = self
            .components
            .as_ref()
            .ok_or(Error::NotFitted("PcaProjector"))?;
        if x.ncols() != comp.nrows() {
            return Err(Error::DimensionMismatch {
                expected: comp.nrows(),
                actual: x.ncols(),
            });
        }
        // Center then project.
        let mut centered = x.clone();
        for r in 0..centered.nrows() {
            let row = centered.row_mut(r);
            for (v, &m) in row.iter_mut().zip(&self.means) {
                *v -= m;
            }
        }
        Ok(centered.matmul(comp)?)
    }

    fn output_dim(&self) -> usize {
        self.k
    }

    fn name(&self) -> &'static str {
        "pca"
    }

    fn snapshot_write(&self, w: &mut suod_linalg::SnapshotWriter) -> Result<()> {
        w.write_usize(self.k);
        w.write_f64s(&self.means);
        match &self.components {
            Some(c) => {
                w.write_bool(true);
                w.write_matrix(c);
            }
            None => w.write_bool(false),
        }
        w.write_f64s(&self.explained_variance);
        Ok(())
    }
}

impl PcaProjector {
    /// Reads a projector written by [`Projector::snapshot_write`].
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidParameter`] on truncated or malformed state.
    pub fn snapshot_read(r: &mut suod_linalg::SnapshotReader<'_>) -> Result<Self> {
        let k = r.read_usize()?;
        let means = r.read_f64s()?;
        let components = if r.read_bool()? {
            Some(r.read_matrix()?)
        } else {
            None
        };
        Ok(Self {
            k,
            means,
            components,
            explained_variance: r.read_f64s()?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn captures_dominant_direction() {
        // Strong variance along (1, 1), tiny along (1, -1).
        let rows: Vec<Vec<f64>> = (0..20)
            .map(|i| {
                let t = i as f64;
                vec![t + 0.01 * (i % 3) as f64, t - 0.01 * (i % 3) as f64]
            })
            .collect();
        let x = Matrix::from_rows(&rows).unwrap();
        let mut pca = PcaProjector::new(2).unwrap();
        pca.fit(&x).unwrap();
        let var = pca.explained_variance().unwrap();
        assert!(var[0] > 100.0 * var[1].max(1e-12));
        // First component aligned with (1,1)/sqrt(2) up to sign.
        let c = pca.components.as_ref().unwrap();
        assert!((c.get(0, 0).abs() - std::f64::consts::FRAC_1_SQRT_2).abs() < 0.05);
        assert!((c.get(0, 0) - c.get(1, 0)).abs() < 0.1);
    }

    #[test]
    fn transform_centers_data() {
        let x = Matrix::from_rows(&[vec![10.0, 0.0], vec![12.0, 0.0], vec![14.0, 0.0]]).unwrap();
        let mut pca = PcaProjector::new(1).unwrap();
        pca.fit(&x).unwrap();
        let z = pca.transform(&x).unwrap();
        // Projected training data has zero mean.
        assert!(suod_linalg::stats::mean(&z.col(0)).abs() < 1e-9);
    }

    #[test]
    fn projection_preserves_variance_total() {
        // Full-rank PCA preserves total variance.
        let rows: Vec<Vec<f64>> = (0..15)
            .map(|i| vec![(i % 4) as f64, (i % 3) as f64 * 2.0, (i % 5) as f64 * 0.5])
            .collect();
        let x = Matrix::from_rows(&rows).unwrap();
        let mut pca = PcaProjector::new(3).unwrap();
        pca.fit(&x).unwrap();
        let z = pca.transform(&x).unwrap();
        let total_in: f64 = (0..3)
            .map(|c| suod_linalg::stats::variance(&x.col(c)))
            .sum();
        let total_out: f64 = (0..3)
            .map(|c| suod_linalg::stats::variance(&z.col(c)))
            .sum();
        assert!((total_in - total_out).abs() < 1e-9 * total_in.max(1.0));
    }

    #[test]
    fn deterministic() {
        let rows: Vec<Vec<f64>> = (0..10).map(|i| vec![i as f64, (i * i) as f64]).collect();
        let x = Matrix::from_rows(&rows).unwrap();
        let mut a = PcaProjector::new(1).unwrap();
        let mut b = PcaProjector::new(1).unwrap();
        a.fit(&x).unwrap();
        b.fit(&x).unwrap();
        assert_eq!(a.transform(&x).unwrap(), b.transform(&x).unwrap());
    }

    #[test]
    fn validates_inputs() {
        assert!(PcaProjector::new(0).is_err());
        let mut p = PcaProjector::new(5).unwrap();
        assert!(p.fit(&Matrix::zeros(10, 3)).is_err()); // k > d
        let mut p2 = PcaProjector::new(2).unwrap();
        assert!(p2.fit(&Matrix::zeros(1, 3)).is_err()); // n < 2
        let p3 = PcaProjector::new(1).unwrap();
        assert!(p3.transform(&Matrix::zeros(1, 3)).is_err()); // not fitted
        let mut p4 = PcaProjector::new(1).unwrap();
        p4.fit(&Matrix::from_rows(&[vec![0.0, 1.0], vec![1.0, 0.0]]).unwrap())
            .unwrap();
        assert!(p4.transform(&Matrix::zeros(1, 3)).is_err());
    }
}
