//! Neighbor-cache transparency: sharing one neighbour graph across the
//! pool must never change a number.
//!
//! `Suod::fit` groups proximity detectors by feature space and metric,
//! builds each group's KD-tree and leave-one-out sweep once at the pooled
//! maximum k, and serves every member a sorted-prefix view. Because
//! neighbour lists are totally ordered by `(distance, index)` and both
//! sweep paths truncate the same order, the prefix is *exactly* what a
//! standalone sweep would produce — so score matrices must be
//! **bit-identical** with the cache on or off, at any worker count, with
//! and without projection in the mix.

use suod::prelude::*;
use suod_datasets::registry;
use suod_linalg::Matrix;

/// A proximity-heavy pool spanning every cached family (kNN variants,
/// LOF with two metrics, LoOP, COF, ABOD) plus uncached bystanders.
fn proximity_pool() -> Vec<ModelSpec> {
    vec![
        ModelSpec::Knn {
            n_neighbors: 3,
            method: KnnMethod::Largest,
        },
        ModelSpec::Knn {
            n_neighbors: 12,
            method: KnnMethod::Mean,
        },
        ModelSpec::Knn {
            n_neighbors: 7,
            method: KnnMethod::Median,
        },
        ModelSpec::Lof {
            n_neighbors: 9,
            metric: Metric::Euclidean,
        },
        ModelSpec::Lof {
            n_neighbors: 5,
            metric: Metric::Manhattan,
        },
        ModelSpec::Loop { n_neighbors: 6 },
        ModelSpec::Cof { n_neighbors: 4 },
        ModelSpec::Abod { n_neighbors: 8 },
        ModelSpec::Hbos {
            n_bins: 10,
            tolerance: 0.3,
        },
        ModelSpec::IForest {
            n_estimators: 12,
            max_features: 0.8,
        },
    ]
}

fn fit_and_score(
    cache_on: bool,
    n_workers: usize,
    projection: bool,
    x: &Matrix,
    queries: &Matrix,
) -> (Matrix, Matrix, u64, u64) {
    let mut model = Suod::builder()
        .base_estimators(proximity_pool())
        .with_neighbor_cache(cache_on)
        .with_projection(projection)
        .with_approximation(false)
        .n_workers(n_workers)
        .seed(7)
        .build()
        .expect("valid config");
    model.fit(x).expect("fit succeeds");
    let report = model
        .diagnostics()
        .expect("fit emits telemetry")
        .execution();
    let (hits, misses) = (report.cache_hits, report.cache_misses);
    let train_scores = model.training_scores().expect("fitted");
    let query_scores = model.decision_function(queries).expect("fitted");
    (train_scores, query_scores, hits, misses)
}

#[test]
fn scores_bit_identical_cache_on_vs_off_at_any_thread_count() {
    let ds = registry::load_scaled("cardio", 17, 0.3).expect("registry dataset");
    let mut shifted = ds.x.clone();
    for v in shifted.as_mut_slice() {
        *v += 0.25;
    }
    let queries = ds.x.vstack(&shifted).expect("same width");

    let (train_off, query_off, hits_off, misses_off) =
        fit_and_score(false, 1, false, &ds.x, &queries);
    assert_eq!((hits_off, misses_off), (0, 0), "cache off must not count");

    for workers in [1usize, 2, 8] {
        let (train_on, query_on, hits, misses) =
            fit_and_score(true, workers, false, &ds.x, &queries);
        assert_eq!(
            train_off.as_slice(),
            train_on.as_slice(),
            "training scores differ cache-on at n_workers={workers}"
        );
        assert_eq!(
            query_off.as_slice(),
            query_on.as_slice(),
            "prediction scores differ cache-on at n_workers={workers}"
        );
        // Unprojected: all 8 proximity models share one space. Euclidean
        // group (7 members) builds once; Manhattan LOF builds its own.
        assert_eq!(misses, 2, "expected two graph builds, got {misses}");
        assert_eq!(hits, 6, "expected six cache hits, got {hits}");
    }
}

#[test]
fn projection_keeps_cache_transparent() {
    // With RP on, every projection-friendly model gets its own seeded
    // subspace (distinct cache groups of size one); the cache must stay a
    // pure pass-through numerically.
    let ds = registry::load_scaled("cardio", 19, 0.25).expect("registry dataset");
    let (train_off, query_off, _, _) = fit_and_score(false, 4, true, &ds.x, &ds.x);
    let (train_on, query_on, hits, misses) = fit_and_score(true, 4, true, &ds.x, &ds.x);
    assert_eq!(train_off.as_slice(), train_on.as_slice());
    assert_eq!(query_off.as_slice(), query_on.as_slice());
    // Every proximity model still goes through the cache exactly once.
    assert_eq!(hits + misses, 8);
}
