//! Criterion micro-benchmarks: projection construction + transform cost.
//!
//! The structured JL variants (circulant/toeplitz) draw O(d) random
//! values versus O(kd) for basic/discrete — this bench shows the fit-side
//! gap, plus PCA's eigendecomposition overhead.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use suod_datasets::synthetic::{generate, SyntheticConfig};
use suod_linalg::Matrix;
use suod_projection::{JlProjector, JlVariant, PcaProjector, Projector, RandomSelectProjector};

fn dataset() -> Matrix {
    generate(&SyntheticConfig {
        n_samples: 500,
        n_features: 60,
        contamination: 0.1,
        seed: 9,
        ..Default::default()
    })
    .expect("valid config")
    .x
}

fn bench_fit_transform(c: &mut Criterion) {
    let x = dataset();
    let k = 40;
    let mut group = c.benchmark_group("projection_fit_transform_500x60_k40");
    group.sample_size(10);

    for variant in JlVariant::all() {
        let name = match variant {
            JlVariant::Basic => "jl_basic",
            JlVariant::Discrete => "jl_discrete",
            JlVariant::Circulant => "jl_circulant",
            JlVariant::Toeplitz => "jl_toeplitz",
        };
        group.bench_function(name, |b| {
            b.iter(|| {
                let mut p = JlProjector::new(variant, k, 3).expect("k >= 1");
                p.fit(black_box(&x)).expect("fit");
                p.transform(black_box(&x)).expect("transform")
            })
        });
    }
    group.bench_function("pca", |b| {
        b.iter(|| {
            let mut p = PcaProjector::new(k).expect("k >= 1");
            p.fit(black_box(&x)).expect("fit");
            p.transform(black_box(&x)).expect("transform")
        })
    });
    group.bench_function("random_select", |b| {
        b.iter(|| {
            let mut p = RandomSelectProjector::new(k, 3).expect("k >= 1");
            p.fit(black_box(&x)).expect("fit");
            p.transform(black_box(&x)).expect("transform")
        })
    });
    group.finish();
}

criterion_group!(benches, bench_fit_transform);
criterion_main!(benches);
