//! Design-choice ablation: the random-projection target dimension.
//!
//! The paper fixes `k = (2/3) d` for Table 1 and warns that the JL bound
//! stops holding when `k` is pushed too low. This sweep fits a costly
//! detector (kNN) under JL-circulant projections at several `k/d`
//! fractions and reports fit time and ROC, locating the accuracy/time
//! knee.
//!
//! Flags: `--quick`, `--paper-scale`.

use std::time::Instant;
use suod::prelude::*;
use suod_bench::{mean, CsvSink, Scale};
use suod_datasets::registry;
use suod_metrics::roc_auc;
use suod_projection::{JlProjector, Projector};

const FRACTIONS: &[f64] = &[0.17, 0.33, 0.5, 0.67, 0.83, 1.0];

fn main() {
    let scale = Scale::from_args();
    let data_scale = scale.pick(0.05, 0.25, 1.0);
    let n_trials = scale.pick(1usize, 3, 10);
    let mut csv = CsvSink::create("projection_dim_sweep", "dataset,fraction,k,time_s,roc");

    println!("Projection target-dimension sweep (JL circulant, kNN detector, {n_trials} trials)");
    for ds_name in ["mnist", "musk"] {
        let ds = registry::load_scaled(ds_name, 29, data_scale).expect("registry dataset");
        let d = ds.n_features();
        println!("\n== {ds_name} (n = {}, d = {d}) ==", ds.n_samples());
        println!("{:<9} {:>4} {:>9} {:>7}", "k/d", "k", "time(s)", "ROC");
        for &fraction in FRACTIONS {
            let k = ((d as f64 * fraction).round() as usize).clamp(1, d);
            let mut times = Vec::new();
            let mut rocs = Vec::new();
            for trial in 0..n_trials {
                let seed = 100 * trial as u64 + 3;
                let z = if k == d {
                    ds.x.clone()
                } else {
                    let mut proj = JlProjector::new(JlVariant::Circulant, k, seed).expect("k >= 1");
                    proj.fit(&ds.x).expect("projector fit");
                    proj.transform(&ds.x).expect("projector transform")
                };
                let mut det = ModelSpec::Knn {
                    n_neighbors: 15,
                    method: KnnMethod::Largest,
                }
                .build(seed)
                .expect("valid spec");
                let start = Instant::now();
                det.fit(&z).expect("detector fit");
                times.push(start.elapsed().as_secs_f64());
                let scores = det.training_scores().expect("fitted");
                rocs.push(roc_auc(&ds.y, &scores).expect("both classes"));
            }
            let (t, r) = (mean(&times), mean(&rocs));
            println!("{fraction:<9.2} {k:>4} {t:>9.3} {r:>7.3}");
            csv.row(&format!("{ds_name},{fraction},{k},{t:.6},{r:.4}"));
        }
    }
    println!("\nwrote {}", csv.path().display());
    println!("(fit time scales ~linearly with k; accuracy should hold down to");
    println!(" moderate k and fall off when the JL distortion grows.)");
}
