//! Ridge (L2-regularized least squares) regression.
//!
//! A cheap linear approximator used in the PSA ablation benches as a
//! contrast to the paper's recommended tree ensembles: it shows where a
//! linear decision boundary is too coarse to distill a proximity-based
//! detector. Solves `(X^T X + lambda I) w = X^T y` (with an unpenalized
//! intercept) by Gaussian elimination with partial pivoting.

use crate::{check_fit_inputs, Error, Regressor, Result};
use suod_linalg::Matrix;

/// Ridge regressor with intercept.
///
/// # Example
///
/// ```
/// use suod_linalg::Matrix;
/// use suod_supervised::{Regressor, Ridge};
///
/// # fn main() -> Result<(), suod_supervised::Error> {
/// let x = Matrix::from_rows(&[vec![0.0], vec![1.0], vec![2.0]]).unwrap();
/// let y = [1.0, 3.0, 5.0]; // y = 2x + 1
/// let mut model = Ridge::new(1e-6)?;
/// model.fit(&x, &y)?;
/// let p = model.predict(&Matrix::from_rows(&[vec![3.0]]).unwrap())?;
/// assert!((p[0] - 7.0).abs() < 1e-3);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct Ridge {
    lambda: f64,
    weights: Vec<f64>,
    intercept: f64,
    fitted: bool,
}

impl Ridge {
    /// Creates a ridge regressor with regularization strength `lambda`.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidParameter`] when `lambda < 0` or non-finite.
    pub fn new(lambda: f64) -> Result<Self> {
        if !(lambda.is_finite() && lambda >= 0.0) {
            return Err(Error::InvalidParameter(format!(
                "lambda must be a finite non-negative number, got {lambda}"
            )));
        }
        Ok(Self {
            lambda,
            weights: Vec::new(),
            intercept: 0.0,
            fitted: false,
        })
    }

    /// Fitted coefficients (one per feature).
    ///
    /// # Errors
    ///
    /// Returns [`Error::NotFitted`] before `fit`.
    pub fn coefficients(&self) -> Result<&[f64]> {
        if !self.fitted {
            return Err(Error::NotFitted("Ridge"));
        }
        Ok(&self.weights)
    }

    /// Fitted intercept.
    ///
    /// # Errors
    ///
    /// Returns [`Error::NotFitted`] before `fit`.
    pub fn intercept(&self) -> Result<f64> {
        if !self.fitted {
            return Err(Error::NotFitted("Ridge"));
        }
        Ok(self.intercept)
    }
}

impl Regressor for Ridge {
    fn fit(&mut self, x: &Matrix, y: &[f64]) -> Result<()> {
        check_fit_inputs(x, y)?;
        let n = x.nrows();
        let d = x.ncols();

        // Center features and target so the intercept is unpenalized.
        let x_means = suod_linalg::stats::column_means(x);
        let y_mean = suod_linalg::stats::mean(y);

        // Normal equations on centered data: A = Xc^T Xc + lambda I.
        let mut a = vec![vec![0.0; d]; d];
        let mut b = vec![0.0; d];
        for r in 0..n {
            let row = x.row(r);
            let yr = y[r] - y_mean;
            for i in 0..d {
                let xi = row[i] - x_means[i];
                b[i] += xi * yr;
                for j in i..d {
                    a[i][j] += xi * (row[j] - x_means[j]);
                }
            }
        }
        for i in 0..d {
            for j in 0..i {
                a[i][j] = a[j][i];
            }
            a[i][i] += self.lambda.max(1e-12);
        }

        let w = solve(&mut a, &mut b)?;
        self.intercept = y_mean - w.iter().zip(&x_means).map(|(&wi, &m)| wi * m).sum::<f64>();
        self.weights = w;
        self.fitted = true;
        Ok(())
    }

    fn predict(&self, x: &Matrix) -> Result<Vec<f64>> {
        if !self.fitted {
            return Err(Error::NotFitted("Ridge"));
        }
        if x.ncols() != self.weights.len() {
            return Err(Error::InvalidParameter(format!(
                "expected {} features, got {}",
                self.weights.len(),
                x.ncols()
            )));
        }
        Ok(x.rows_iter()
            .map(|row| {
                self.intercept
                    + row
                        .iter()
                        .zip(&self.weights)
                        .map(|(&v, &w)| v * w)
                        .sum::<f64>()
            })
            .collect())
    }

    fn name(&self) -> &'static str {
        "ridge"
    }

    fn snapshot_write(&self, w: &mut suod_linalg::SnapshotWriter) -> Result<()> {
        w.write_f64(self.lambda);
        w.write_f64s(&self.weights);
        w.write_f64(self.intercept);
        w.write_bool(self.fitted);
        Ok(())
    }
}

impl Ridge {
    /// Reads a model written by [`Regressor::snapshot_write`].
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidParameter`] on truncated or malformed state.
    pub fn snapshot_read(r: &mut suod_linalg::SnapshotReader<'_>) -> Result<Self> {
        Ok(Self {
            lambda: r.read_f64()?,
            weights: r.read_f64s()?,
            intercept: r.read_f64()?,
            fitted: r.read_bool()?,
        })
    }
}

/// Solves `A w = b` in place by Gaussian elimination with partial pivoting.
fn solve(a: &mut [Vec<f64>], b: &mut [f64]) -> Result<Vec<f64>> {
    let n = b.len();
    for col in 0..n {
        // Pivot.
        let pivot = (col..n)
            .max_by(|&i, &j| {
                a[i][col]
                    .abs()
                    .partial_cmp(&a[j][col].abs())
                    .expect("finite")
            })
            .expect("non-empty range");
        if a[pivot][col].abs() < 1e-300 {
            return Err(Error::InvalidParameter(
                "singular system in ridge solve (increase lambda)".into(),
            ));
        }
        a.swap(col, pivot);
        b.swap(col, pivot);
        // Eliminate.
        for row in (col + 1)..n {
            let factor = a[row][col] / a[col][col];
            if factor == 0.0 {
                continue;
            }
            for k in col..n {
                a[row][k] -= factor * a[col][k];
            }
            b[row] -= factor * b[col];
        }
    }
    // Back substitution.
    let mut w = vec![0.0; n];
    for row in (0..n).rev() {
        let mut acc = b[row];
        for k in (row + 1)..n {
            acc -= a[row][k] * w[k];
        }
        w[row] = acc / a[row][row];
    }
    Ok(w)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn recovers_exact_linear_model() {
        // y = 2 x0 - x1 + 3
        let rows: Vec<Vec<f64>> = (0..20)
            .map(|i| vec![i as f64, (i * i % 7) as f64])
            .collect();
        let x = Matrix::from_rows(&rows).unwrap();
        let y: Vec<f64> = rows.iter().map(|r| 2.0 * r[0] - r[1] + 3.0).collect();
        let mut m = Ridge::new(1e-8).unwrap();
        m.fit(&x, &y).unwrap();
        let c = m.coefficients().unwrap();
        assert!((c[0] - 2.0).abs() < 1e-6);
        assert!((c[1] + 1.0).abs() < 1e-6);
        assert!((m.intercept().unwrap() - 3.0).abs() < 1e-5);
    }

    #[test]
    fn heavy_regularization_shrinks_weights() {
        let x = Matrix::from_rows(&[vec![0.0], vec![1.0], vec![2.0], vec![3.0]]).unwrap();
        let y = [0.0, 2.0, 4.0, 6.0];
        let mut light = Ridge::new(1e-8).unwrap();
        let mut heavy = Ridge::new(1e4).unwrap();
        light.fit(&x, &y).unwrap();
        heavy.fit(&x, &y).unwrap();
        assert!(heavy.coefficients().unwrap()[0].abs() < light.coefficients().unwrap()[0].abs());
        // Heavy ridge predicts near the mean.
        let p = heavy.predict(&x).unwrap();
        assert!(p.iter().all(|&v| (v - 3.0).abs() < 0.5));
    }

    #[test]
    fn collinear_features_survive_with_lambda() {
        // x1 == x0: singular without regularization.
        let rows: Vec<Vec<f64>> = (0..10).map(|i| vec![i as f64, i as f64]).collect();
        let x = Matrix::from_rows(&rows).unwrap();
        let y: Vec<f64> = (0..10).map(|i| i as f64).collect();
        let mut m = Ridge::new(1e-3).unwrap();
        m.fit(&x, &y).unwrap();
        let p = m.predict(&x).unwrap();
        for (pi, yi) in p.iter().zip(&y) {
            assert!((pi - yi).abs() < 0.1);
        }
    }

    #[test]
    fn invalid_lambda_rejected() {
        assert!(Ridge::new(-1.0).is_err());
        assert!(Ridge::new(f64::NAN).is_err());
    }

    #[test]
    fn not_fitted_errors() {
        let m = Ridge::new(1.0).unwrap();
        assert!(m.predict(&Matrix::zeros(1, 1)).is_err());
        assert!(m.coefficients().is_err());
        assert!(m.intercept().is_err());
    }

    #[test]
    fn predict_shape_check() {
        let x = Matrix::from_rows(&[vec![0.0], vec![1.0]]).unwrap();
        let mut m = Ridge::new(0.1).unwrap();
        m.fit(&x, &[0.0, 1.0]).unwrap();
        assert!(m.predict(&Matrix::zeros(1, 3)).is_err());
    }
}
