//! Deterministic stratified train/test splitting.
//!
//! The paper's PSA and full-system experiments (§4.2, §4.4) use a 60/40
//! train/validation split. Splits here are stratified by label so the
//! outlier fraction is preserved on both sides, and are driven by an
//! explicit seed.

use crate::synthetic::Dataset;
use crate::{Error, Result};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use suod_linalg::Matrix;

/// Result of [`train_test_split`].
#[derive(Debug, Clone)]
pub struct TrainTestSplit {
    /// Training features.
    pub x_train: Matrix,
    /// Training labels (1 = outlier).
    pub y_train: Vec<i32>,
    /// Held-out features.
    pub x_test: Matrix,
    /// Held-out labels.
    pub y_test: Vec<i32>,
}

/// Stratified split of `ds` with `test_fraction` of each class held out.
///
/// # Errors
///
/// Returns [`Error::InvalidConfig`] when `test_fraction` is outside
/// `(0, 1)` or when either side of the split would be empty.
///
/// # Example
///
/// ```
/// use suod_datasets::{registry, train_test_split};
///
/// let ds = registry::load_scaled("pima", 0, 0.5).unwrap();
/// let split = train_test_split(&ds, 0.4, 7).unwrap();
/// assert_eq!(split.x_train.nrows() + split.x_test.nrows(), ds.n_samples());
/// ```
pub fn train_test_split(ds: &Dataset, test_fraction: f64, seed: u64) -> Result<TrainTestSplit> {
    if !(test_fraction > 0.0 && test_fraction < 1.0) {
        return Err(Error::InvalidConfig(format!(
            "test_fraction must be in (0, 1), got {test_fraction}"
        )));
    }
    let mut rng = StdRng::seed_from_u64(seed);

    let mut train_idx = Vec::new();
    let mut test_idx = Vec::new();
    for class in [0, 1] {
        let mut members: Vec<usize> =
            ds.y.iter()
                .enumerate()
                .filter(|(_, &l)| (l != 0) as i32 == class)
                .map(|(i, _)| i)
                .collect();
        // Fisher–Yates.
        for i in (1..members.len()).rev() {
            let j = rng.random_range(0..=i);
            members.swap(i, j);
        }
        let n_test = ((members.len() as f64) * test_fraction).round() as usize;
        let n_test = n_test.min(members.len());
        test_idx.extend_from_slice(&members[..n_test]);
        train_idx.extend_from_slice(&members[n_test..]);
    }
    if train_idx.is_empty() || test_idx.is_empty() {
        return Err(Error::InvalidConfig(
            "split would leave an empty train or test set".into(),
        ));
    }
    train_idx.sort_unstable();
    test_idx.sort_unstable();

    Ok(TrainTestSplit {
        x_train: ds.x.select_rows(&train_idx),
        y_train: train_idx.iter().map(|&i| ds.y[i]).collect(),
        x_test: ds.x.select_rows(&test_idx),
        y_test: test_idx.iter().map(|&i| ds.y[i]).collect(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synthetic::{generate, SyntheticConfig};

    fn dataset() -> Dataset {
        generate(&SyntheticConfig {
            n_samples: 500,
            contamination: 0.2,
            seed: 3,
            ..Default::default()
        })
        .unwrap()
    }

    #[test]
    fn sizes_add_up() {
        let ds = dataset();
        let s = train_test_split(&ds, 0.4, 0).unwrap();
        assert_eq!(s.x_train.nrows() + s.x_test.nrows(), 500);
        assert_eq!(s.y_train.len(), s.x_train.nrows());
        assert_eq!(s.y_test.len(), s.x_test.nrows());
    }

    #[test]
    fn stratification_preserves_contamination() {
        let ds = dataset();
        let s = train_test_split(&ds, 0.4, 0).unwrap();
        let frac = |ys: &[i32]| ys.iter().filter(|&&l| l != 0).count() as f64 / ys.len() as f64;
        assert!((frac(&s.y_train) - 0.2).abs() < 0.02);
        assert!((frac(&s.y_test) - 0.2).abs() < 0.02);
    }

    #[test]
    fn deterministic_per_seed() {
        let ds = dataset();
        let a = train_test_split(&ds, 0.4, 9).unwrap();
        let b = train_test_split(&ds, 0.4, 9).unwrap();
        assert_eq!(a.x_train, b.x_train);
        assert_eq!(a.y_test, b.y_test);
        let c = train_test_split(&ds, 0.4, 10).unwrap();
        assert_ne!(a.x_train, c.x_train);
    }

    #[test]
    fn no_index_overlap() {
        // Train and test rows together must reconstruct the dataset row
        // multiset; check via per-row sums.
        let ds = dataset();
        let s = train_test_split(&ds, 0.3, 1).unwrap();
        let sum = |m: &Matrix| -> f64 { m.as_slice().iter().sum() };
        let total = sum(&ds.x);
        assert!((sum(&s.x_train) + sum(&s.x_test) - total).abs() < 1e-6 * total.abs().max(1.0));
    }

    #[test]
    fn invalid_fraction_rejected() {
        let ds = dataset();
        assert!(train_test_split(&ds, 0.0, 0).is_err());
        assert!(train_test_split(&ds, 1.0, 0).is_err());
    }
}
