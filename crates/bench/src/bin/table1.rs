//! Table 1 reproduction: comparison of projection methods.
//!
//! For each (detector, dataset) pair the paper reports fit time, ROC and
//! P@N under seven projection settings: `original`, `PCA`, `RS`, and the
//! four JL variants, with target dimension `k = (2/3) d`. The paper uses
//! the full dataset for training and evaluates training-set scores.
//!
//! Flags: `--quick` (smoke test), `--paper-scale` (full dataset sizes).

use suod::prelude::*;
use suod_bench::{mean, CsvSink, Scale};
use suod_datasets::registry;
use suod_metrics::{precision_at_n, roc_auc};
use suod_projection::{
    IdentityProjector, JlProjector, PcaProjector, Projector, RandomSelectProjector,
};

const DATASETS: &[&str] = &["mnist", "satellite", "satimage-2", "cardio"];
const METHODS: &[&str] = &[
    "original",
    "pca",
    "rs",
    "basic",
    "discrete",
    "circulant",
    "toeplitz",
];

fn detector_for(name: &str, seed: u64) -> ModelSpec {
    let _ = seed;
    match name {
        "abod" => ModelSpec::Abod { n_neighbors: 10 },
        "lof" => ModelSpec::Lof {
            n_neighbors: 20,
            metric: Metric::Euclidean,
        },
        "knn" => ModelSpec::Knn {
            n_neighbors: 20,
            method: KnnMethod::Largest,
        },
        other => unreachable!("unknown detector {other}"),
    }
}

fn projector_for(method: &str, k: usize, seed: u64) -> Box<dyn Projector> {
    match method {
        "original" => Box::new(IdentityProjector::new()),
        "pca" => Box::new(PcaProjector::new(k).expect("k >= 1")),
        "rs" => Box::new(RandomSelectProjector::new(k, seed).expect("k >= 1")),
        jl => Box::new(
            JlProjector::new(JlVariant::parse(jl).expect("static table"), k, seed).expect("k >= 1"),
        ),
    }
}

fn main() {
    let scale = Scale::from_args();
    let data_scale = scale.pick(0.05, 0.25, 1.0);
    let n_trials = scale.pick(1usize, 3, 10);
    let mut csv = CsvSink::create("table1", "detector,dataset,method,time_s,roc,p_at_n");

    println!("Table 1: projection method comparison (k = 2/3 d, {n_trials} trials, data scale {data_scale})");
    for det_name in ["abod", "lof", "knn"] {
        for ds_name in DATASETS {
            let ds = registry::load_scaled(ds_name, 42, data_scale).expect("registry dataset");
            let d = ds.n_features();
            let k = ((2 * d) / 3).max(1);
            println!(
                "\n== {det_name} on {ds_name} (n={}, d={d}, k={k}) ==",
                ds.n_samples()
            );
            println!(
                "{:<10} {:>9} {:>7} {:>7}",
                "method", "time(s)", "ROC", "P@N"
            );

            for method in METHODS {
                let mut times = Vec::new();
                let mut rocs = Vec::new();
                let mut pans = Vec::new();
                for trial in 0..n_trials {
                    let seed = 1000 * trial as u64 + 7;
                    let mut proj = projector_for(method, k, seed);
                    proj.fit(&ds.x).expect("projector fit");
                    let z = proj.transform(&ds.x).expect("projector transform");

                    let spec = detector_for(det_name, seed);
                    let mut det = spec.build(seed).expect("valid spec");
                    let start = std::time::Instant::now();
                    det.fit(&z).expect("detector fit");
                    times.push(start.elapsed().as_secs_f64());
                    let scores = det.training_scores().expect("fitted");
                    rocs.push(roc_auc(&ds.y, &scores).expect("both classes present"));
                    pans.push(precision_at_n(&ds.y, &scores, None).expect("has outliers"));
                }
                let (t, r, p) = (mean(&times), mean(&rocs), mean(&pans));
                println!("{method:<10} {t:>9.3} {r:>7.3} {p:>7.3}");
                csv.row(&format!(
                    "{det_name},{ds_name},{method},{t:.6},{r:.4},{p:.4}"
                ));
            }
        }
    }
    println!("\nwrote {}", csv.path().display());
}
