//! Persistence report: snapshot round-trip cost and the warm-refit
//! saving over a cold fit.
//!
//! Fits a proximity-heavy heterogeneous pool on a registry analog, then
//! measures (1) `save`/`load` wall time and the snapshot's size on
//! disk, (2) a cold refit of the full recipe, and (3) a
//! [`Suod::warm_refit`] that changes a single spec — the survivors and
//! the retained neighbour cache are reused, so the warm path must cost
//! a fraction of the cold one. Results go to `BENCH_persistence.json`
//! in the working directory; the header records the git revision, core
//! count, and SIMD lane, so every number says what produced it.
//!
//! Flags: `--quick` shrinks the dataset for smoke runs; `--smoke` runs
//! the CI gates and exits non-zero unless (1) the loaded pool's
//! combined scores are bit-identical to the saved one's, and (2) the
//! one-spec warm refit is at least [`SMOKE_WARM_SPEEDUP`]x cheaper than
//! the cold fit.

use std::time::Instant;
use suod::prelude::*;
use suod_bench::Scale;
use suod_datasets::registry;
use suod_linalg::SimdLane;

/// CI gate: minimum cold-fit / warm-refit wall-time ratio. A one-spec
/// change to a proximity-heavy pool reuses every neighbour graph and
/// all but one model, so the real ratio is far higher; the gate exists
/// to catch the warm path silently degrading into a full refit.
const SMOKE_WARM_SPEEDUP: f64 = 2.0;

fn git_rev() -> String {
    std::process::Command::new("git")
        .args(["rev-parse", "--short", "HEAD"])
        .output()
        .ok()
        .filter(|o| o.status.success())
        .map(|o| String::from_utf8_lossy(&o.stdout).trim().to_string())
        .unwrap_or_else(|| "unknown".into())
}

/// Five proximity detectors sharing one neighbour cache plus a cheap
/// histogram model — the spec the warm refit will swap out.
fn pool() -> Vec<ModelSpec> {
    vec![
        ModelSpec::Knn {
            n_neighbors: 5,
            method: KnnMethod::Largest,
        },
        ModelSpec::Lof {
            n_neighbors: 8,
            metric: Metric::Euclidean,
        },
        ModelSpec::Abod { n_neighbors: 6 },
        ModelSpec::Cof { n_neighbors: 7 },
        ModelSpec::Loop { n_neighbors: 9 },
        ModelSpec::Hbos {
            n_bins: 10,
            tolerance: 0.3,
        },
    ]
}

fn builder() -> SuodBuilder {
    // Projection off so the proximity models share one feature space
    // (and therefore one cached neighbour graph per (metric, k)).
    Suod::builder()
        .base_estimators(pool())
        .with_projection(false)
        .with_approximation(false)
        .n_workers(1)
        .seed(7)
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let scale = Scale::from_args();
    let host_cores = std::thread::available_parallelism().map_or(1, |p| p.get());
    let avx2 = SimdLane::supported() == SimdLane::Avx2;
    let rev = git_rev();

    let fraction = scale.pick(0.15, 0.5, 1.0);
    let ds = registry::load_scaled("cardio", 17, fraction).expect("registry analog");

    // Cold fit: the baseline every other number compares against.
    let start = Instant::now();
    let mut clf = builder().build().expect("valid config");
    clf.fit(&ds.x).expect("fit succeeds");
    let cold_fit_s = start.elapsed().as_secs_f64();
    let reference = clf.combined_scores(&ds.x).expect("scores");

    // Snapshot round trip through bytes (no filesystem noise in the
    // timing) plus the on-disk size for the record.
    let start = Instant::now();
    let bytes = clf.save_to_bytes().expect("save");
    let save_s = start.elapsed().as_secs_f64();
    let snapshot_bytes = bytes.len();
    let start = Instant::now();
    let loaded = Suod::load_from_bytes(&bytes).expect("load");
    let load_s = start.elapsed().as_secs_f64();
    let loaded_scores = loaded.combined_scores(&ds.x).expect("scores");
    let round_trip_exact = loaded_scores == reference;

    // Warm refit: swap the one cheap spec; all five proximity models
    // and their shared neighbour graphs are carried over.
    let mut changed = pool();
    changed[5] = ModelSpec::Hbos {
        n_bins: 16,
        tolerance: 0.2,
    };
    let start = Instant::now();
    clf.warm_refit(&ds.x, changed.clone()).expect("warm refit");
    let warm_refit_s = start.elapsed().as_secs_f64();

    // Cold fit of the same changed recipe, for the honest comparison.
    let start = Instant::now();
    let mut cold2 = builder().base_estimators(changed).build().expect("valid");
    cold2.fit(&ds.x).expect("fit succeeds");
    let cold_refit_s = start.elapsed().as_secs_f64();
    let warm_exact = clf.combined_scores(&ds.x).expect("scores")
        == cold2.combined_scores(&ds.x).expect("scores");
    let speedup = cold_refit_s / warm_refit_s.max(1e-9);

    println!(
        "Persistence report (rev {rev}, host cores: {host_cores}, avx2+fma: {avx2}, \
         cardio x{fraction}, {} rows x {} features, 6 models)",
        ds.x.nrows(),
        ds.x.ncols()
    );
    println!("cold fit:    {cold_fit_s:.3}s");
    println!("save:        {save_s:.6}s ({snapshot_bytes} bytes)");
    println!("load:        {load_s:.6}s (round-trip scores exact: {round_trip_exact})");
    println!("cold refit:  {cold_refit_s:.3}s (one spec changed)");
    println!("warm refit:  {warm_refit_s:.3}s ({speedup:.1}x cheaper, exact: {warm_exact})");

    if args.iter().any(|a| a == "--smoke") {
        if !round_trip_exact {
            eprintln!("FAIL: loaded snapshot scores differ from the fitted pool");
            std::process::exit(1);
        }
        if !warm_exact {
            eprintln!("FAIL: warm refit scores differ from a cold fit of the same recipe");
            std::process::exit(1);
        }
        if warm_refit_s * SMOKE_WARM_SPEEDUP > cold_refit_s {
            eprintln!(
                "FAIL: warm refit {warm_refit_s:.3}s is not {SMOKE_WARM_SPEEDUP}x cheaper \
                 than the {cold_refit_s:.3}s cold refit"
            );
            std::process::exit(1);
        }
        println!("OK");
        return;
    }

    let json = format!(
        "{{\n  \"git_rev\": \"{rev}\",\n  \"host_cores\": {host_cores},\n  \
         \"avx2_fma_supported\": {avx2},\n  \"lane_detected\": \"{}\",\n  \
         \"scale\": \"{scale:?}\",\n  \"dataset\": \"cardio(x{fraction})\",\n  \
         \"n_rows\": {},\n  \"n_features\": {},\n  \"n_models\": 6,\n  \
         \"snapshot_format\": \"{}\",\n  \"snapshot_bytes\": {snapshot_bytes},\n  \
         \"cold_fit_s\": {cold_fit_s:.6},\n  \"save_s\": {save_s:.6},\n  \
         \"load_s\": {load_s:.6},\n  \"round_trip_exact\": {round_trip_exact},\n  \
         \"cold_refit_s\": {cold_refit_s:.6},\n  \"warm_refit_s\": {warm_refit_s:.6},\n  \
         \"warm_speedup\": {speedup:.2},\n  \"warm_exact\": {warm_exact}\n}}\n",
        SimdLane::detect(),
        ds.x.nrows(),
        ds.x.ncols(),
        suod::SNAPSHOT_FORMAT,
    );
    std::fs::write("BENCH_persistence.json", &json).expect("write BENCH_persistence.json");
    println!("wrote BENCH_persistence.json");
}
