//! k-means clustering with k-means++ initialization.
//!
//! Substrate for the CBLOF detector (He et al. 2003), which needs a
//! clustering of the training data before it can classify clusters as
//! large or small. Lloyd iterations with k-means++ seeding and explicit
//! seed control.

use crate::{Error, Result};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use suod_linalg::{DistanceMetric, Matrix};

/// Fitted k-means model.
///
/// # Example
///
/// ```
/// use suod_detectors::KMeans;
/// use suod_linalg::Matrix;
///
/// # fn main() -> Result<(), suod_detectors::Error> {
/// let x = Matrix::from_rows(&[
///     vec![0.0], vec![0.1], vec![9.9], vec![10.0],
/// ]).unwrap();
/// let km = KMeans::fit(&x, 2, 42, 100)?;
/// let a = km.assign(&[0.05]);
/// let b = km.assign(&[9.95]);
/// assert_ne!(a, b);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct KMeans {
    centers: Matrix,
    /// Cluster index per training row.
    assignments: Vec<usize>,
    /// Number of training rows per cluster.
    sizes: Vec<usize>,
    inertia: f64,
}

impl KMeans {
    /// Runs k-means++ initialization followed by Lloyd iterations until
    /// assignments stabilize or `max_iter` is reached.
    ///
    /// # Errors
    ///
    /// * [`Error::InvalidParameter`] when `k == 0` or `max_iter == 0`.
    /// * [`Error::InsufficientData`] when `x.nrows() < k`.
    pub fn fit(x: &Matrix, k: usize, seed: u64, max_iter: usize) -> Result<Self> {
        if k == 0 {
            return Err(Error::InvalidParameter("k must be >= 1".into()));
        }
        if max_iter == 0 {
            return Err(Error::InvalidParameter("max_iter must be >= 1".into()));
        }
        let n = x.nrows();
        if n < k {
            return Err(Error::InsufficientData {
                needed: format!("at least k = {k} samples"),
                got: n,
            });
        }

        let mut rng = StdRng::seed_from_u64(seed);
        let mut centers = kmeanspp_init(x, k, &mut rng);
        let metric = DistanceMetric::Euclidean;
        let mut assignments = vec![usize::MAX; n];

        for _ in 0..max_iter {
            // Assignment step.
            let mut changed = false;
            for i in 0..n {
                let row = x.row(i);
                let mut best = 0;
                let mut best_d = f64::INFINITY;
                for c in 0..k {
                    let d = metric.distance(row, centers.row(c));
                    if d < best_d {
                        best_d = d;
                        best = c;
                    }
                }
                if assignments[i] != best {
                    assignments[i] = best;
                    changed = true;
                }
            }
            if !changed {
                break;
            }
            // Update step.
            let mut sums = Matrix::zeros(k, x.ncols());
            let mut counts = vec![0usize; k];
            for i in 0..n {
                let c = assignments[i];
                counts[c] += 1;
                let sum_row = sums.row_mut(c);
                for (s, &v) in sum_row.iter_mut().zip(x.row(i)) {
                    *s += v;
                }
            }
            for c in 0..k {
                if counts[c] == 0 {
                    // Re-seed an empty cluster at a random point.
                    let r = rng.random_range(0..n);
                    let row = x.row(r).to_vec();
                    centers.row_mut(c).copy_from_slice(&row);
                } else {
                    let inv = 1.0 / counts[c] as f64;
                    let sum_row = sums.row(c).to_vec();
                    for (dst, s) in centers.row_mut(c).iter_mut().zip(sum_row) {
                        *dst = s * inv;
                    }
                }
            }
        }

        let mut sizes = vec![0usize; k];
        let mut inertia = 0.0;
        for i in 0..n {
            sizes[assignments[i]] += 1;
            let d = metric.distance(x.row(i), centers.row(assignments[i]));
            inertia += d * d;
        }

        Ok(Self {
            centers,
            assignments,
            sizes,
            inertia,
        })
    }

    /// Cluster centers, one row per cluster.
    pub fn centers(&self) -> &Matrix {
        &self.centers
    }

    /// Training-row cluster assignments.
    pub fn assignments(&self) -> &[usize] {
        &self.assignments
    }

    /// Cluster sizes.
    pub fn sizes(&self) -> &[usize] {
        &self.sizes
    }

    /// Sum of squared distances of training rows to their centers.
    pub fn inertia(&self) -> f64 {
        self.inertia
    }

    /// Appends the fitted clustering to a snapshot body.
    pub fn snapshot_write(&self, w: &mut suod_linalg::SnapshotWriter) {
        w.write_matrix(&self.centers);
        w.write_usizes(&self.assignments);
        w.write_usizes(&self.sizes);
        w.write_f64(self.inertia);
    }

    /// Reads a clustering written by [`KMeans::snapshot_write`].
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidParameter`] on truncated or malformed state.
    pub fn snapshot_read(r: &mut suod_linalg::SnapshotReader<'_>) -> Result<Self> {
        Ok(Self {
            centers: r.read_matrix()?,
            assignments: r.read_usizes()?,
            sizes: r.read_usizes()?,
            inertia: r.read_f64()?,
        })
    }

    /// Number of clusters.
    pub fn k(&self) -> usize {
        self.centers.nrows()
    }

    /// Index of the nearest center to `row`.
    ///
    /// # Panics
    ///
    /// Panics when `row.len()` differs from the training dimensionality.
    pub fn assign(&self, row: &[f64]) -> usize {
        assert_eq!(row.len(), self.centers.ncols());
        let metric = DistanceMetric::Euclidean;
        (0..self.k())
            .min_by(|&a, &b| {
                metric
                    .distance(row, self.centers.row(a))
                    .partial_cmp(&metric.distance(row, self.centers.row(b)))
                    .expect("finite distances")
            })
            .expect("k >= 1")
    }

    /// Distance from `row` to the center of cluster `c`.
    ///
    /// # Panics
    ///
    /// Panics when `c >= k()` or dimensionality mismatches.
    pub fn distance_to_center(&self, row: &[f64], c: usize) -> f64 {
        DistanceMetric::Euclidean.distance(row, self.centers.row(c))
    }
}

/// k-means++ seeding: first center uniform, subsequent centers sampled
/// proportional to squared distance from the nearest chosen center.
fn kmeanspp_init(x: &Matrix, k: usize, rng: &mut StdRng) -> Matrix {
    let n = x.nrows();
    let metric = DistanceMetric::Euclidean;
    let mut chosen: Vec<usize> = vec![rng.random_range(0..n)];
    let mut d2: Vec<f64> = (0..n)
        .map(|i| {
            let d = metric.distance(x.row(i), x.row(chosen[0]));
            d * d
        })
        .collect();
    while chosen.len() < k {
        let total: f64 = d2.iter().sum();
        let next = if total <= 1e-300 {
            // All points coincide with chosen centers; pick randomly.
            rng.random_range(0..n)
        } else {
            let mut target = rng.random::<f64>() * total;
            let mut pick = n - 1;
            for (i, &w) in d2.iter().enumerate() {
                if target < w {
                    pick = i;
                    break;
                }
                target -= w;
            }
            pick
        };
        chosen.push(next);
        for i in 0..n {
            let d = metric.distance(x.row(i), x.row(next));
            d2[i] = d2[i].min(d * d);
        }
    }
    x.select_rows(&chosen)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_blobs() -> Matrix {
        let mut rows = Vec::new();
        for i in 0..10 {
            rows.push(vec![0.0 + 0.01 * i as f64, 0.0]);
        }
        for i in 0..10 {
            rows.push(vec![10.0 + 0.01 * i as f64, 10.0]);
        }
        Matrix::from_rows(&rows).unwrap()
    }

    #[test]
    fn separates_two_blobs() {
        let km = KMeans::fit(&two_blobs(), 2, 0, 100).unwrap();
        let a = km.assignments()[0];
        assert!(km.assignments()[..10].iter().all(|&c| c == a));
        assert!(km.assignments()[10..].iter().all(|&c| c != a));
        assert_eq!(km.sizes().iter().sum::<usize>(), 20);
        assert_eq!(km.sizes(), &[10, 10]);
    }

    #[test]
    fn centers_near_blob_means() {
        let km = KMeans::fit(&two_blobs(), 2, 1, 100).unwrap();
        let mut centers: Vec<f64> = (0..2).map(|c| km.centers().get(c, 0)).collect();
        centers.sort_by(|a, b| a.partial_cmp(b).unwrap());
        assert!((centers[0] - 0.045).abs() < 0.5);
        assert!((centers[1] - 10.045).abs() < 0.5);
    }

    #[test]
    fn assign_routes_to_nearest() {
        let km = KMeans::fit(&two_blobs(), 2, 2, 100).unwrap();
        assert_eq!(km.assign(&[0.5, 0.5]), km.assignments()[0]);
        assert_eq!(km.assign(&[9.5, 9.5]), km.assignments()[10]);
    }

    #[test]
    fn deterministic_per_seed() {
        let x = two_blobs();
        let a = KMeans::fit(&x, 3, 7, 50).unwrap();
        let b = KMeans::fit(&x, 3, 7, 50).unwrap();
        assert_eq!(a.assignments(), b.assignments());
        assert_eq!(a.centers(), b.centers());
    }

    #[test]
    fn inertia_decreases_with_k() {
        let x = two_blobs();
        let k1 = KMeans::fit(&x, 1, 0, 100).unwrap();
        let k2 = KMeans::fit(&x, 2, 0, 100).unwrap();
        assert!(k2.inertia() < k1.inertia());
    }

    #[test]
    fn k_equals_n_gives_zero_inertia() {
        let x = Matrix::from_rows(&[vec![0.0], vec![1.0], vec![2.0]]).unwrap();
        let km = KMeans::fit(&x, 3, 0, 100).unwrap();
        assert!(km.inertia() < 1e-12);
    }

    #[test]
    fn validates_inputs() {
        let x = two_blobs();
        assert!(KMeans::fit(&x, 0, 0, 10).is_err());
        assert!(KMeans::fit(&x, 2, 0, 0).is_err());
        assert!(KMeans::fit(&x, 100, 0, 10).is_err());
    }

    #[test]
    fn identical_points_do_not_panic() {
        let x = Matrix::filled(10, 2, 3.0);
        let km = KMeans::fit(&x, 3, 0, 20).unwrap();
        assert_eq!(km.assignments().len(), 10);
        assert!(km.inertia() < 1e-12);
    }
}
